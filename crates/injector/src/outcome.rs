//! Outcome classification on the CRASH scale (Koopman & DeVale's Ballista
//! taxonomy, which the paper cites as its robustness-failure model).

use std::fmt;

use simproc::{CVal, Fault};

/// How a single injected call behaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Returned normally, errno untouched.
    Pass,
    /// Returned normally with an error reported via errno — the *desired*
    /// behaviour for invalid inputs.
    GracefulError,
    /// Segmentation fault, wild jump or arithmetic trap.
    Crash,
    /// `abort()` / assertion failure.
    Abort,
    /// Execution budget exhausted.
    Hang,
    /// The call terminated the whole process (`exit`).
    Terminated,
    /// Returned "successfully" but corrupted process state (heap
    /// metadata) — Ballista's Silent failure, detected by post-call
    /// invariant checks.
    Silent,
    /// The classification differed across quorum retries of the same
    /// case — the function behaves non-deterministically for these
    /// arguments. Counted as a failure (an unpredictable function is not
    /// robust) instead of letting the last observation win.
    Flaky,
    /// A protection wrapper refused or contained the call (only seen when
    /// replaying through a wrapper — never in a bare campaign).
    Contained,
    /// The host implementation panicked — a bug in the simulation itself,
    /// never counted against the library under test.
    HostBug,
}

impl Outcome {
    /// Whether this outcome is a robustness failure chargeable to the
    /// library.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            Outcome::Crash
                | Outcome::Abort
                | Outcome::Hang
                | Outcome::Terminated
                | Outcome::Silent
                | Outcome::Flaky
        )
    }

    /// Short tag for tables and XML.
    pub fn tag(self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::GracefulError => "error",
            Outcome::Crash => "crash",
            Outcome::Abort => "abort",
            Outcome::Hang => "hang",
            Outcome::Terminated => "exit",
            Outcome::Silent => "silent",
            Outcome::Flaky => "flaky",
            Outcome::Contained => "contained",
            Outcome::HostBug => "host-bug",
        }
    }

    /// Inverse of [`Outcome::tag`] — used when reading checkpoint
    /// journals back from their durable text form.
    pub fn from_tag(tag: &str) -> Option<Outcome> {
        Some(match tag {
            "pass" => Outcome::Pass,
            "error" => Outcome::GracefulError,
            "crash" => Outcome::Crash,
            "abort" => Outcome::Abort,
            "hang" => Outcome::Hang,
            "exit" => Outcome::Terminated,
            "silent" => Outcome::Silent,
            "flaky" => Outcome::Flaky,
            "contained" => Outcome::Contained,
            "host-bug" => Outcome::HostBug,
            _ => return None,
        })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// The full record of one injected call.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Classification.
    pub outcome: Outcome,
    /// The fault, when one occurred.
    pub fault: Option<Fault>,
    /// errno after the call.
    pub errno: i32,
    /// Return value, when the call returned.
    pub ret: Option<CVal>,
}

/// Classifies the result of a call given errno before/after.
pub fn classify(
    result: Result<CVal, Fault>,
    errno_before: i32,
    errno_after: i32,
) -> TestOutcome {
    match result {
        Ok(ret) => {
            let outcome = if errno_after != errno_before && errno_after != 0 {
                Outcome::GracefulError
            } else {
                Outcome::Pass
            };
            TestOutcome { outcome, fault: None, errno: errno_after, ret: Some(ret) }
        }
        Err(fault) => {
            let outcome = match &fault {
                Fault::Segv { .. } | Fault::WildJump { .. } | Fault::DivByZero { .. } => {
                    Outcome::Crash
                }
                Fault::Abort { .. } => Outcome::Abort,
                Fault::Hang => Outcome::Hang,
                Fault::Exit(_) => Outcome::Terminated,
                Fault::SecurityViolation { .. } => Outcome::Contained,
            };
            TestOutcome { outcome, fault: Some(fault), errno: errno_after, ret: None }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::{Access, VirtAddr};

    #[test]
    fn ok_with_errno_is_graceful() {
        let t = classify(Ok(CVal::Int(-1)), 0, simproc::errno::EINVAL);
        assert_eq!(t.outcome, Outcome::GracefulError);
        assert!(!t.outcome.is_failure());
    }

    #[test]
    fn ok_without_errno_change_is_pass() {
        let t = classify(Ok(CVal::Int(0)), 0, 0);
        assert_eq!(t.outcome, Outcome::Pass);
        // Pre-existing errno unchanged is still a pass.
        let t = classify(Ok(CVal::Int(0)), 5, 5);
        assert_eq!(t.outcome, Outcome::Pass);
    }

    #[test]
    fn faults_map_to_crash_scale() {
        let segv = Fault::segv(VirtAddr::new(1), Access::Read, "t");
        assert_eq!(classify(Err(segv), 0, 0).outcome, Outcome::Crash);
        assert_eq!(classify(Err(Fault::Hang), 0, 0).outcome, Outcome::Hang);
        assert_eq!(classify(Err(Fault::abort("x")), 0, 0).outcome, Outcome::Abort);
        assert_eq!(classify(Err(Fault::Exit(1)), 0, 0).outcome, Outcome::Terminated);
        assert_eq!(
            classify(Err(Fault::security("canary")), 0, 0).outcome,
            Outcome::Contained
        );
        assert_eq!(
            classify(Err(Fault::WildJump { target: VirtAddr::NULL }), 0, 0).outcome,
            Outcome::Crash
        );
    }

    #[test]
    fn failure_classification() {
        assert!(Outcome::Crash.is_failure());
        assert!(Outcome::Hang.is_failure());
        assert!(Outcome::Terminated.is_failure());
        assert!(Outcome::Silent.is_failure());
        assert!(Outcome::Flaky.is_failure());
        assert!(!Outcome::Pass.is_failure());
        assert!(!Outcome::GracefulError.is_failure());
        assert!(!Outcome::Contained.is_failure());
        assert!(!Outcome::HostBug.is_failure());
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Outcome::Crash.tag(), "crash");
        assert_eq!(Outcome::GracefulError.tag(), "error");
        assert_eq!(Outcome::Contained.to_string(), "contained");
        assert_eq!(Outcome::Flaky.tag(), "flaky");
    }

    #[test]
    fn tag_roundtrips() {
        for o in [
            Outcome::Pass,
            Outcome::GracefulError,
            Outcome::Crash,
            Outcome::Abort,
            Outcome::Hang,
            Outcome::Terminated,
            Outcome::Silent,
            Outcome::Flaky,
            Outcome::Contained,
            Outcome::HostBug,
        ] {
            assert_eq!(Outcome::from_tag(o.tag()), Some(o), "{o}");
        }
        assert_eq!(Outcome::from_tag("nonsense"), None);
    }
}
