//! The campaign engine: the weakest-robust-type search of Figure 2.

use std::collections::BTreeMap;

use cdecl::Prototype;
use simproc::{CVal, Fault, HostFn, Proc};
use typelattice::{plan, ParamPlan, RobustApi, RobustFunction, SafePred};

use crate::outcome::Outcome;
use crate::sandbox::{
    case_seed, materialize, run_case_opts, value_count, CaseKey, Dispatch, ProcFactory,
};

/// A function under test.
#[derive(Debug, Clone)]
pub struct TargetFn {
    /// Symbol name.
    pub name: String,
    /// Parsed prototype.
    pub proto: Prototype,
    /// Host implementation.
    pub imp: HostFn,
}

/// All of `libsimc.so.1` as campaign targets.
pub fn targets_from_simlibc() -> Vec<TargetFn> {
    simlibc::symbols()
        .iter()
        .zip(simlibc::prototypes())
        .map(|(s, proto)| TargetFn { name: s.name.to_string(), proto, imp: s.imp })
        .collect()
}

/// The math library as campaign targets.
pub fn targets_from_simmath() -> Vec<TargetFn> {
    let table = cdecl::TypedefTable::with_builtins();
    simlibc::math::math_symbols()
        .iter()
        .map(|s| TargetFn {
            name: s.name.to_string(),
            proto: cdecl::parse_prototype(s.proto, &table).expect("math proto"),
            imp: s.imp,
        })
        .collect()
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Fuel budget per call (the hang watchdog).
    pub fuel: u64,
    /// Cap on value indices per parameter in the pairwise validation
    /// phase (bounds the cross product).
    pub pair_values: usize,
    /// Symbols excluded from injection (process-terminating by contract).
    pub skip: Vec<String>,
    /// Detect Silent failures (heap-metadata corruption after a
    /// "successful" call). Disable to ablate: without it, in-arena
    /// overflows look like passes and relational types are never derived.
    pub detect_silent: bool,
    /// Run the pairwise validation phase. Disable to ablate: without it,
    /// per-parameter search misses relational failures entirely.
    pub validate_pairs: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2003,
            fuel: simproc::DEFAULT_CALL_FUEL,
            pair_values: 8,
            skip: vec!["exit".into(), "abort".into()],
            detect_silent: true,
            validate_pairs: true,
        }
    }
}

/// One recorded robustness failure.
#[derive(Debug, Clone)]
pub struct CrashCase {
    /// Function name.
    pub func: String,
    /// Replay key.
    pub key: CaseKey,
    /// What happened.
    pub outcome: Outcome,
    /// Fault detail, when present.
    pub fault: Option<Fault>,
}

/// Per-parameter search result.
#[derive(Debug, Clone)]
pub struct ParamResult {
    /// Rung finally chosen (index into the ladder).
    pub chosen: usize,
    /// Name of the chosen rung.
    pub chosen_name: String,
    /// `(rung name, failures observed)` for every rung tried.
    pub tried: Vec<(String, usize)>,
}

/// Per-function campaign report.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Pretty prototype.
    pub proto: String,
    /// Number of injected calls.
    pub tests: usize,
    /// Outcome histogram over all injected calls.
    pub histogram: BTreeMap<Outcome, usize>,
    /// Per-parameter results.
    pub params: Vec<ParamResult>,
    /// Failures remaining after the final validation pass.
    pub residual_failures: usize,
    /// `true` when no rung combination contained every failure.
    pub fully_robust: bool,
    /// `true` when the function was excluded from injection.
    pub skipped: bool,
}

/// The whole campaign's output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Library name.
    pub library: String,
    /// Per-function reports.
    pub reports: Vec<FunctionReport>,
    /// The derived robust API (input to wrapper generation).
    pub api: RobustApi,
    /// Every robustness failure observed, replayable.
    pub crashes: Vec<CrashCase>,
}

impl CampaignResult {
    /// Total injected calls.
    pub fn total_tests(&self) -> usize {
        self.reports.iter().map(|r| r.tests).sum()
    }

    /// Total robustness failures observed (pre-wrapper).
    pub fn total_failures(&self) -> usize {
        self.crashes.len()
    }
}

/// Runs the fault-injection campaign over `targets`, deriving the robust
/// API of the library.
pub fn run_campaign(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
) -> CampaignResult {
    let mut reports = Vec::new();
    let mut functions = Vec::new();
    let mut crashes = Vec::new();

    for target in targets {
        if config.skip.iter().any(|s| s == &target.name) {
            reports.push(FunctionReport {
                name: target.name.clone(),
                proto: target.proto.to_string(),
                tests: 0,
                histogram: BTreeMap::new(),
                params: Vec::new(),
                residual_failures: 0,
                fully_robust: true,
                skipped: true,
            });
            functions.push(RobustFunction::trivial(target.proto.clone()));
            continue;
        }
        let (report, robust, mut cases) = search_function(target, factory, config);
        reports.push(report);
        functions.push(robust);
        crashes.append(&mut cases);
    }

    CampaignResult {
        library: library.to_string(),
        reports,
        api: RobustApi { library: library.to_string(), functions },
        crashes,
    }
}

/// [`run_campaign`] fanned out across worker threads, one function per
/// task. Results are identical to the serial run (every case is
/// deterministic in the seed and the per-function search is independent);
/// only wall-clock time changes — the "group of high-end PCs" economics
/// of §2.2, on one machine.
pub fn run_campaign_parallel(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    threads: usize,
) -> CampaignResult {
    let threads = threads.max(1);
    let mut slots: Vec<Option<(FunctionReport, RobustFunction, Vec<CrashCase>)>> =
        (0..targets.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(target) = targets.get(i) else { break };
                let outcome = if config.skip.iter().any(|s| s == &target.name) {
                    (
                        FunctionReport {
                            name: target.name.clone(),
                            proto: target.proto.to_string(),
                            tests: 0,
                            histogram: BTreeMap::new(),
                            params: Vec::new(),
                            residual_failures: 0,
                            fully_robust: true,
                            skipped: true,
                        },
                        RobustFunction::trivial(target.proto.clone()),
                        Vec::new(),
                    )
                } else {
                    search_function(target, factory, config)
                };
                slots_mutex.lock().expect("slot lock")[i] = Some(outcome);
            });
        }
    });

    let mut reports = Vec::with_capacity(targets.len());
    let mut functions = Vec::with_capacity(targets.len());
    let mut crashes = Vec::new();
    for slot in slots {
        let (report, robust, mut cases) = slot.expect("every slot filled");
        reports.push(report);
        functions.push(robust);
        crashes.append(&mut cases);
    }
    CampaignResult {
        library: library.to_string(),
        reports,
        api: RobustApi { library: library.to_string(), functions },
        crashes,
    }
}

fn record(histogram: &mut BTreeMap<Outcome, usize>, outcome: Outcome) {
    *histogram.entry(outcome).or_insert(0) += 1;
}

/// Whether a combo's materialised arguments jointly satisfy the chosen
/// predicates (evaluated with the allocation-aware oracle, like the
/// wrapper will).
fn combo_in_contract(
    factory: ProcFactory,
    plans: &[ParamPlan],
    chosen: &[usize],
    key: &CaseKey,
    seed: u64,
) -> bool {
    let mut proc = factory();
    let args = materialize(&mut proc, plans, key, seed);
    let oracle = simlibc::heap::HeapOracle::new();
    plans
        .iter()
        .enumerate()
        .all(|(i, p)| p.ladder[chosen[i]].pred.check(&proc, &oracle, &args, i))
}

fn search_function(
    target: &TargetFn,
    factory: ProcFactory,
    config: &CampaignConfig,
) -> (FunctionReport, RobustFunction, Vec<CrashCase>) {
    let plans = plan(&target.proto);
    let imp = target.imp;
    let mut call = move |p: &mut Proc, a: &[CVal]| imp(p, a);
    let mut histogram = BTreeMap::new();
    let mut tests = 0usize;
    let mut crashes = Vec::new();
    let mut chosen = vec![0usize; plans.len()];
    let mut params = Vec::new();

    // Phase 1: per-parameter ladder climb (others pinned benign).
    for (i, p) in plans.iter().enumerate() {
        let mut tried = Vec::new();
        let mut picked = p.ladder.len() - 1;
        for (r, rung) in p.ladder.iter().enumerate() {
            let mut failures = 0usize;
            let probe_key = CaseKey::Ladder { param: i, rung_idx: r, value_idx: 0 };
            let n = value_count(
                factory,
                &plans,
                i,
                r,
                case_seed(config.seed, &target.name, &probe_key),
            );
            for k in 0..n {
                let key = CaseKey::Ladder { param: i, rung_idx: r, value_idx: k };
                let seed = case_seed(config.seed, &target.name, &key);
                let out = run_case_opts(
                    factory,
                    &plans,
                    &key,
                    seed,
                    config.fuel,
                    config.detect_silent,
                    &mut call,
                );
                tests += 1;
                record(&mut histogram, out.outcome);
                if out.outcome.is_failure() {
                    failures += 1;
                    crashes.push(CrashCase {
                        func: target.name.clone(),
                        key,
                        outcome: out.outcome,
                        fault: out.fault,
                    });
                }
            }
            tried.push((rung.name.clone(), failures));
            if failures == 0 {
                picked = r;
                break;
            }
        }
        chosen[i] = picked;
        params.push(ParamResult {
            chosen: picked,
            chosen_name: plans[i].ladder[picked].name.clone(),
            tried,
        });
    }

    // Phase 2: pairwise validation at the chosen rungs, escalating on
    // residual failures (catches relational failures the per-parameter
    // pass cannot see, e.g. strcpy(small_dst, long_src)). Combinations
    // that jointly violate the chosen predicates are skipped: the
    // wrapper will reject those, so they are out of contract.
    let max_escalations: usize =
        if config.validate_pairs { plans.iter().map(|p| p.ladder.len()).sum() } else { 0 };
    // Generator output lengths are context-independent; cache them so the
    // pairwise phase does not rebuild a scratch process per (param, rung)
    // per escalation round.
    let mut count_cache: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    let mut residual = 0usize;
    for _round in 0..=max_escalations {
        if !config.validate_pairs {
            break;
        }
        residual = 0;
        let mut failing_params: Vec<usize> = Vec::new();
        for i in 0..plans.len() {
            for j in (i + 1)..plans.len() {
                let mut cached_count = |param: usize, rung: usize| {
                    *count_cache.entry((param, rung)).or_insert_with(|| {
                        let key = CaseKey::Ladder { param, rung_idx: rung, value_idx: 0 };
                        value_count(
                            factory,
                            &plans,
                            param,
                            rung,
                            case_seed(config.seed, &target.name, &key),
                        )
                    })
                };
                let ni = cached_count(i, chosen[i]).min(config.pair_values);
                let nj = cached_count(j, chosen[j]).min(config.pair_values);
                for vi in 0..ni {
                    for vj in 0..nj {
                        for j_first in [false, true] {
                            let key = CaseKey::Pair {
                                i,
                                j,
                                vi,
                                vj,
                                j_first,
                                rungs: chosen.clone(),
                            };
                            let seed = case_seed(config.seed, &target.name, &key);
                            if !combo_in_contract(factory, &plans, &chosen, &key, seed) {
                                continue;
                            }
                            let out = run_case_opts(
                                factory,
                                &plans,
                                &key,
                                seed,
                                config.fuel,
                                config.detect_silent,
                                &mut call,
                            );
                            tests += 1;
                            record(&mut histogram, out.outcome);
                            if out.outcome.is_failure() {
                                residual += 1;
                                failing_params.push(i);
                                failing_params.push(j);
                                crashes.push(CrashCase {
                                    func: target.name.clone(),
                                    key,
                                    outcome: out.outcome,
                                    fault: out.fault,
                                });
                            }
                        }
                    }
                }
            }
        }
        if residual == 0 {
            break;
        }
        // Escalate an implicated parameter that still has headroom.
        let candidate = failing_params
            .iter()
            .copied()
            .find(|&p| chosen[p] + 1 < plans[p].ladder.len())
            .or_else(|| (0..plans.len()).find(|&p| chosen[p] + 1 < plans[p].ladder.len()));
        match candidate {
            Some(p) => chosen[p] += 1,
            None => break,
        }
    }

    // Sync the recorded choices.
    for (i, pr) in params.iter_mut().enumerate() {
        pr.chosen = chosen[i];
        pr.chosen_name = plans[i].ladder[chosen[i]].name.clone();
    }

    let fully_robust = residual == 0;
    let preds: Vec<SafePred> =
        plans.iter().zip(&chosen).map(|(p, &r)| p.ladder[r].pred.clone()).collect();
    let report = FunctionReport {
        name: target.name.clone(),
        proto: target.proto.to_string(),
        tests,
        histogram,
        params,
        residual_failures: residual,
        fully_robust,
        skipped: false,
    };
    let robust =
        RobustFunction { proto: target.proto.clone(), preds, fully_robust, skipped: false };
    (report, robust, crashes)
}

/// Dispatch shape for replaying by function name — typically the front of
/// a generated wrapper library.
pub type NamedDispatch<'a> =
    &'a mut dyn FnMut(&str, &mut Proc, &[CVal]) -> Result<CVal, Fault>;

/// Replays recorded crash cases through an arbitrary dispatch (typically
/// a generated wrapper) and reports how many still fail — the
/// before/after comparison of the paper's §3.1 demo.
pub fn replay_cases(
    cases: &[CrashCase],
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    dispatch: NamedDispatch<'_>,
) -> ReplaySummary {
    let mut still_failing = 0usize;
    let mut contained = 0usize;
    let mut graceful = 0usize;
    let mut by_function: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut histogram: BTreeMap<Outcome, usize> = BTreeMap::new();
    for case in cases {
        let Some(target) = targets.iter().find(|t| t.name == case.func) else {
            continue;
        };
        let plans: Vec<ParamPlan> = plan(&target.proto);
        let seed = case_seed(config.seed, &case.func, &case.key);
        let name = case.func.clone();
        let mut call = |p: &mut Proc, a: &[CVal]| dispatch(&name, p, a);
        let boxed: Dispatch<'_> = &mut call;
        let out = run_case_opts(
            factory,
            &plans,
            &case.key,
            seed,
            config.fuel,
            config.detect_silent,
            boxed,
        );
        let entry = by_function.entry(case.func.clone()).or_insert((0, 0));
        entry.0 += 1;
        *histogram.entry(out.outcome).or_insert(0) += 1;
        match out.outcome {
            o if o.is_failure() => {
                still_failing += 1;
                entry.1 += 1;
            }
            Outcome::Contained => contained += 1,
            Outcome::GracefulError => graceful += 1,
            _ => {}
        }
    }
    ReplaySummary {
        total: cases.len(),
        still_failing,
        contained,
        graceful,
        by_function,
        histogram,
    }
}

/// Outcome of replaying crash cases through a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Cases replayed.
    pub total: usize,
    /// Cases that still ended in a robustness failure.
    pub still_failing: usize,
    /// Cases the wrapper deliberately contained/terminated.
    pub contained: usize,
    /// Cases turned into graceful errno errors.
    pub graceful: usize,
    /// Per-function `(replayed, still failing)` breakdown.
    pub by_function: BTreeMap<String, (usize, usize)>,
    /// Full outcome distribution over the replayed cases — the raw
    /// material for comparing wrapper strategies (containment vs healing).
    pub histogram: BTreeMap<Outcome, usize>,
}

impl ReplaySummary {
    /// Functions with uncontained failures, worst first.
    pub fn uncontained(&self) -> Vec<(&str, usize, usize)> {
        let mut v: Vec<_> = self
            .by_function
            .iter()
            .filter(|(_, (_, fail))| *fail > 0)
            .map(|(f, (total, fail))| (f.as_str(), *fail, *total))
            .collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::setup::init_process;

    fn single_target(name: &str) -> Vec<TargetFn> {
        targets_from_simlibc().into_iter().filter(|t| t.name == name).collect()
    }

    fn quick_config() -> CampaignConfig {
        CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() }
    }

    #[test]
    fn strlen_needs_a_cstr() {
        let targets = single_target("strlen");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("strlen").unwrap();
        assert_eq!(f.preds, vec![SafePred::CStr]);
        assert!(f.fully_robust);
        assert!(result.total_failures() > 0, "the bare function must have crashed");
    }

    #[test]
    fn strcpy_derives_relational_contract() {
        let targets = single_target("strcpy");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("strcpy").unwrap();
        assert!(f.fully_robust, "{:?}", result.reports[0]);
        // dest must be at least strong enough to hold src.
        match &f.preds[0] {
            SafePred::HoldsCStrOf { src: 1 } => {}
            SafePred::NullOr(inner) => {
                assert_eq!(**inner, SafePred::HoldsCStrOf { src: 1 })
            }
            other => panic!("unexpected dest contract: {other:?}"),
        }
        assert_eq!(f.preds[1], SafePred::CStr);
    }

    #[test]
    fn abs_is_robust_for_any_int() {
        let targets = single_target("abs");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("abs").unwrap();
        assert_eq!(f.preds, vec![SafePred::Always]);
        assert_eq!(result.total_failures(), 0);
    }

    #[test]
    fn isalpha_contract_is_char_range() {
        let targets = single_target("isalpha");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("isalpha").unwrap();
        assert_eq!(f.preds, vec![SafePred::IntInRange { min: -1, max: 255 }]);
    }

    #[test]
    fn div_requires_nonzero_divisor() {
        let targets = single_target("div");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("div").unwrap();
        assert_eq!(f.preds[1], SafePred::IntNonZero, "{:?}", result.reports[0].params);
    }

    #[test]
    fn time_keeps_null_permissiveness() {
        let targets = single_target("time");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("time").unwrap();
        match &f.preds[0] {
            SafePred::NullOr(_) => {}
            other => panic!("time(NULL) must stay legal, got {other:?}"),
        }
    }

    #[test]
    fn skip_list_produces_trivial_contract() {
        let targets = single_target("exit");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        assert!(result.reports[0].skipped);
        assert!(result.api.function("exit").unwrap().skipped);
        assert_eq!(result.total_tests(), 0);
    }

    #[test]
    fn replay_through_identity_still_fails() {
        let targets = single_target("strlen");
        let config = quick_config();
        let result = run_campaign("libsimc.so.1", &targets, init_process, &config);
        let mut dispatch = |name: &str, p: &mut Proc, a: &[CVal]| {
            let t = simlibc::find_symbol(name).unwrap();
            (t.imp)(p, a)
        };
        let summary =
            replay_cases(&result.crashes, &targets, init_process, &config, &mut dispatch);
        assert_eq!(summary.total, result.crashes.len());
        assert_eq!(
            summary.still_failing, summary.total,
            "identity dispatch contains nothing"
        );
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| {
                ["strlen", "strcpy", "isalpha", "abs", "exit", "memset"]
                    .contains(&t.name.as_str())
            })
            .collect();
        let config = quick_config();
        let serial = run_campaign("l", &targets, init_process, &config);
        let parallel = run_campaign_parallel("l", &targets, init_process, &config, 4);
        assert_eq!(serial.total_tests(), parallel.total_tests());
        assert_eq!(serial.total_failures(), parallel.total_failures());
        for (a, b) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(a.name, b.name, "order preserved");
            assert_eq!(a.histogram, b.histogram, "{}", a.name);
            assert_eq!(a.skipped, b.skipped);
        }
        for (a, b) in serial.api.functions.iter().zip(&parallel.api.functions) {
            assert_eq!(a.preds, b.preds, "{}", a.proto.name);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let targets = single_target("strncpy");
        let config = quick_config();
        let r1 = run_campaign("l", &targets, init_process, &config);
        let r2 = run_campaign("l", &targets, init_process, &config);
        assert_eq!(r1.total_tests(), r2.total_tests());
        assert_eq!(r1.total_failures(), r2.total_failures());
        assert_eq!(
            r1.api.function("strncpy").unwrap().preds,
            r2.api.function("strncpy").unwrap().preds
        );
    }
}
