//! The campaign engine: the weakest-robust-type search of Figure 2,
//! hardened by the campaign resilience layer — checkpointed resume,
//! outcome quorum, adaptive hang watchdog, a per-function circuit
//! breaker, and graceful degradation under a wall-clock/case budget.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cdecl::Prototype;
use simproc::{CVal, Fault, HostFn, Proc};
use typelattice::{
    plan, Confidence, LadderHints, ParamPlan, RobustApi, RobustFunction, SafePred,
};

use crate::checkpoint::{function_fingerprint, CheckpointJournal};
use crate::outcome::{Outcome, TestOutcome};
use crate::sandbox::{
    case_seed, materialize, run_case_opts, value_count, CaseKey, Dispatch, ProcFactory,
};

/// A function under test.
#[derive(Debug, Clone)]
pub struct TargetFn {
    /// Symbol name.
    pub name: String,
    /// Parsed prototype.
    pub proto: Prototype,
    /// Host implementation.
    pub imp: HostFn,
}

/// All of `libsimc.so.1` as campaign targets.
pub fn targets_from_simlibc() -> Vec<TargetFn> {
    simlibc::symbols()
        .iter()
        .zip(simlibc::prototypes())
        .map(|(s, proto)| TargetFn { name: s.name.to_string(), proto, imp: s.imp })
        .collect()
}

/// The math library as campaign targets.
pub fn targets_from_simmath() -> Vec<TargetFn> {
    let table = cdecl::TypedefTable::with_builtins();
    simlibc::math::math_symbols()
        .iter()
        .map(|s| TargetFn {
            name: s.name.to_string(),
            proto: cdecl::parse_prototype(s.proto, &table).expect("math proto"),
            imp: s.imp,
        })
        .collect()
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Fuel budget per call (the hang watchdog's starting point).
    pub fuel: u64,
    /// Cap on value indices per parameter in the pairwise validation
    /// phase (bounds the cross product).
    pub pair_values: usize,
    /// Symbols excluded from injection (process-terminating by contract).
    pub skip: Vec<String>,
    /// Detect Silent failures (heap-metadata corruption after a
    /// "successful" call). Disable to ablate: without it, in-arena
    /// overflows look like passes and relational types are never derived.
    pub detect_silent: bool,
    /// Run the pairwise validation phase. Disable to ablate: without it,
    /// per-parameter search misses relational failures entirely.
    pub validate_pairs: bool,
    /// Outcome-quorum retries: a case classified as a (non-hang)
    /// robustness failure is re-executed this many times, with
    /// geometrically growing fuel; if any retry classifies differently
    /// the case becomes [`Outcome::Flaky`] instead of letting the last
    /// observation win. `0` disables the quorum pass.
    pub quorum: usize,
    /// Adaptive hang watchdog: on [`Outcome::Hang`], the fuel budget is
    /// doubled repeatedly up to `fuel * watchdog_max_fuel_factor` before
    /// the hang classification sticks — separating genuinely divergent
    /// calls from merely slow ones. `1` disables escalation.
    pub watchdog_max_fuel_factor: u64,
    /// Per-function circuit breaker: after this many abnormal sandbox
    /// deaths ([`Outcome::HostBug`]) the function's remaining rungs are
    /// marked inconclusive instead of poisoning the robust API. `0`
    /// disables the breaker.
    pub breaker_threshold: usize,
    /// Graceful-degradation budget: maximum number of *executed* cases
    /// (checkpoint hits are free) across the whole campaign. When
    /// exhausted, the campaign emits a partial robust API with
    /// per-function confidence/coverage annotations.
    pub case_budget: Option<u64>,
    /// Graceful-degradation budget: wall-clock limit for the whole
    /// campaign. Same partial-result semantics as `case_budget`.
    pub time_budget: Option<Duration>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2003,
            fuel: simproc::DEFAULT_CALL_FUEL,
            pair_values: 8,
            skip: vec!["exit".into(), "abort".into()],
            detect_silent: true,
            validate_pairs: true,
            quorum: 1,
            watchdog_max_fuel_factor: 8,
            breaker_threshold: 3,
            case_budget: None,
            time_budget: None,
        }
    }
}

/// One recorded robustness failure.
#[derive(Debug, Clone)]
pub struct CrashCase {
    /// Function name.
    pub func: String,
    /// Replay key.
    pub key: CaseKey,
    /// What happened.
    pub outcome: Outcome,
    /// Fault detail, when present. Cases replayed from a checkpoint
    /// journal carry only the classification (`None` here).
    pub fault: Option<Fault>,
}

/// Per-parameter search result.
#[derive(Debug, Clone)]
pub struct ParamResult {
    /// Rung finally chosen (index into the ladder).
    pub chosen: usize,
    /// Name of the chosen rung.
    pub chosen_name: String,
    /// `(rung name, failures observed)` for every rung tried.
    pub tried: Vec<(String, usize)>,
    /// Injection cases skipped because a high-confidence static contract
    /// already settled the rungs below the hinted floor (see
    /// [`LadderHints`]). Zero in unhinted runs.
    pub pruned: usize,
}

/// Per-function campaign report.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Pretty prototype.
    pub proto: String,
    /// Number of judged cases (checkpoint replays included).
    pub tests: usize,
    /// Outcome histogram over all judged cases.
    pub histogram: BTreeMap<Outcome, usize>,
    /// Per-parameter results.
    pub params: Vec<ParamResult>,
    /// Failures remaining after the final validation pass.
    pub residual_failures: usize,
    /// `true` when no rung combination contained every failure.
    pub fully_robust: bool,
    /// `true` when the function was excluded from injection.
    pub skipped: bool,
    /// How trustworthy the derived contract is.
    pub confidence: Confidence,
    /// Fraction of the planned probe work that executed (ladder climbs
    /// plus the validation phase).
    pub coverage: f64,
    /// Extra executions spent by the quorum pass and the hang watchdog.
    pub retries: usize,
    /// Cases satisfied from the checkpoint journal instead of executing.
    pub checkpoint_hits: usize,
    /// Injection cases skipped across all parameters because static
    /// contracts pre-seeded the ladder floors. Zero in unhinted runs.
    pub pruned: usize,
}

/// The whole campaign's output.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Library name.
    pub library: String,
    /// Per-function reports.
    pub reports: Vec<FunctionReport>,
    /// The derived robust API (input to wrapper generation).
    pub api: RobustApi,
    /// Every robustness failure observed, replayable.
    pub crashes: Vec<CrashCase>,
    /// `false` when the campaign budget expired before every function
    /// was fully probed — the robust API is partial and per-function
    /// confidence/coverage annotations say where.
    pub complete: bool,
    /// Per-worker throughput/outcome rows from a parallel run (empty
    /// for serial campaigns). Which worker claimed which function is
    /// scheduling-dependent, so these rows are deliberately kept out of
    /// the deterministic campaign XML; render them with
    /// [`profiler::render_worker_report`].
    pub worker_metrics: Vec<profiler::WorkerLine>,
}

impl CampaignResult {
    /// Total judged cases (checkpoint replays included).
    pub fn total_tests(&self) -> usize {
        self.reports.iter().map(|r| r.tests).sum()
    }

    /// Total robustness failures observed (pre-wrapper).
    pub fn total_failures(&self) -> usize {
        self.crashes.len()
    }

    /// Cases answered from the checkpoint journal instead of executing.
    pub fn checkpoint_hits(&self) -> usize {
        self.reports.iter().map(|r| r.checkpoint_hits).sum()
    }

    /// Cases actually executed in sandboxes this run (excluding quorum
    /// and watchdog retries).
    pub fn executed_cases(&self) -> usize {
        self.total_tests() - self.checkpoint_hits()
    }

    /// Extra executions spent by quorum confirmation and the hang
    /// watchdog across all functions.
    pub fn total_retries(&self) -> usize {
        self.reports.iter().map(|r| r.retries).sum()
    }

    /// Injection cases skipped campaign-wide thanks to contract
    /// pre-seeded ladder floors ([`LadderHints`]).
    pub fn total_pruned(&self) -> usize {
        self.reports.iter().map(|r| r.pruned).sum()
    }
}

/// Shared budget accounting for one campaign run. Checkpoint hits are
/// never charged, so a resumed campaign spends its budget exclusively on
/// new work.
#[derive(Debug)]
struct BudgetClock {
    case_budget: Option<u64>,
    deadline: Option<Instant>,
    spent: AtomicU64,
    exhausted: AtomicBool,
}

impl BudgetClock {
    fn new(config: &CampaignConfig) -> Self {
        BudgetClock {
            case_budget: config.case_budget,
            deadline: config.time_budget.map(|d| Instant::now() + d),
            spent: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Charges one executed case; `false` once the budget is gone.
    fn charge(&self) -> bool {
        if self.exhausted.load(Ordering::Acquire) {
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted.store(true, Ordering::Release);
                return false;
            }
        }
        let spent = self.spent.fetch_add(1, Ordering::AcqRel);
        if let Some(max) = self.case_budget {
            if spent >= max {
                self.exhausted.store(true, Ordering::Release);
                return false;
            }
        }
        true
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Acquire)
    }
}

/// Per-function execution telemetry.
#[derive(Debug, Default)]
struct CaseTally {
    hits: usize,
    retries: usize,
}

/// Why a function's search stopped before its natural end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    /// The campaign budget expired mid-search.
    Budget,
    /// The circuit breaker opened after repeated abnormal sandbox deaths.
    Breaker,
}

/// Everything a single function search needs from the campaign run.
struct SearchCx<'a> {
    config: &'a CampaignConfig,
    factory: ProcFactory,
    journal: &'a CheckpointJournal,
    budget: &'a BudgetClock,
    /// Contract-derived ladder floors; `None` (or empty) means the climb
    /// starts from the weakest rung everywhere, exactly the classic
    /// search. Floors never enter the function fingerprint or the case
    /// seeds, so hinted and unhinted runs share checkpoint journals.
    hints: Option<&'a LadderHints>,
}

impl SearchCx<'_> {
    /// Runs one case through the full resilience funnel: checkpoint
    /// lookup → sandbox execution → adaptive hang watchdog → outcome
    /// quorum → journal record. Returns `None` when the campaign budget
    /// is exhausted (the case did not run).
    fn judge(
        &self,
        fingerprint: u64,
        func: &str,
        plans: &[ParamPlan],
        key: &CaseKey,
        call: Dispatch<'_>,
        tally: &mut CaseTally,
    ) -> Option<TestOutcome> {
        if let Some(outcome) = self.journal.lookup(fingerprint, key) {
            tally.hits += 1;
            return Some(TestOutcome { outcome, fault: None, errno: 0, ret: None });
        }
        if !self.budget.charge() {
            return None;
        }
        let config = self.config;
        let seed = case_seed(config.seed, func, key);
        let mut out = run_case_opts(
            self.factory,
            plans,
            key,
            seed,
            config.fuel,
            config.detect_silent,
            &mut *call,
        );

        // Adaptive watchdog: escalate the fuel budget geometrically up
        // to the deadline before letting a Hang classification stick.
        let max_fuel = config.fuel.saturating_mul(config.watchdog_max_fuel_factor.max(1));
        let mut settled_fuel = config.fuel;
        while out.outcome == Outcome::Hang && settled_fuel < max_fuel {
            settled_fuel = settled_fuel.saturating_mul(2).min(max_fuel);
            tally.retries += 1;
            out = run_case_opts(
                self.factory,
                plans,
                key,
                seed,
                settled_fuel,
                config.detect_silent,
                &mut *call,
            );
        }

        // Outcome quorum: confirm non-hang failures, with per-retry fuel
        // backoff starting from the fuel the watchdog settled at. A
        // classification that does not reproduce is Flaky, first-class.
        if config.quorum > 0 && out.outcome.is_failure() && out.outcome != Outcome::Hang {
            let mut fuel = settled_fuel;
            for _ in 0..config.quorum {
                fuel = fuel.saturating_mul(2);
                tally.retries += 1;
                let confirm = run_case_opts(
                    self.factory,
                    plans,
                    key,
                    seed,
                    fuel,
                    config.detect_silent,
                    &mut *call,
                );
                if confirm.outcome != out.outcome {
                    out = TestOutcome {
                        outcome: Outcome::Flaky,
                        fault: None,
                        errno: out.errno,
                        ret: None,
                    };
                    break;
                }
            }
        }

        // Host bugs are defects of the harness, not observations about
        // the library — never checkpoint them (a fixed host should
        // re-execute).
        if out.outcome != Outcome::HostBug {
            self.journal.record(fingerprint, key, out.outcome);
        }
        Some(out)
    }
}

/// The report + contract for a function on the skip list.
fn skipped_entry(target: &TargetFn) -> (FunctionReport, RobustFunction, Vec<CrashCase>) {
    (
        FunctionReport {
            name: target.name.clone(),
            proto: target.proto.to_string(),
            tests: 0,
            histogram: BTreeMap::new(),
            params: Vec::new(),
            residual_failures: 0,
            fully_robust: true,
            skipped: true,
            confidence: Confidence::High,
            coverage: 1.0,
            retries: 0,
            checkpoint_hits: 0,
            pruned: 0,
        },
        RobustFunction::trivial(target.proto.clone()),
        Vec::new(),
    )
}

/// The report + contract for a function the budget never reached: the
/// strongest candidate type per parameter (a conservative guess the
/// wrapper layer can refuse or warn on), zero coverage, `Partial`
/// confidence.
fn unprobed_entry(target: &TargetFn) -> (FunctionReport, RobustFunction, Vec<CrashCase>) {
    let plans = plan(&target.proto);
    let params: Vec<ParamResult> = plans
        .iter()
        .map(|p| ParamResult {
            chosen: p.ladder.len() - 1,
            chosen_name: p.ladder.last().expect("non-empty ladder").name.clone(),
            tried: Vec::new(),
            pruned: 0,
        })
        .collect();
    let preds: Vec<SafePred> = plans
        .iter()
        .map(|p| p.ladder.last().expect("non-empty ladder").pred.clone())
        .collect();
    let mut robust = RobustFunction::new(target.proto.clone(), preds, false);
    robust.confidence = Confidence::Partial;
    robust.coverage = 0.0;
    (
        FunctionReport {
            name: target.name.clone(),
            proto: target.proto.to_string(),
            tests: 0,
            histogram: BTreeMap::new(),
            params,
            residual_failures: 0,
            fully_robust: false,
            skipped: false,
            confidence: Confidence::Partial,
            coverage: 0.0,
            retries: 0,
            checkpoint_hits: 0,
            pruned: 0,
        },
        robust,
        Vec::new(),
    )
}

fn function_entry(
    cx: &SearchCx<'_>,
    target: &TargetFn,
) -> (FunctionReport, RobustFunction, Vec<CrashCase>) {
    if cx.config.skip.iter().any(|s| s == &target.name) {
        skipped_entry(target)
    } else if cx.budget.is_exhausted() {
        unprobed_entry(target)
    } else {
        search_function(cx, target)
    }
}

/// Runs the fault-injection campaign over `targets`, deriving the robust
/// API of the library. Single-shot: no checkpoint journal is kept
/// across calls (see [`run_campaign_checkpointed`] for resumable runs).
pub fn run_campaign(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
) -> CampaignResult {
    let journal = CheckpointJournal::new();
    run_campaign_checkpointed(library, targets, factory, config, &journal)
}

/// [`run_campaign`] with contract-derived [`LadderHints`]: each hinted
/// parameter's ladder climb starts at its floor rung, and the cases the
/// floor made unnecessary are counted as `pruned` in the reports instead
/// of executing. Floors are advisory — an unhintable floor (beyond the
/// ladder) is clamped — and sound floors yield the same robust API as
/// the unhinted search with fewer injected calls.
pub fn run_campaign_with_hints(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    hints: &LadderHints,
) -> CampaignResult {
    let journal = CheckpointJournal::new();
    run_campaign_checkpointed_with_hints(library, targets, factory, config, &journal, hints)
}

/// [`run_campaign`] backed by a durable checkpoint journal: every
/// completed case's classification is recorded in `journal`, and cases
/// already recorded (same function, prototype, ladder and seed) are
/// replayed from it instead of executing. An interrupted or
/// budget-limited campaign resumed with the same journal picks up
/// exactly where it stopped and converges on the same result as an
/// uninterrupted run.
pub fn run_campaign_checkpointed(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    journal: &CheckpointJournal,
) -> CampaignResult {
    run_checkpointed_inner(library, targets, factory, config, journal, None)
}

/// [`run_campaign_checkpointed`] with contract-derived [`LadderHints`]
/// (see [`run_campaign_with_hints`]). Because floors change only where
/// the climb *starts* — never the plans, case keys or seeds — the same
/// journal serves hinted and unhinted campaigns interchangeably.
pub fn run_campaign_checkpointed_with_hints(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    journal: &CheckpointJournal,
    hints: &LadderHints,
) -> CampaignResult {
    run_checkpointed_inner(library, targets, factory, config, journal, Some(hints))
}

fn run_checkpointed_inner(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    journal: &CheckpointJournal,
    hints: Option<&LadderHints>,
) -> CampaignResult {
    let budget = BudgetClock::new(config);
    let cx = SearchCx { config, factory, journal, budget: &budget, hints };
    let mut reports = Vec::new();
    let mut functions = Vec::new();
    let mut crashes = Vec::new();

    for target in targets {
        let (report, robust, mut cases) = function_entry(&cx, target);
        reports.push(report);
        functions.push(robust);
        crashes.append(&mut cases);
    }

    CampaignResult {
        library: library.to_string(),
        reports,
        api: RobustApi { library: library.to_string(), functions },
        crashes,
        complete: !budget.is_exhausted(),
        worker_metrics: Vec::new(),
    }
}

/// [`run_campaign`] fanned out across worker threads, one function per
/// task. Results are identical to the serial run (every case is
/// deterministic in the seed and the per-function search is independent);
/// only wall-clock time changes — the "group of high-end PCs" economics
/// of §2.2, on one machine.
pub fn run_campaign_parallel(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    threads: usize,
) -> CampaignResult {
    let journal = CheckpointJournal::new();
    run_campaign_parallel_checkpointed(library, targets, factory, config, threads, &journal)
}

/// [`run_campaign_parallel`] backed by a shared checkpoint journal (the
/// journal is internally synchronised). With a budget set, *which* cases
/// execute before exhaustion depends on thread scheduling, but repeated
/// resumed runs still converge on the uninterrupted result: the journal
/// only ever accumulates deterministic per-case classifications.
pub fn run_campaign_parallel_checkpointed(
    library: &str,
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    threads: usize,
    journal: &CheckpointJournal,
) -> CampaignResult {
    let threads = threads.max(1);
    let budget = BudgetClock::new(config);
    let mut slots: Vec<Option<(FunctionReport, RobustFunction, Vec<CrashCase>)>> =
        (0..targets.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    let worker_lines = std::sync::Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|scope| {
        for w in 0..threads {
            let (next, budget) = (&next, &budget);
            let (slots_mutex, worker_lines) = (&slots_mutex, &worker_lines);
            scope.spawn(move || {
                let cx = SearchCx { config, factory, journal, budget, hints: None };
                let started = Instant::now();
                let mut line = profiler::WorkerLine {
                    worker: format!("worker-{w}"),
                    functions: 0,
                    executed: 0,
                    checkpoint_hits: 0,
                    retries: 0,
                    failures: 0,
                    elapsed_micros: 0,
                };
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(target) = targets.get(i) else { break };
                    let outcome = function_entry(&cx, target);
                    line.functions += 1;
                    line.executed += outcome.0.tests - outcome.0.checkpoint_hits;
                    line.checkpoint_hits += outcome.0.checkpoint_hits;
                    line.retries += outcome.0.retries;
                    line.failures += outcome.2.len();
                    slots_mutex.lock().expect("slot lock")[i] = Some(outcome);
                }
                line.elapsed_micros = started.elapsed().as_micros() as u64;
                worker_lines.lock().expect("worker lines lock").push(line);
            });
        }
    });

    let mut reports = Vec::with_capacity(targets.len());
    let mut functions = Vec::with_capacity(targets.len());
    let mut crashes = Vec::new();
    for slot in slots {
        let (report, robust, mut cases) = slot.expect("every slot filled");
        reports.push(report);
        functions.push(robust);
        crashes.append(&mut cases);
    }
    let mut worker_metrics = worker_lines.into_inner().expect("worker lines lock");
    worker_metrics.sort_by(|a, b| a.worker.cmp(&b.worker));
    CampaignResult {
        library: library.to_string(),
        reports,
        api: RobustApi { library: library.to_string(), functions },
        crashes,
        complete: !budget.is_exhausted(),
        worker_metrics,
    }
}

fn record(histogram: &mut BTreeMap<Outcome, usize>, outcome: Outcome) {
    *histogram.entry(outcome).or_insert(0) += 1;
}

/// Whether a combo's materialised arguments jointly satisfy the chosen
/// predicates (evaluated with the allocation-aware oracle, like the
/// wrapper will).
fn combo_in_contract(
    factory: ProcFactory,
    plans: &[ParamPlan],
    chosen: &[usize],
    key: &CaseKey,
    seed: u64,
) -> bool {
    let mut proc = factory();
    let args = materialize(&mut proc, plans, key, seed);
    let oracle = simlibc::heap::HeapOracle::new();
    plans
        .iter()
        .enumerate()
        .all(|(i, p)| p.ladder[chosen[i]].pred.check(&proc, &oracle, &args, i))
}

fn search_function(
    cx: &SearchCx<'_>,
    target: &TargetFn,
) -> (FunctionReport, RobustFunction, Vec<CrashCase>) {
    let config = cx.config;
    let plans = plan(&target.proto);
    let fingerprint = function_fingerprint(config, &target.name, &target.proto, &plans);
    let imp = target.imp;
    let mut call = move |p: &mut Proc, a: &[CVal]| imp(p, a);
    let mut histogram = BTreeMap::new();
    let mut tests = 0usize;
    let mut crashes = Vec::new();
    let mut chosen = vec![0usize; plans.len()];
    let mut params = Vec::new();
    let mut tally = CaseTally::default();
    let mut host_bugs = 0usize;
    let mut stop: Option<Stop> = None;
    // Coverage units: one per parameter ladder climb, plus one for the
    // whole pairwise validation phase.
    let units_total = plans.len() + usize::from(config.validate_pairs);
    let mut units_done = 0usize;

    // Phase 1: per-parameter ladder climb (others pinned benign).
    for (i, p) in plans.iter().enumerate() {
        if stop.is_some() {
            // Untouched parameter: keep the strongest (most restrictive)
            // candidate type as a conservative placeholder.
            chosen[i] = p.ladder.len() - 1;
            params.push(ParamResult {
                chosen: chosen[i],
                chosen_name: p.ladder[chosen[i]].name.clone(),
                tried: Vec::new(),
                pruned: 0,
            });
            continue;
        }
        // Contract pre-seeding: a high-confidence static contract settles
        // the rungs below its floor — skip them and account for the cases
        // that would have run (the counts are deterministic in the seed,
        // so hinted campaign reports stay byte-reproducible).
        let floor =
            cx.hints.map(|h| h.floor(&target.name, i)).unwrap_or(0).min(p.ladder.len() - 1);
        let mut pruned = 0usize;
        for r in 0..floor {
            let probe_key = CaseKey::Ladder { param: i, rung_idx: r, value_idx: 0 };
            pruned += value_count(
                cx.factory,
                &plans,
                i,
                r,
                case_seed(config.seed, &target.name, &probe_key),
            );
        }
        let mut tried = Vec::new();
        let mut picked = p.ladder.len() - 1;
        'ladder: for (r, rung) in p.ladder.iter().enumerate().skip(floor) {
            let mut failures = 0usize;
            let probe_key = CaseKey::Ladder { param: i, rung_idx: r, value_idx: 0 };
            let n = value_count(
                cx.factory,
                &plans,
                i,
                r,
                case_seed(config.seed, &target.name, &probe_key),
            );
            for k in 0..n {
                let key = CaseKey::Ladder { param: i, rung_idx: r, value_idx: k };
                let Some(out) = cx.judge(
                    fingerprint,
                    &target.name,
                    &plans,
                    &key,
                    &mut call,
                    &mut tally,
                ) else {
                    stop = Some(Stop::Budget);
                    tried.push((rung.name.clone(), failures));
                    break 'ladder;
                };
                tests += 1;
                record(&mut histogram, out.outcome);
                if out.outcome == Outcome::HostBug {
                    host_bugs += 1;
                    if config.breaker_threshold > 0 && host_bugs >= config.breaker_threshold
                    {
                        stop = Some(Stop::Breaker);
                        tried.push((rung.name.clone(), failures));
                        break 'ladder;
                    }
                }
                if out.outcome.is_failure() {
                    failures += 1;
                    crashes.push(CrashCase {
                        func: target.name.clone(),
                        key,
                        outcome: out.outcome,
                        fault: out.fault,
                    });
                }
            }
            if stop.is_some() {
                break;
            }
            tried.push((rung.name.clone(), failures));
            if failures == 0 {
                picked = r;
                break;
            }
        }
        chosen[i] = picked;
        params.push(ParamResult {
            chosen: picked,
            chosen_name: plans[i].ladder[picked].name.clone(),
            tried,
            pruned,
        });
        if stop.is_none() {
            units_done += 1;
        }
    }

    // Phase 2: pairwise validation at the chosen rungs, escalating on
    // residual failures (catches relational failures the per-parameter
    // pass cannot see, e.g. strcpy(small_dst, long_src)). Combinations
    // that jointly violate the chosen predicates are skipped: the
    // wrapper will reject those, so they are out of contract.
    let max_escalations: usize = if config.validate_pairs && stop.is_none() {
        plans.iter().map(|p| p.ladder.len()).sum()
    } else {
        0
    };
    // Generator output lengths are context-independent; cache them so the
    // pairwise phase does not rebuild a scratch process per (param, rung)
    // per escalation round.
    let mut count_cache: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    let mut residual = 0usize;
    let mut ran_pairs = false;
    'rounds: for _round in 0..=max_escalations {
        if !config.validate_pairs || stop.is_some() {
            break;
        }
        ran_pairs = true;
        residual = 0;
        let mut failing_params: Vec<usize> = Vec::new();
        for i in 0..plans.len() {
            for j in (i + 1)..plans.len() {
                let mut cached_count = |param: usize, rung: usize| {
                    *count_cache.entry((param, rung)).or_insert_with(|| {
                        let key = CaseKey::Ladder { param, rung_idx: rung, value_idx: 0 };
                        value_count(
                            cx.factory,
                            &plans,
                            param,
                            rung,
                            case_seed(config.seed, &target.name, &key),
                        )
                    })
                };
                let ni = cached_count(i, chosen[i]).min(config.pair_values);
                let nj = cached_count(j, chosen[j]).min(config.pair_values);
                for vi in 0..ni {
                    for vj in 0..nj {
                        for j_first in [false, true] {
                            let key = CaseKey::Pair {
                                i,
                                j,
                                vi,
                                vj,
                                j_first,
                                rungs: chosen.clone(),
                            };
                            let seed = case_seed(config.seed, &target.name, &key);
                            if !combo_in_contract(cx.factory, &plans, &chosen, &key, seed) {
                                continue;
                            }
                            let Some(out) = cx.judge(
                                fingerprint,
                                &target.name,
                                &plans,
                                &key,
                                &mut call,
                                &mut tally,
                            ) else {
                                stop = Some(Stop::Budget);
                                break 'rounds;
                            };
                            tests += 1;
                            record(&mut histogram, out.outcome);
                            if out.outcome == Outcome::HostBug {
                                host_bugs += 1;
                                if config.breaker_threshold > 0
                                    && host_bugs >= config.breaker_threshold
                                {
                                    stop = Some(Stop::Breaker);
                                    break 'rounds;
                                }
                            }
                            if out.outcome.is_failure() {
                                residual += 1;
                                failing_params.push(i);
                                failing_params.push(j);
                                crashes.push(CrashCase {
                                    func: target.name.clone(),
                                    key,
                                    outcome: out.outcome,
                                    fault: out.fault,
                                });
                            }
                        }
                    }
                }
            }
        }
        if residual == 0 {
            break;
        }
        // Escalate an implicated parameter that still has headroom.
        let candidate = failing_params
            .iter()
            .copied()
            .find(|&p| chosen[p] + 1 < plans[p].ladder.len())
            .or_else(|| (0..plans.len()).find(|&p| chosen[p] + 1 < plans[p].ladder.len()));
        match candidate {
            Some(p) => chosen[p] += 1,
            None => break,
        }
    }
    if config.validate_pairs && ran_pairs && stop.is_none() {
        units_done += 1;
    }

    // Sync the recorded choices.
    for (i, pr) in params.iter_mut().enumerate() {
        pr.chosen = chosen[i];
        pr.chosen_name = plans[i].ladder[chosen[i]].name.clone();
    }

    let coverage =
        if units_total == 0 { 1.0 } else { units_done as f64 / units_total as f64 };
    let confidence = match stop {
        Some(Stop::Breaker) => Confidence::Inconclusive,
        Some(Stop::Budget) => Confidence::Partial,
        None if histogram.contains_key(&Outcome::Flaky) => Confidence::Flaky,
        None => Confidence::High,
    };
    let fully_robust = residual == 0 && stop.is_none();
    let preds: Vec<SafePred> =
        plans.iter().zip(&chosen).map(|(p, &r)| p.ladder[r].pred.clone()).collect();
    let pruned_total = params.iter().map(|p| p.pruned).sum();
    let report = FunctionReport {
        name: target.name.clone(),
        proto: target.proto.to_string(),
        tests,
        histogram,
        params,
        residual_failures: residual,
        fully_robust,
        skipped: false,
        confidence,
        coverage,
        retries: tally.retries,
        checkpoint_hits: tally.hits,
        pruned: pruned_total,
    };
    let mut robust = RobustFunction::new(target.proto.clone(), preds, fully_robust);
    robust.confidence = confidence;
    robust.coverage = coverage;
    (report, robust, crashes)
}

/// Dispatch shape for replaying by function name — typically the front of
/// a generated wrapper library.
pub type NamedDispatch<'a> =
    &'a mut dyn FnMut(&str, &mut Proc, &[CVal]) -> Result<CVal, Fault>;

/// Replays recorded crash cases through an arbitrary dispatch (typically
/// a generated wrapper) and reports how many still fail — the
/// before/after comparison of the paper's §3.1 demo.
pub fn replay_cases(
    cases: &[CrashCase],
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    dispatch: NamedDispatch<'_>,
) -> ReplaySummary {
    let mut still_failing = 0usize;
    let mut contained = 0usize;
    let mut graceful = 0usize;
    let mut by_function: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut histogram: BTreeMap<Outcome, usize> = BTreeMap::new();
    for case in cases {
        let Some(target) = targets.iter().find(|t| t.name == case.func) else {
            continue;
        };
        let plans: Vec<ParamPlan> = plan(&target.proto);
        let seed = case_seed(config.seed, &case.func, &case.key);
        let name = case.func.clone();
        let mut call = |p: &mut Proc, a: &[CVal]| dispatch(&name, p, a);
        let boxed: Dispatch<'_> = &mut call;
        let out = run_case_opts(
            factory,
            &plans,
            &case.key,
            seed,
            config.fuel,
            config.detect_silent,
            boxed,
        );
        let entry = by_function.entry(case.func.clone()).or_insert((0, 0));
        entry.0 += 1;
        *histogram.entry(out.outcome).or_insert(0) += 1;
        match out.outcome {
            o if o.is_failure() => {
                still_failing += 1;
                entry.1 += 1;
            }
            Outcome::Contained => contained += 1,
            Outcome::GracefulError => graceful += 1,
            _ => {}
        }
    }
    ReplaySummary {
        total: cases.len(),
        still_failing,
        contained,
        graceful,
        by_function,
        histogram,
    }
}

/// Outcome of replaying crash cases through a wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Cases replayed.
    pub total: usize,
    /// Cases that still ended in a robustness failure.
    pub still_failing: usize,
    /// Cases the wrapper deliberately contained/terminated.
    pub contained: usize,
    /// Cases turned into graceful errno errors.
    pub graceful: usize,
    /// Per-function `(replayed, still failing)` breakdown.
    pub by_function: BTreeMap<String, (usize, usize)>,
    /// Full outcome distribution over the replayed cases — the raw
    /// material for comparing wrapper strategies (containment vs healing).
    pub histogram: BTreeMap<Outcome, usize>,
}

impl ReplaySummary {
    /// Functions with uncontained failures, worst first.
    pub fn uncontained(&self) -> Vec<(&str, usize, usize)> {
        let mut v: Vec<_> = self
            .by_function
            .iter()
            .filter(|(_, (_, fail))| *fail > 0)
            .map(|(f, (total, fail))| (f.as_str(), *fail, *total))
            .collect();
        v.sort_by_key(|x| std::cmp::Reverse(x.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::setup::init_process;

    fn single_target(name: &str) -> Vec<TargetFn> {
        targets_from_simlibc().into_iter().filter(|t| t.name == name).collect()
    }

    fn quick_config() -> CampaignConfig {
        CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() }
    }

    #[test]
    fn strlen_needs_a_cstr() {
        let targets = single_target("strlen");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("strlen").unwrap();
        assert_eq!(f.preds, vec![SafePred::CStr]);
        assert!(f.fully_robust);
        assert_eq!(f.confidence, Confidence::High);
        assert_eq!(f.coverage, 1.0);
        assert!(result.complete);
        assert!(result.total_failures() > 0, "the bare function must have crashed");
    }

    #[test]
    fn strcpy_derives_relational_contract() {
        let targets = single_target("strcpy");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("strcpy").unwrap();
        assert!(f.fully_robust, "{:?}", result.reports[0]);
        // dest must be at least strong enough to hold src.
        match &f.preds[0] {
            SafePred::HoldsCStrOf { src: 1 } => {}
            SafePred::NullOr(inner) => {
                assert_eq!(**inner, SafePred::HoldsCStrOf { src: 1 })
            }
            other => panic!("unexpected dest contract: {other:?}"),
        }
        assert_eq!(f.preds[1], SafePred::CStr);
    }

    #[test]
    fn abs_is_robust_for_any_int() {
        let targets = single_target("abs");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("abs").unwrap();
        assert_eq!(f.preds, vec![SafePred::Always]);
        assert_eq!(result.total_failures(), 0);
    }

    #[test]
    fn isalpha_contract_is_char_range() {
        let targets = single_target("isalpha");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("isalpha").unwrap();
        assert_eq!(f.preds, vec![SafePred::IntInRange { min: -1, max: 255 }]);
    }

    #[test]
    fn div_requires_nonzero_divisor() {
        let targets = single_target("div");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("div").unwrap();
        assert_eq!(f.preds[1], SafePred::IntNonZero, "{:?}", result.reports[0].params);
    }

    #[test]
    fn time_keeps_null_permissiveness() {
        let targets = single_target("time");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        let f = result.api.function("time").unwrap();
        match &f.preds[0] {
            SafePred::NullOr(_) => {}
            other => panic!("time(NULL) must stay legal, got {other:?}"),
        }
    }

    #[test]
    fn skip_list_produces_trivial_contract() {
        let targets = single_target("exit");
        let result = run_campaign("libsimc.so.1", &targets, init_process, &quick_config());
        assert!(result.reports[0].skipped);
        assert!(result.api.function("exit").unwrap().skipped);
        assert_eq!(result.total_tests(), 0);
    }

    #[test]
    fn replay_through_identity_still_fails() {
        let targets = single_target("strlen");
        let config = quick_config();
        let result = run_campaign("libsimc.so.1", &targets, init_process, &config);
        let mut dispatch = |name: &str, p: &mut Proc, a: &[CVal]| {
            let t = simlibc::find_symbol(name).unwrap();
            (t.imp)(p, a)
        };
        let summary =
            replay_cases(&result.crashes, &targets, init_process, &config, &mut dispatch);
        assert_eq!(summary.total, result.crashes.len());
        assert_eq!(
            summary.still_failing, summary.total,
            "identity dispatch contains nothing"
        );
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| {
                ["strlen", "strcpy", "isalpha", "abs", "exit", "memset"]
                    .contains(&t.name.as_str())
            })
            .collect();
        let config = quick_config();
        let serial = run_campaign("l", &targets, init_process, &config);
        let parallel = run_campaign_parallel("l", &targets, init_process, &config, 4);
        assert_eq!(serial.total_tests(), parallel.total_tests());
        assert_eq!(serial.total_failures(), parallel.total_failures());
        for (a, b) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(a.name, b.name, "order preserved");
            assert_eq!(a.histogram, b.histogram, "{}", a.name);
            assert_eq!(a.skipped, b.skipped);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.coverage, b.coverage);
        }
        for (a, b) in serial.api.functions.iter().zip(&parallel.api.functions) {
            assert_eq!(a.preds, b.preds, "{}", a.proto.name);
        }
    }

    #[test]
    fn worker_metrics_account_for_the_whole_campaign() {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| {
                ["strlen", "strcpy", "isalpha", "abs", "exit", "memset"]
                    .contains(&t.name.as_str())
            })
            .collect();
        let config = quick_config();
        let serial = run_campaign("l", &targets, init_process, &config);
        assert!(serial.worker_metrics.is_empty(), "serial runs have no workers");

        let parallel = run_campaign_parallel("l", &targets, init_process, &config, 4);
        assert_eq!(parallel.worker_metrics.len(), 4, "one row per worker");
        let names: Vec<_> =
            parallel.worker_metrics.iter().map(|w| w.worker.as_str()).collect();
        assert_eq!(names, vec!["worker-0", "worker-1", "worker-2", "worker-3"]);
        // Scheduling decides who did what, but the totals must account
        // for every function, execution, hit, retry and failure.
        let functions: usize = parallel.worker_metrics.iter().map(|w| w.functions).sum();
        let executed: usize = parallel.worker_metrics.iter().map(|w| w.executed).sum();
        let hits: usize = parallel.worker_metrics.iter().map(|w| w.checkpoint_hits).sum();
        let retries: usize = parallel.worker_metrics.iter().map(|w| w.retries).sum();
        let failures: usize = parallel.worker_metrics.iter().map(|w| w.failures).sum();
        assert_eq!(functions, targets.len());
        assert_eq!(executed, parallel.executed_cases());
        assert_eq!(hits, parallel.checkpoint_hits());
        assert_eq!(retries, parallel.total_retries());
        assert_eq!(failures, parallel.total_failures());
        // The rows render through the profiler's report vocabulary.
        let rendered = profiler::render_worker_report("l", &parallel.worker_metrics);
        assert!(rendered.contains("worker-0"), "{rendered}");
        assert!(rendered.contains("total"), "{rendered}");
    }

    #[test]
    fn contract_hints_prune_cases_without_changing_the_verdict() {
        let targets = single_target("strlen");
        let config = quick_config();
        let unhinted = run_campaign("l", &targets, init_process, &config);
        // Floor the climb at the rung the campaign derives anyway (cstr).
        let mut hints = LadderHints::new();
        hints.set("strlen", vec![3]);
        let hinted = run_campaign_with_hints("l", &targets, init_process, &config, &hints);
        assert_eq!(hinted.api.to_xml(), unhinted.api.to_xml(), "same robust API");
        assert_eq!(unhinted.total_pruned(), 0);
        assert!(hinted.total_pruned() > 0, "floored rungs must be accounted");
        assert!(
            hinted.executed_cases() < unhinted.executed_cases(),
            "hinted: {} unhinted: {}",
            hinted.executed_cases(),
            unhinted.executed_cases()
        );
    }

    #[test]
    fn oversized_hint_floor_is_clamped() {
        let targets = single_target("strlen");
        let mut hints = LadderHints::new();
        hints.set("strlen", vec![99]);
        let result =
            run_campaign_with_hints("l", &targets, init_process, &quick_config(), &hints);
        let f = result.api.function("strlen").unwrap();
        assert_eq!(f.preds, vec![SafePred::CStr], "clamped to the strongest rung");
    }

    #[test]
    fn hinted_and_unhinted_campaigns_share_a_checkpoint_journal() {
        let targets = single_target("strlen");
        let config = quick_config();
        let journal = CheckpointJournal::new();
        let first =
            run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
        let mut hints = LadderHints::new();
        hints.set("strlen", vec![3]);
        let hinted = run_campaign_checkpointed_with_hints(
            "l",
            &targets,
            init_process,
            &config,
            &journal,
            &hints,
        );
        assert_eq!(hinted.executed_cases(), 0, "floors never change the fingerprint");
        assert_eq!(
            first.api.function("strlen").unwrap().preds,
            hinted.api.function("strlen").unwrap().preds
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let targets = single_target("strncpy");
        let config = quick_config();
        let r1 = run_campaign("l", &targets, init_process, &config);
        let r2 = run_campaign("l", &targets, init_process, &config);
        assert_eq!(r1.total_tests(), r2.total_tests());
        assert_eq!(r1.total_failures(), r2.total_failures());
        assert_eq!(
            r1.api.function("strncpy").unwrap().preds,
            r2.api.function("strncpy").unwrap().preds
        );
    }

    #[test]
    fn checkpointed_rerun_executes_nothing() {
        let targets = single_target("strlen");
        let config = quick_config();
        let journal = CheckpointJournal::new();
        let first =
            run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
        assert_eq!(first.checkpoint_hits(), 0);
        assert!(first.executed_cases() > 0);
        let again =
            run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
        assert_eq!(
            again.executed_cases(),
            0,
            "an unchanged (function, ladder, seed) triple is never re-executed"
        );
        assert_eq!(again.checkpoint_hits(), again.total_tests());
        assert_eq!(
            first.api.function("strlen").unwrap().preds,
            again.api.function("strlen").unwrap().preds
        );
        assert_eq!(first.total_tests(), again.total_tests());
        for (a, b) in first.reports.iter().zip(&again.reports) {
            assert_eq!(a.histogram, b.histogram);
        }
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "strcpy"].contains(&t.name.as_str()))
            .collect();
        let config = CampaignConfig { case_budget: Some(5), ..quick_config() };
        let result = run_campaign("l", &targets, init_process, &config);
        assert!(!result.complete);
        assert_eq!(result.reports.len(), 2, "every target still gets a report");
        assert_eq!(result.api.functions.len(), 2, "partial RobustApi, not an error");
        let partial: Vec<_> = result
            .api
            .functions
            .iter()
            .filter(|f| f.confidence == Confidence::Partial)
            .collect();
        assert!(!partial.is_empty(), "budget cut must be annotated");
        for f in partial {
            assert!(f.coverage < 1.0, "{}: {}", f.proto.name, f.coverage);
            assert!(!f.fully_robust);
        }
    }

    #[test]
    fn zero_time_budget_probes_nothing_but_reports_everything() {
        let targets = single_target("strlen");
        let config = CampaignConfig { time_budget: Some(Duration::ZERO), ..quick_config() };
        let result = run_campaign("l", &targets, init_process, &config);
        assert!(!result.complete);
        assert_eq!(result.total_tests(), 0);
        let f = result.api.function("strlen").unwrap();
        assert_eq!(f.confidence, Confidence::Partial);
        assert_eq!(f.coverage, 0.0);
        assert!(f.has_checks(), "unprobed contract is conservative, not permissive");
    }

    #[test]
    fn watchdog_rescues_slow_but_terminating_calls() {
        // A call that burns a fixed 1000 fuel terminates, but at a base
        // budget of 50 the first observation is Hang; the watchdog's
        // geometric fuel escalation must rescue it instead of
        // misclassifying.
        let table = cdecl::TypedefTable::with_builtins();
        let proto = cdecl::parse_prototype("int slow(int x);", &table).unwrap();
        let plans = plan(&proto);
        let mut call = |p: &mut Proc, _a: &[CVal]| -> Result<CVal, Fault> {
            for _ in 0..1000 {
                p.consume_fuel(1)?;
            }
            Ok(CVal::Int(0))
        };
        let key = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 0 };
        let seed = case_seed(1, "slow", &key);
        let starved = run_case_opts(init_process, &plans, &key, seed, 50, true, &mut call);
        assert_eq!(starved.outcome, Outcome::Hang, "starved fuel must look like a hang");

        let config = CampaignConfig {
            seed: 1,
            fuel: 50,
            watchdog_max_fuel_factor: 64,
            ..CampaignConfig::default()
        };
        let journal = CheckpointJournal::new();
        let budget = BudgetClock::new(&config);
        let cx = SearchCx {
            config: &config,
            factory: init_process,
            journal: &journal,
            budget: &budget,
            hints: None,
        };
        let mut tally = CaseTally::default();
        let out = cx.judge(1, "slow", &plans, &key, &mut call, &mut tally).unwrap();
        assert_ne!(out.outcome, Outcome::Hang, "watchdog must rescue slow calls");
        assert!(tally.retries > 0, "escalation must have happened");

        // A genuine hang stays a hang even after full escalation.
        let mut diverge = |p: &mut Proc, _a: &[CVal]| -> Result<CVal, Fault> {
            loop {
                p.consume_fuel(1)?;
            }
        };
        let mut tally = CaseTally::default();
        let out = cx.judge(2, "diverge", &plans, &key, &mut diverge, &mut tally).unwrap();
        assert_eq!(out.outcome, Outcome::Hang, "true divergence is still classified");
    }
}
