//! Durable, content-hash-keyed checkpoint journal for fault-injection
//! campaigns.
//!
//! Every completed case's final classification is recorded under a
//! per-function *fingerprint* — an FNV-1a hash over the function name,
//! its prototype, its full candidate-type ladder, and every
//! configuration knob that can change a case's classification (seed,
//! fuel, silent-failure detection, quorum and watchdog settings). An
//! interrupted campaign resumed with the same journal replays recorded
//! outcomes instead of re-executing their cases, so an unchanged
//! (function, ladder, seed) triple is never probed twice across runs —
//! while any change to the prototype or to an outcome-relevant knob
//! changes the fingerprint and invalidates exactly that function's
//! cached cases.
//!
//! The journal is durable: [`CheckpointJournal::to_text`] serialises it
//! to a stable line-based format (sorted, one case per line) and
//! [`CheckpointJournal::from_text`] reads it back; [`save`] / [`load`]
//! wrap those with file IO.
//!
//! [`save`]: CheckpointJournal::save
//! [`load`]: CheckpointJournal::load

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use cdecl::Prototype;
use typelattice::ParamPlan;

use crate::outcome::Outcome;
use crate::sandbox::CaseKey;
use crate::search::CampaignConfig;

/// 64-bit FNV-1a — a fixed, explicitly specified hash, stable across
/// Rust releases and platforms (unlike `DefaultHasher`, whose algorithm
/// is unspecified). Seeds, checkpoints and replays all key off it.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed string into the hash (the prefix keeps
    /// `("ab","c")` distinct from `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Folds a [`CaseKey`] into `h` via an explicit, stable encoding
/// (variant discriminant + every field as a `u64`). Derived `Hash` is
/// not guaranteed stable across toolchains; this is.
pub fn hash_case_key(h: &mut Fnv1a, key: &CaseKey) {
    match key {
        CaseKey::Ladder { param, rung_idx, value_idx } => {
            h.write_u64(1);
            h.write_u64(*param as u64);
            h.write_u64(*rung_idx as u64);
            h.write_u64(*value_idx as u64);
        }
        CaseKey::Pair { i, j, vi, vj, j_first, rungs } => {
            h.write_u64(2);
            h.write_u64(*i as u64);
            h.write_u64(*j as u64);
            h.write_u64(*vi as u64);
            h.write_u64(*vj as u64);
            h.write_u64(u64::from(*j_first));
            h.write_u64(rungs.len() as u64);
            for &r in rungs {
                h.write_u64(r as u64);
            }
        }
    }
}

/// Canonical single-token text encoding of a [`CaseKey`] — the journal's
/// on-disk case identifier. `L<param>.<rung>.<value>` for ladder cases,
/// `P<i>.<j>.<vi>.<vj>.<jf>.<r0>-<r1>-…` for pairwise cases.
pub fn encode_case_key(key: &CaseKey) -> String {
    match key {
        CaseKey::Ladder { param, rung_idx, value_idx } => {
            format!("L{param}.{rung_idx}.{value_idx}")
        }
        CaseKey::Pair { i, j, vi, vj, j_first, rungs } => {
            let rungs = rungs.iter().map(|r| r.to_string()).collect::<Vec<_>>().join("-");
            format!("P{i}.{j}.{vi}.{vj}.{}.{rungs}", u8::from(*j_first))
        }
    }
}

/// Journal schema version; bumped whenever the fingerprint recipe or the
/// line format changes.
const JOURNAL_VERSION: u64 = 1;

/// Content hash identifying one function's campaign inputs: name,
/// prototype, candidate-type ladder, and every configuration knob that
/// can change a classification. Budget and pairwise-phase sizing knobs
/// are deliberately excluded — they change *which* cases run, never what
/// an individual case observes — so a resumed run with a larger budget
/// still hits the cache.
pub fn function_fingerprint(
    config: &CampaignConfig,
    name: &str,
    proto: &Prototype,
    plans: &[ParamPlan],
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(JOURNAL_VERSION);
    h.write_u64(config.seed);
    h.write_u64(config.fuel);
    h.write_u64(u64::from(config.detect_silent));
    h.write_u64(config.quorum as u64);
    h.write_u64(config.watchdog_max_fuel_factor);
    h.write_str(name);
    h.write_str(&proto.to_string());
    h.write_u64(plans.len() as u64);
    for p in plans {
        h.write_u64(p.ladder.len() as u64);
        for rung in &p.ladder {
            h.write_str(&rung.name);
        }
    }
    h.finish()
}

/// Why a journal's durable form failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing or unrecognised header line.
    BadHeader,
    /// A record line (1-based, including the header) was malformed.
    BadLine(usize),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "bad checkpoint header"),
            CheckpointError::BadLine(n) => write!(f, "bad checkpoint record on line {n}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The checkpoint journal: completed case outcomes keyed by
/// `(function fingerprint, case key)`. Internally synchronised, so one
/// journal can back a parallel campaign.
#[derive(Debug, Default)]
pub struct CheckpointJournal {
    entries: Mutex<BTreeMap<u64, BTreeMap<String, Outcome>>>,
}

impl CheckpointJournal {
    /// An empty journal.
    pub fn new() -> Self {
        CheckpointJournal::default()
    }

    /// The recorded classification for `key` under `fingerprint`, if
    /// this exact case completed in a previous (or the current) run.
    pub fn lookup(&self, fingerprint: u64, key: &CaseKey) -> Option<Outcome> {
        self.entries
            .lock()
            .expect("journal lock")
            .get(&fingerprint)
            .and_then(|cases| cases.get(&encode_case_key(key)))
            .copied()
    }

    /// Records the final classification of one completed case.
    pub fn record(&self, fingerprint: u64, key: &CaseKey, outcome: Outcome) {
        self.entries
            .lock()
            .expect("journal lock")
            .entry(fingerprint)
            .or_default()
            .insert(encode_case_key(key), outcome);
    }

    /// Total recorded cases across all functions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal lock").values().map(BTreeMap::len).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct function fingerprints with recorded cases.
    pub fn functions(&self) -> usize {
        self.entries.lock().expect("journal lock").len()
    }

    /// Serialises the journal to its durable text form: a header line
    /// followed by one sorted `fingerprint key outcome` record per case.
    /// Byte-identical for identical contents.
    pub fn to_text(&self) -> String {
        let entries = self.entries.lock().expect("journal lock");
        let mut out = format!("healers-checkpoint v{JOURNAL_VERSION}\n");
        for (fp, cases) in entries.iter() {
            for (key, outcome) in cases {
                out.push_str(&format!("{fp:016x} {key} {}\n", outcome.tag()));
            }
        }
        out
    }

    /// Parses a journal back from [`CheckpointJournal::to_text`] output.
    ///
    /// A record only exists once its newline lands on disk, so a torn
    /// final line (no trailing `\n` — what a crash mid-write leaves
    /// behind) is dropped and the clean prefix loaded: the cases it
    /// covered are simply re-run. Interior malformed lines were fully
    /// written, so they still mean corruption and error out.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on a missing header or malformed record line.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let complete = match text.rfind('\n') {
            Some(pos) => &text[..pos + 1],
            None => "", // even the header line is torn
        };
        let mut lines = complete.lines();
        let header = lines.next().ok_or(CheckpointError::BadHeader)?;
        if header != format!("healers-checkpoint v{JOURNAL_VERSION}") {
            return Err(CheckpointError::BadHeader);
        }
        let mut entries: BTreeMap<u64, BTreeMap<String, Outcome>> = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(fp), Some(key), Some(tag), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(CheckpointError::BadLine(lineno));
            };
            let fp = u64::from_str_radix(fp, 16)
                .map_err(|_| CheckpointError::BadLine(lineno))?;
            let outcome = Outcome::from_tag(tag).ok_or(CheckpointError::BadLine(lineno))?;
            entries.entry(fp).or_default().insert(key.to_string(), outcome);
        }
        Ok(CheckpointJournal { entries: Mutex::new(entries) })
    }

    /// Writes the durable form to `path`, atomically: the text is
    /// written to a sibling `<path>.tmp`, synced to disk, renamed over
    /// `path`, and the parent directory is then synced so the rename
    /// itself is durable. A crash at any point leaves either the old
    /// journal or the new one — never a truncated file, which is what a
    /// bare `fs::write` risks and what PR 2's crash-resilient resume
    /// would then misread, and never a lost rename, which a power cut
    /// right after `rename` could otherwise produce.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        use std::io::Write as _;
        let path = path.as_ref();
        // Append ".tmp" rather than `with_extension`, which would
        // clobber an existing extension ("run.journal" -> "run.tmp").
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(self.to_text().as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // The rename only becomes durable once the directory entry is on
        // disk; without this a crash immediately after checkpointing can
        // resurrect the pre-rename journal despite the fsynced data.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()
    }

    /// Reads a journal previously written with [`CheckpointJournal::save`].
    ///
    /// # Errors
    ///
    /// File-system errors, or `InvalidData` when the content is
    /// malformed.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use typelattice::plan;

    fn ladder_key() -> CaseKey {
        CaseKey::Ladder { param: 1, rung_idx: 2, value_idx: 3 }
    }

    fn pair_key() -> CaseKey {
        CaseKey::Pair { i: 0, j: 1, vi: 4, vj: 5, j_first: true, rungs: vec![2, 3] }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn case_key_encoding_is_canonical() {
        assert_eq!(encode_case_key(&ladder_key()), "L1.2.3");
        assert_eq!(encode_case_key(&pair_key()), "P0.1.4.5.1.2-3");
    }

    #[test]
    fn record_lookup_roundtrip() {
        let j = CheckpointJournal::new();
        assert!(j.is_empty());
        j.record(7, &ladder_key(), Outcome::Crash);
        j.record(7, &pair_key(), Outcome::Pass);
        j.record(9, &ladder_key(), Outcome::Hang);
        assert_eq!(j.lookup(7, &ladder_key()), Some(Outcome::Crash));
        assert_eq!(j.lookup(7, &pair_key()), Some(Outcome::Pass));
        assert_eq!(j.lookup(9, &ladder_key()), Some(Outcome::Hang));
        assert_eq!(j.lookup(9, &pair_key()), None);
        assert_eq!(j.len(), 3);
        assert_eq!(j.functions(), 2);
    }

    #[test]
    fn text_roundtrip_is_stable() {
        let j = CheckpointJournal::new();
        j.record(0xdead, &ladder_key(), Outcome::Silent);
        j.record(0xbeef, &pair_key(), Outcome::Flaky);
        let text = j.to_text();
        let back = CheckpointJournal::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text, "serialisation is canonical");
        assert_eq!(back.lookup(0xdead, &ladder_key()), Some(Outcome::Silent));
        assert_eq!(back.lookup(0xbeef, &pair_key()), Some(Outcome::Flaky));
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert_eq!(
            CheckpointJournal::from_text("").unwrap_err(),
            CheckpointError::BadHeader
        );
        assert_eq!(
            CheckpointJournal::from_text("healers-checkpoint v999\n").unwrap_err(),
            CheckpointError::BadHeader
        );
        let bad = "healers-checkpoint v1\nnot-hex L0.0.0 crash\n";
        assert_eq!(
            CheckpointJournal::from_text(bad).unwrap_err(),
            CheckpointError::BadLine(2)
        );
        let bad = "healers-checkpoint v1\n00000000000000ff L0.0.0 gibberish\n";
        assert_eq!(
            CheckpointJournal::from_text(bad).unwrap_err(),
            CheckpointError::BadLine(2)
        );
    }

    #[test]
    fn fingerprint_tracks_prototype_and_outcome_knobs() {
        let t = TypedefTable::with_builtins();
        let p1 = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
        let p2 = parse_prototype("size_t strlen(const char *s, int extra);", &t).unwrap();
        let config = CampaignConfig::default();
        let fp1 = function_fingerprint(&config, "strlen", &p1, &plan(&p1));
        let fp2 = function_fingerprint(&config, "strlen", &p2, &plan(&p2));
        assert_ne!(fp1, fp2, "prototype change must invalidate");

        let reseeded = CampaignConfig { seed: 999, ..CampaignConfig::default() };
        assert_ne!(
            function_fingerprint(&reseeded, "strlen", &p1, &plan(&p1)),
            fp1,
            "seed change must invalidate"
        );

        // Budget-only changes keep the fingerprint: a resumed run with a
        // larger budget must hit the cache.
        let bigger_budget = CampaignConfig {
            case_budget: Some(10),
            pair_values: 99,
            ..CampaignConfig::default()
        };
        assert_eq!(function_fingerprint(&bigger_budget, "strlen", &p1, &plan(&p1)), fp1);
    }

    #[test]
    fn save_load_roundtrip() {
        let j = CheckpointJournal::new();
        j.record(1, &ladder_key(), Outcome::Abort);
        let path = std::env::temp_dir().join("healers_checkpoint_test.journal");
        j.save(&path).unwrap();
        let back = CheckpointJournal::load(&path).unwrap();
        assert_eq!(back.lookup(1, &ladder_key()), Some(Outcome::Abort));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let j = CheckpointJournal::new();
        j.record(1, &ladder_key(), Outcome::Crash);
        let path = std::env::temp_dir().join("healers_checkpoint_atomic.journal");
        let tmp = std::env::temp_dir().join("healers_checkpoint_atomic.journal.tmp");
        // Save over an existing journal — the old content must be
        // replaced wholesale, and the temp file must not linger.
        std::fs::write(&path, "healers-checkpoint v1\nstale").unwrap();
        j.save(&path).unwrap();
        assert!(!tmp.exists(), "temp file renamed away");
        let back = CheckpointJournal::load(&path).unwrap();
        assert_eq!(back.lookup(1, &ladder_key()), Some(Outcome::Crash));
        assert_eq!(back.len(), 1, "no stale entries survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_loads_as_clean_partial_state() {
        // Regression test: a crash mid-save used to leave a truncated
        // journal that either errored wholesale or, worse, resumed from
        // garbage. A torn final line now loads as the clean prefix.
        let j = CheckpointJournal::new();
        j.record(7, &ladder_key(), Outcome::Crash);
        j.record(7, &pair_key(), Outcome::Pass);
        j.record(9, &ladder_key(), Outcome::Hang);
        let full = j.to_text();

        // Truncate at every byte boundary: each prefix must load as
        // some clean subset or fail loudly — never misread a record.
        for cut in 0..full.len() {
            let torn = &full[..cut];
            match CheckpointJournal::from_text(torn) {
                Ok(partial) => {
                    assert!(partial.len() < j.len() || torn == full);
                    // Every surviving record matches the original.
                    for key in [ladder_key(), pair_key()] {
                        for fp in [7, 9] {
                            if let Some(outcome) = partial.lookup(fp, &key) {
                                assert_eq!(Some(outcome), j.lookup(fp, &key));
                            }
                        }
                    }
                }
                Err(e) => {
                    // Only a torn *header* may error, and it errors
                    // cleanly.
                    assert!(
                        !torn.contains('\n'),
                        "cut at {cut}: complete header must parse, got {e}"
                    );
                    assert_eq!(e, CheckpointError::BadHeader);
                }
            }
        }

        // An interior (fully written) malformed line is still corruption.
        let mut lines: Vec<&str> = full.lines().collect();
        lines[1] = "garbage";
        let corrupt = format!("{}\n", lines.join("\n"));
        assert_eq!(
            CheckpointJournal::from_text(&corrupt).unwrap_err(),
            CheckpointError::BadLine(2)
        );
    }
}
