//! Sandboxed execution of a single injected call: fresh process image,
//! deterministic argument materialisation, fuel watchdog, panic
//! containment.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simproc::{CVal, Fault, Proc};
use typelattice::{benign_value, values_for, GenCx, ParamPlan};

use crate::checkpoint::{hash_case_key, Fnv1a};
use crate::outcome::{classify, Outcome, TestOutcome};

/// Builds fresh process images for each test.
pub type ProcFactory = fn() -> Proc;

/// The dispatch used to invoke the function under test — either the raw
/// library symbol or a wrapped binding.
pub type Dispatch<'a> = &'a mut dyn FnMut(&mut Proc, &[CVal]) -> Result<CVal, Fault>;

/// A replayable identifier of one injected call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CaseKey {
    /// A ladder-search case: parameter `param` tested with value
    /// `value_idx` of rung `rung_idx`, everything else benign.
    Ladder {
        /// Parameter under test.
        param: usize,
        /// Rung index in the parameter's ladder.
        rung_idx: usize,
        /// Index into the rung's generated values.
        value_idx: usize,
    },
    /// A pairwise validation case: parameters `i` and `j` both take
    /// adversarial values from their currently chosen rungs (everything
    /// else benign) — the 2-way coverage that exposes relational
    /// failures like `strcpy(small_dst, long_src)`.
    Pair {
        /// First parameter of the pair.
        i: usize,
        /// Second parameter of the pair.
        j: usize,
        /// Value index for `i`.
        vi: usize,
        /// Value index for `j`.
        vj: usize,
        /// When `true`, `j`'s value is materialised before `i`'s, so
        /// relational values for `i` are constructed against the real
        /// `j` value (and vice versa when `false`).
        j_first: bool,
        /// Chosen rung index per parameter at the time of the pair.
        rungs: Vec<usize>,
    },
}

/// Deterministic per-case seed: an explicit FNV-1a hash of
/// `(base, function, key)`. The hash algorithm is pinned — unlike
/// `DefaultHasher`, whose output may change between Rust releases — so
/// seeds, checkpoint journals and replays stay stable across toolchains.
pub fn case_seed(base: u64, func: &str, key: &CaseKey) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(base);
    h.write_str(func);
    hash_case_key(&mut h, key);
    h.finish()
}

/// Materialises the argument vector for `key` inside `proc`.
/// Deterministic: the same key and seed always produce the same values at
/// the same addresses.
pub fn materialize(
    proc: &mut Proc,
    plans: &[ParamPlan],
    key: &CaseKey,
    seed: u64,
) -> Vec<CVal> {
    let mut cx = GenCx::new(proc, seed);
    let mut args: Vec<CVal> =
        plans.iter().map(|p| benign_value(p.class, &mut cx)).collect();
    match key {
        CaseKey::Ladder { param, rung_idx, value_idx } => {
            let rung = &plans[*param].ladder[*rung_idx];
            let values = values_for(plans[*param].class, &rung.pred, &mut cx, &args);
            args[*param] = values[value_idx % values.len().max(1)];
        }
        CaseKey::Pair { i, j, vi, vj, j_first, rungs } => {
            let order =
                if *j_first { [(*j, *vj), (*i, *vi)] } else { [(*i, *vi), (*j, *vj)] };
            for (param, value_idx) in order {
                let rung =
                    &plans[param].ladder[rungs[param].min(plans[param].ladder.len() - 1)];
                let values = values_for(plans[param].class, &rung.pred, &mut cx, &args);
                if !values.is_empty() {
                    args[param] = values[value_idx % values.len()];
                }
            }
        }
    }
    args
}

/// Runs one case: fresh process, materialise, call under a fuel budget.
/// Silent-corruption detection (the post-call heap invariant check) can
/// be disabled for ablation studies via [`run_case_opts`].
pub fn run_case(
    factory: ProcFactory,
    plans: &[ParamPlan],
    key: &CaseKey,
    seed: u64,
    fuel: u64,
    call: Dispatch<'_>,
) -> TestOutcome {
    run_case_opts(factory, plans, key, seed, fuel, true, call)
}

/// [`run_case`] with explicit control over silent-corruption detection.
pub fn run_case_opts(
    factory: ProcFactory,
    plans: &[ParamPlan],
    key: &CaseKey,
    seed: u64,
    fuel: u64,
    detect_silent: bool,
    call: Dispatch<'_>,
) -> TestOutcome {
    let mut proc = factory();
    let args = materialize(&mut proc, plans, key, seed);
    proc.set_errno(0);
    let errno_before = proc.errno();
    let start = proc.cycles();
    proc.set_fuel_limit(Some(start + fuel));
    let result = catch_unwind(AssertUnwindSafe(|| call(&mut proc, &args)));
    proc.set_fuel_limit(None);
    match result {
        Ok(r) => {
            let mut out = classify(r, errno_before, proc.errno());
            // A "successful" call that corrupted allocator metadata is a
            // Silent failure (the Ballista S class) — e.g. strcpy
            // overflowing a heap buffer without touching an unmapped page.
            if detect_silent
                && matches!(out.outcome, Outcome::Pass | Outcome::GracefulError)
                && simlibc::heap::check_invariants(&proc).is_err()
            {
                out.outcome = Outcome::Silent;
            }
            out
        }
        Err(_) => TestOutcome {
            outcome: Outcome::HostBug,
            fault: None,
            errno: proc.errno(),
            ret: None,
        },
    }
}

/// Number of values a rung generates (computed in a throwaway process so
/// callers can enumerate `value_idx`).
pub fn value_count(
    factory: ProcFactory,
    plans: &[ParamPlan],
    param: usize,
    rung_idx: usize,
    seed: u64,
) -> usize {
    let mut proc = factory();
    let mut cx = GenCx::new(&mut proc, seed);
    let pinned: Vec<CVal> = plans.iter().map(|p| benign_value(p.class, &mut cx)).collect();
    let rung = &plans[param].ladder[rung_idx];
    values_for(plans[param].class, &rung.pred, &mut cx, &pinned).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use simlibc::setup::init_process;
    use typelattice::plan;

    fn plans_for(proto: &str) -> Vec<ParamPlan> {
        let t = TypedefTable::with_builtins();
        plan(&parse_prototype(proto, &t).unwrap())
    }

    #[test]
    fn materialization_is_deterministic() {
        let plans = plans_for("char *strcpy(char *dest, const char *src);");
        let key = CaseKey::Ladder { param: 1, rung_idx: 0, value_idx: 2 };
        let seed = case_seed(42, "strcpy", &key);
        let mut p1 = init_process();
        let a1 = materialize(&mut p1, &plans, &key, seed);
        let mut p2 = init_process();
        let a2 = materialize(&mut p2, &plans, &key, seed);
        assert_eq!(a1, a2);
    }

    #[test]
    fn run_case_classifies_a_crash() {
        let plans = plans_for("size_t strlen(const char *s);");
        // Rung 0 is `any`; value 0 is NULL.
        let key = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 0 };
        let seed = case_seed(1, "strlen", &key);
        let strlen = simlibc::find_symbol("strlen").unwrap().imp;
        let mut call = move |p: &mut Proc, a: &[CVal]| strlen(p, a);
        let out = run_case(init_process, &plans, &key, seed, 100_000, &mut call);
        assert_eq!(out.outcome, Outcome::Crash, "{out:?}");
    }

    #[test]
    fn run_case_classifies_a_pass() {
        let plans = plans_for("size_t strlen(const char *s);");
        // The cstr rung (index 3) generates valid strings.
        let key = CaseKey::Ladder { param: 0, rung_idx: 3, value_idx: 0 };
        let seed = case_seed(1, "strlen", &key);
        let strlen = simlibc::find_symbol("strlen").unwrap().imp;
        let mut call = move |p: &mut Proc, a: &[CVal]| strlen(p, a);
        let out = run_case(init_process, &plans, &key, seed, 1_000_000, &mut call);
        assert_eq!(out.outcome, Outcome::Pass, "{out:?}");
    }

    #[test]
    fn host_panic_is_contained_as_host_bug() {
        let plans = plans_for("size_t strlen(const char *s);");
        let key = CaseKey::Ladder { param: 0, rung_idx: 3, value_idx: 0 };
        let mut call = |_p: &mut Proc, _a: &[CVal]| -> Result<CVal, Fault> {
            panic!("deliberate host bug")
        };
        let out = run_case(init_process, &plans, &key, 1, 100_000, &mut call);
        assert_eq!(out.outcome, Outcome::HostBug);
    }

    #[test]
    fn case_seed_varies_by_key_and_func() {
        let k1 = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 0 };
        let k2 = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 1 };
        assert_ne!(case_seed(1, "f", &k1), case_seed(1, "f", &k2));
        assert_ne!(case_seed(1, "f", &k1), case_seed(1, "g", &k1));
        assert_ne!(case_seed(1, "f", &k1), case_seed(2, "f", &k1));
    }

    #[test]
    fn case_seed_values_are_pinned() {
        // The seed recipe is part of the checkpoint-journal contract: if
        // these literals change, existing journals and recorded replays
        // silently stop matching. Bump the journal version when changing
        // the recipe.
        let ladder = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 0 };
        assert_eq!(case_seed(1, "strlen", &ladder), 0x6ed6_7bac_ef7b_212d);
        let pair =
            CaseKey::Pair { i: 0, j: 1, vi: 2, vj: 3, j_first: true, rungs: vec![4, 5] };
        assert_eq!(case_seed(2003, "strcpy", &pair), 0x3cf2_b092_4a1d_f2da);
    }

    #[test]
    fn value_count_matches_generation() {
        let plans = plans_for("size_t strlen(const char *s);");
        let n = value_count(init_process, &plans, 0, 0, 7);
        assert!(n >= 5, "{n}");
    }
}
