//! # injector — automated fault injection for HEALERS
//!
//! Implements the paper's §2.2 pipeline (Figure 2): given the prototypes
//! of a shared library's functions, probe each function with a hierarchy
//! of argument types — wild pointers first, progressively better-behaved
//! values — classify every outcome on the CRASH scale, and derive the
//! library's **robust API**: the weakest argument type per parameter for
//! which no robustness failure occurs. A validation pass over argument
//! *combinations* then catches relational failures (`strcpy` with a
//! too-small destination) and escalates to relational types.
//!
//! Every case is replayable ([`replay_cases`]), which is how the test
//! suite and examples demonstrate that generated wrappers contain the
//! very crashes the campaign found.
//!
//! Campaigns are crash-resilient: a durable [`CheckpointJournal`]
//! records every completed case so interrupted runs resume losslessly
//! ([`run_campaign_checkpointed`]), an outcome quorum re-confirms
//! failures and classifies disagreements as [`Outcome::Flaky`], an
//! adaptive watchdog escalates fuel before calling anything a hang, a
//! per-function circuit breaker contains harness bugs, and wall-clock /
//! case budgets degrade gracefully into a partial robust API with
//! per-function confidence and coverage annotations.
//!
//! ```no_run
//! use injector::{run_campaign, targets_from_simlibc, CampaignConfig};
//! use simlibc::setup::init_process;
//!
//! let targets = targets_from_simlibc();
//! let result = run_campaign("libsimc.so.1", &targets, init_process, &CampaignConfig::default());
//! println!("{}", injector::render_table(&result));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ablation;
mod checkpoint;
mod crossthread;
mod outcome;
mod report;
mod sandbox;
mod search;
mod substitution;

pub use ablation::{run_policy_ablation, AblationArm};
pub use checkpoint::{
    encode_case_key, function_fingerprint, hash_case_key, CheckpointError,
    CheckpointJournal, Fnv1a,
};
pub use crossthread::{run_cross_thread_case, run_cross_thread_quorum, CrossThreadFault};
pub use outcome::{classify, Outcome, TestOutcome};
pub use report::{render_table, to_xml};
pub use sandbox::{
    case_seed, materialize, run_case, run_case_opts, value_count, CaseKey, Dispatch,
    ProcFactory,
};
pub use search::{
    replay_cases, run_campaign, run_campaign_checkpointed,
    run_campaign_checkpointed_with_hints, run_campaign_parallel,
    run_campaign_parallel_checkpointed, run_campaign_with_hints, targets_from_simlibc,
    targets_from_simmath, CampaignConfig, CampaignResult, CrashCase, FunctionReport,
    NamedDispatch, ParamResult, ReplaySummary, TargetFn,
};
pub use substitution::{
    run_substitution_trial, Divergence, SubstitutionArms, SubstitutionSummary,
};
