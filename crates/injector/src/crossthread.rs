//! Cross-thread heap fault classes.
//!
//! The per-call campaign crashes one function at a time, on one thread.
//! A threaded server adds failure modes no single-call contract can
//! exhibit: two threads racing `free` on the same chunk, and one thread
//! overflowing its buffer so that the damage only *surfaces* when
//! another thread frees the neighbouring chunk. This module materializes
//! those as deterministic, seed-driven scenarios over simulated threads
//! sharing one address space and heap, and classifies them with the same
//! outcome lattice (and the same quorum discipline) as the per-call
//! campaign — so a cross-thread verdict is comparable to a Ballista-style
//! one.
//!
//! Seeds choose the *interleaving*, not random data: who frees first,
//! whether allocation traffic lands between the racing frees, how far an
//! overflow reaches. Re-running a seed replays the exact same thread
//! schedule, which is what makes the quorum pass meaningful — a verdict
//! that does not reproduce under the identical schedule is a harness
//! problem ([`Outcome::Flaky`]), not a property of the library.

use simproc::{CVal, Fault, Proc, ThreadId, VirtAddr};

use crate::outcome::{classify, Outcome, TestOutcome};
use crate::sandbox::ProcFactory;
use crate::search::CampaignConfig;

/// The cross-thread fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossThreadFault {
    /// Two threads race `free` on one chunk. The seed decides which
    /// thread frees first and whether a `malloc` lands between the two
    /// frees (which can legitimize the second free by reviving the
    /// chunk — the benign interleaving of the same race).
    RacingDoubleFree,
    /// One thread overflows its buffer into the neighbouring chunk's
    /// header; a *different* thread then frees the neighbour and walks
    /// the corrupted metadata.
    CrossThreadSmash,
}

impl CrossThreadFault {
    /// Stable tag for reports and journals.
    pub fn tag(self) -> &'static str {
        match self {
            CrossThreadFault::RacingDoubleFree => "racing-double-free",
            CrossThreadFault::CrossThreadSmash => "cross-thread-smash",
        }
    }
}

/// splitmix64 over the case seed: interleaving decisions, not data.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Calls a bare simlibc function (no wrappers — this is the injector's
/// view of the library, the same one the per-call campaign exercises).
fn libc(p: &mut Proc, name: &str, args: &[CVal]) -> Result<CVal, Fault> {
    let f = simlibc::find_symbol(name).expect("simlibc symbol").imp;
    f(p, args)
}

/// Sentinel return for "the allocator handed one chunk out twice" —
/// promoted to [`Outcome::Silent`] by the harness.
const DUP_CHUNK: i64 = 99;

fn racing_double_free(p: &mut Proc, seed: u64) -> Result<CVal, Fault> {
    let racer = p.spawn_thread("racer")?;
    let a = libc(p, "malloc", &[CVal::Int(48)])?;
    let _pin = libc(p, "malloc", &[CVal::Int(16)])?;

    // The schedule, decided by the seed: which thread frees first, and
    // whether allocation traffic intervenes between the racing frees.
    let racer_first = mix(seed) & 1 == 0;
    let traffic_between = mix(seed ^ 0xA5A5) & 1 == 0;

    if racer_first {
        p.switch_thread(racer);
    }
    libc(p, "free", &[a])?;
    p.switch_thread(if racer_first { ThreadId::MAIN } else { racer });
    if traffic_between {
        // A malloc between the frees may revive the chunk, turning the
        // second free into a legal one — the benign interleaving.
        let _ = libc(p, "malloc", &[CVal::Int(48)])?;
    }
    libc(p, "free", &[a])?; // the racing free

    // Follow-up traffic walking the (possibly corrupted) free list,
    // split across both threads like real request handling.
    p.switch_thread(ThreadId::MAIN);
    let b = libc(p, "malloc", &[CVal::Int(48)])?;
    p.switch_thread(racer);
    let c = libc(p, "malloc", &[CVal::Int(48)])?;
    Ok(CVal::Int(if b == c { DUP_CHUNK } else { 0 }))
}

fn cross_thread_smash(p: &mut Proc, seed: u64) -> Result<CVal, Fault> {
    let smasher = p.spawn_thread("smasher")?;
    let a = libc(p, "malloc", &[CVal::Int(24)])?.as_ptr();
    let b = libc(p, "malloc", &[CVal::Int(24)])?;

    // The smasher overflows `a` through plain (unwrapped) stores — the
    // damage reaches into the neighbouring chunk's header.
    p.switch_thread(smasher);
    // malloc(24) rounds up to a 48-byte chunk (16-byte header + 32
    // usable), so the neighbour's header starts at payload offset 32 and
    // its size word at offset 40: reach past 40 to guarantee the smash
    // lands on metadata the neighbour's free will walk.
    let reach = 41 + (mix(seed) % 15);
    let junk = vec![0xEEu8; reach as usize];
    p.write_bytes(a, &junk)?;

    // A different thread frees the *neighbour*: only now does the
    // allocator walk the corrupted metadata.
    p.switch_thread(ThreadId::MAIN);
    libc(p, "free", &[b])?;
    libc(p, "free", &[CVal::Ptr(a)])?;
    let c = libc(p, "malloc", &[CVal::Int(24)])?;
    Ok(CVal::Int(if c.as_ptr() == VirtAddr::NULL { DUP_CHUNK } else { 0 }))
}

/// Runs one cross-thread case in a fresh sandbox process and classifies
/// the result on the standard outcome lattice. Like the per-call
/// sandbox, a "successful" run that left the allocator's invariants
/// broken (or handed one chunk out twice) is a [`Outcome::Silent`]
/// failure — the corruption an attacker exploits later.
pub fn run_cross_thread_case(
    fault: CrossThreadFault,
    factory: ProcFactory,
    seed: u64,
    fuel: u64,
) -> TestOutcome {
    let mut p = factory();
    p.set_errno(0);
    let errno_before = p.errno();
    let start = p.cycles();
    p.set_fuel_limit(Some(start + fuel));
    let result = match fault {
        CrossThreadFault::RacingDoubleFree => racing_double_free(&mut p, seed),
        CrossThreadFault::CrossThreadSmash => cross_thread_smash(&mut p, seed),
    };
    p.set_fuel_limit(None);
    let mut out = classify(result, errno_before, p.errno());
    if matches!(out.outcome, Outcome::Pass | Outcome::GracefulError)
        && (out.ret == Some(CVal::Int(DUP_CHUNK))
            || simlibc::heap::check_invariants(&p).is_err())
    {
        out.outcome = Outcome::Silent;
    }
    out
}

/// [`run_cross_thread_case`] under the campaign's outcome-quorum
/// discipline: a failing verdict is re-executed (with fuel backoff) and
/// must reproduce exactly; one that does not is [`Outcome::Flaky`].
/// Because the seed pins the whole thread schedule, a healthy harness
/// never goes flaky here — the quorum is the regression tripwire for
/// nondeterminism sneaking into the shared-address-space substrate.
pub fn run_cross_thread_quorum(
    fault: CrossThreadFault,
    factory: ProcFactory,
    seed: u64,
    config: &CampaignConfig,
) -> TestOutcome {
    let out = run_cross_thread_case(fault, factory, seed, config.fuel);
    if config.quorum > 0 && out.outcome.is_failure() && out.outcome != Outcome::Hang {
        let mut fuel = config.fuel;
        for _ in 0..config.quorum {
            fuel = fuel.saturating_mul(2);
            let confirm = run_cross_thread_case(fault, factory, seed, fuel);
            if confirm.outcome != out.outcome {
                return TestOutcome {
                    outcome: Outcome::Flaky,
                    fault: None,
                    errno: out.errno,
                    ret: None,
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factory() -> Proc {
        simlibc::setup::init_process()
    }

    fn config() -> CampaignConfig {
        CampaignConfig { fuel: 300_000, quorum: 2, ..CampaignConfig::default() }
    }

    #[test]
    fn racing_double_free_verdicts_are_deterministic_under_quorum() {
        let mut failures = 0;
        for seed in 0..8 {
            let a = run_cross_thread_quorum(
                CrossThreadFault::RacingDoubleFree,
                factory,
                seed,
                &config(),
            );
            let b = run_cross_thread_quorum(
                CrossThreadFault::RacingDoubleFree,
                factory,
                seed,
                &config(),
            );
            assert_eq!(a.outcome, b.outcome, "seed {seed} must replay identically");
            assert_ne!(
                a.outcome,
                Outcome::Flaky,
                "a pinned schedule must reproduce its own verdict (seed {seed})"
            );
            if a.outcome.is_failure() {
                failures += 1;
            }
        }
        assert!(failures > 0, "some interleaving must corrupt the bare allocator");
    }

    #[test]
    fn benign_interleaving_exists_and_passes() {
        // A malloc between the racing frees can revive the chunk and
        // legalize the second free: the race is schedule-dependent,
        // which is exactly why it needs a cross-thread fault class.
        let outcomes: Vec<Outcome> = (0..8)
            .map(|seed| {
                run_cross_thread_case(
                    CrossThreadFault::RacingDoubleFree,
                    factory,
                    seed,
                    300_000,
                )
                .outcome
            })
            .collect();
        assert!(outcomes.contains(&Outcome::Pass), "{outcomes:?}");
        assert!(outcomes.iter().any(|o| o.is_failure()), "{outcomes:?}");
    }

    #[test]
    fn cross_thread_smash_is_observed_on_the_other_threads_free() {
        for seed in 0..4 {
            let out = run_cross_thread_quorum(
                CrossThreadFault::CrossThreadSmash,
                factory,
                seed,
                &config(),
            );
            assert!(
                out.outcome.is_failure(),
                "smashed metadata must never classify clean: seed {seed} -> {:?}",
                out.outcome
            );
            assert_ne!(out.outcome, Outcome::Flaky, "seed {seed}");
        }
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(CrossThreadFault::RacingDoubleFree.tag(), "racing-double-free");
        assert_eq!(CrossThreadFault::CrossThreadSmash.tag(), "cross-thread-smash");
    }
}
