//! Policy-ablation replay: the same recorded crash cases, the same
//! seeded argument ladders, replayed through competing wrapper policies
//! (Terminate vs Heal vs Oblivious) so their availability/corruption
//! trade-off is measured on identical inputs.
//!
//! The injector stays policy-agnostic: each arm is just a labelled
//! [`NamedDispatch`] (typically the front of a generated wrapper
//! library) plus an optional audit probe. The probe is the
//! no-silent-absorption contract's hook — it counts the audit events
//! (oblivious ledger entries, healing-journal records) visible to the
//! caller, sampled before and after every replayed case. A case that
//! survives without moving the counter is charged as an **unaudited
//! escape**, which a deployable failure-oblivious wrapper must never
//! produce.
//!
//! Everything is deterministic in the campaign seed: cases replay
//! serially, per-case seeds come from [`case_seed`], and rows land in a
//! `BTreeMap`, so two same-seed runs return byte-identical rows.

use std::collections::BTreeMap;
use std::fmt;

use profiler::AblationLine;
use simproc::Proc;
use typelattice::{plan, ParamPlan};

use crate::outcome::Outcome;
use crate::sandbox::{case_seed, run_case_opts, Dispatch, ProcFactory};
use crate::search::{CampaignConfig, CrashCase, NamedDispatch, TargetFn};

/// One policy arm of an ablation study.
pub struct AblationArm<'a> {
    /// Policy label stamped into every row this arm produces (e.g.
    /// `terminate`, `heal`, `oblivious`).
    pub policy: &'a str,
    /// Dispatch for this arm — typically `wrapper.get(name).call(...)`
    /// with a bare-symbol fallback for unwrapped functions.
    pub dispatch: NamedDispatch<'a>,
    /// Optional audit-event counter, sampled before and after each case.
    /// When present, a surviving case that leaves the counter unchanged
    /// is an unaudited escape; when absent, audit accounting is skipped
    /// (the arm's `absorbed_audited`/`unaudited_escapes` stay zero).
    pub probe: Option<&'a mut dyn FnMut() -> u64>,
}

impl fmt::Debug for AblationArm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AblationArm")
            .field("policy", &self.policy)
            .field("probe", &self.probe.is_some())
            .finish_non_exhaustive()
    }
}

/// Replays `cases` through every arm and returns one [`AblationLine`]
/// per (function, policy) — requests survived vs corruption escaped,
/// with audited-absorption accounting where the arm provides a probe.
///
/// Survival means the call returned normally or as a graceful errno
/// error; corruption escape is the Silent class (a "successful" return
/// that broke heap invariants), so `config.detect_silent` should stay
/// on for the comparison to mean anything.
pub fn run_policy_ablation(
    cases: &[CrashCase],
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    arms: &mut [AblationArm<'_>],
) -> Vec<AblationLine> {
    let mut rows: BTreeMap<(String, String), AblationLine> = BTreeMap::new();
    for arm in arms.iter_mut() {
        for case in cases {
            let Some(target) = targets.iter().find(|t| t.name == case.func) else {
                continue;
            };
            let plans: Vec<ParamPlan> = plan(&target.proto);
            let seed = case_seed(config.seed, &case.func, &case.key);
            let before = arm.probe.as_mut().map(|p| p());
            let name = case.func.clone();
            let dispatch = &mut *arm.dispatch;
            let mut call = |p: &mut Proc, a: &[simproc::CVal]| dispatch(&name, p, a);
            let boxed: Dispatch<'_> = &mut call;
            let out = run_case_opts(
                factory,
                &plans,
                &case.key,
                seed,
                config.fuel,
                config.detect_silent,
                boxed,
            );
            let after = arm.probe.as_mut().map(|p| p());
            let row = rows
                .entry((case.func.clone(), arm.policy.to_string()))
                .or_insert_with(|| AblationLine {
                    func: case.func.clone(),
                    policy: arm.policy.to_string(),
                    replayed: 0,
                    survived: 0,
                    corruption_escaped: 0,
                    absorbed_audited: 0,
                    unaudited_escapes: 0,
                });
            row.replayed += 1;
            match out.outcome {
                Outcome::Pass | Outcome::GracefulError => {
                    row.survived += 1;
                    if let (Some(b), Some(a)) = (before, after) {
                        if a > b {
                            row.absorbed_audited += 1;
                        } else {
                            row.unaudited_escapes += 1;
                        }
                    }
                }
                Outcome::Silent => row.corruption_escaped += 1,
                _ => {}
            }
        }
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::setup::init_process;
    use simproc::{CVal, Fault};

    use crate::search::{run_campaign, targets_from_simlibc};

    fn strlen_cases() -> (Vec<CrashCase>, Vec<TargetFn>, CampaignConfig) {
        let targets: Vec<_> =
            targets_from_simlibc().into_iter().filter(|t| t.name == "strlen").collect();
        let config = CampaignConfig { fuel: 300_000, ..CampaignConfig::default() };
        let result = run_campaign("libsimc.so.1", &targets, init_process, &config);
        assert!(!result.crashes.is_empty(), "strlen must crash bare");
        (result.crashes, targets, config)
    }

    #[test]
    fn bare_vs_absorbing_arms_diverge_and_rows_are_deterministic() {
        let (cases, targets, config) = strlen_cases();
        let bare = targets[0].imp;
        let mut audited = 0u64;

        let run = |audited: &mut u64| {
            let mut bare_dispatch = move |_n: &str,
                                          p: &mut Proc,
                                          a: &[CVal]|
                  -> Result<CVal, Fault> { bare(p, a) };
            // An "oblivious" stand-in: absorb everything into 0 and
            // bump the audit counter for every absorption.
            let mut absorb = |_n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                match bare(p, a) {
                    Ok(v) => Ok(v),
                    Err(Fault::Exit(n)) => Err(Fault::Exit(n)),
                    Err(_) => {
                        *audited += 1;
                        Ok(CVal::Int(0))
                    }
                }
            };
            let mut arms = [
                AblationArm { policy: "bare", dispatch: &mut bare_dispatch, probe: None },
                AblationArm { policy: "oblivious", dispatch: &mut absorb, probe: None },
            ];
            run_policy_ablation(&cases, &targets, init_process, &config, &mut arms)
        };

        let rows1 = run(&mut audited);
        let rows2 = run(&mut audited);
        assert_eq!(rows1, rows2, "same seed must give identical rows");
        assert!(audited > 0, "the absorbing arm must have absorbed something");

        let find = |rows: &[AblationLine], policy: &str| -> AblationLine {
            rows.iter().find(|r| r.policy == policy).unwrap().clone()
        };
        let bare_row = find(&rows1, "bare");
        let obl_row = find(&rows1, "oblivious");
        assert_eq!(bare_row.replayed, obl_row.replayed);
        assert!(
            obl_row.survived > bare_row.survived,
            "absorption must survive more: {obl_row:?} vs {bare_row:?}"
        );
    }

    #[test]
    fn probe_separates_audited_absorption_from_unaudited_escape() {
        let (cases, targets, config) = strlen_cases();
        let bare = targets[0].imp;

        // Arm A absorbs and audits; arm B absorbs silently. The probe
        // charges B's survivals as unaudited escapes.
        let counter = std::cell::Cell::new(0u64);
        let mut audited_absorb =
            |_n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                bare(p, a).or_else(|_| {
                    counter.set(counter.get() + 1);
                    Ok(CVal::Int(0))
                })
            };
        let mut silent_absorb =
            |_n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                bare(p, a).or(Ok(CVal::Int(0)))
            };
        let mut probe_a = || counter.get();
        let mut probe_b = || 0u64;
        let mut arms = [
            AblationArm {
                policy: "audited",
                dispatch: &mut audited_absorb,
                probe: Some(&mut probe_a),
            },
            AblationArm {
                policy: "silent",
                dispatch: &mut silent_absorb,
                probe: Some(&mut probe_b),
            },
        ];
        let rows = run_policy_ablation(&cases, &targets, init_process, &config, &mut arms);
        let audited = rows.iter().find(|r| r.policy == "audited").unwrap();
        let silent = rows.iter().find(|r| r.policy == "silent").unwrap();
        assert!(audited.survived > 0);
        assert_eq!(audited.unaudited_escapes, 0, "{audited:?}");
        assert_eq!(audited.absorbed_audited, audited.survived, "{audited:?}");
        assert_eq!(silent.absorbed_audited, 0, "{silent:?}");
        assert_eq!(silent.unaudited_escapes, silent.survived, "{silent:?}");
        assert!(silent.unaudited_escapes > 0, "{silent:?}");
    }
}
