//! Substitution-trial replay: the same recorded crash cases, the same
//! seeded argument ladders, replayed through the *detecting* wrapper
//! (canary + terminate) and the *substituting* wrapper (safer variants
//! clipped to the oracle's exact extent), so the prevented-vs-detected
//! claim is measured on identical inputs.
//!
//! The trial also carries the soundness gate: every case is replayed
//! through an unsubstituted reference arm, and any case the reference
//! *passes* must produce the identical `(outcome, return, errno)` triple
//! through the substitute — a substitution that changes in-contract
//! behaviour is unsound no matter how many overflows it prevents, and
//! CI fails on a single divergence.
//!
//! Deterministic like the policy ablation: per-case seeds come from
//! [`case_seed`], rows land in a `BTreeMap`, and two same-seed runs
//! return byte-identical rows (and byte-identical rendered reports).

use std::collections::BTreeMap;
use std::fmt;

use profiler::SubstitutionLine;
use simproc::Proc;
use typelattice::{plan, ParamPlan};

use crate::outcome::{Outcome, TestOutcome};
use crate::sandbox::{case_seed, run_case_opts, Dispatch, ProcFactory};
use crate::search::{CampaignConfig, CrashCase, NamedDispatch, TargetFn};

/// The three dispatch arms of a substitution trial.
pub struct SubstitutionArms<'a> {
    /// The detecting wrapper — typically the security wrapper, which
    /// terminates on canary smash / refused writes.
    pub detect: NamedDispatch<'a>,
    /// The substituting wrapper backed by proven plans.
    pub substitute: NamedDispatch<'a>,
    /// The unsubstituted reference the divergence gate compares against
    /// — usually the same dispatch as `detect`.
    pub reference: NamedDispatch<'a>,
    /// Counter of journaled `prevented` events in the substitute arm,
    /// sampled before and after each case: a survival that moved the
    /// counter is a prevented overflow, not a mere pass.
    pub prevented_probe: &'a mut dyn FnMut() -> u64,
}

impl fmt::Debug for SubstitutionArms<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubstitutionArms").finish_non_exhaustive()
    }
}

/// One same-seed behaviour divergence — reference passed, substitute
/// answered differently. Any entry fails the soundness gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Function the case targeted.
    pub func: String,
    /// What the unsubstituted reference did.
    pub reference: TestOutcome,
    /// What the substitute did instead.
    pub substitute: TestOutcome,
}

/// The trial result: per-function rows plus the divergence list.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstitutionSummary {
    /// One row per function, sorted by name.
    pub lines: Vec<SubstitutionLine>,
    /// Every same-seed divergence found (must be empty for a sound
    /// substitution).
    pub divergences: Vec<Divergence>,
}

fn replay(
    case: &CrashCase,
    plans: &[ParamPlan],
    factory: ProcFactory,
    config: &CampaignConfig,
    seed: u64,
    dispatch: NamedDispatch<'_>,
) -> TestOutcome {
    let name = case.func.clone();
    let mut call = |p: &mut Proc, a: &[simproc::CVal]| dispatch(&name, p, a);
    let boxed: Dispatch<'_> = &mut call;
    run_case_opts(factory, plans, &case.key, seed, config.fuel, config.detect_silent, boxed)
}

/// Replays `cases` through all three arms and returns the
/// prevented-vs-detected rows plus the divergence list.
pub fn run_substitution_trial(
    cases: &[CrashCase],
    targets: &[TargetFn],
    factory: ProcFactory,
    config: &CampaignConfig,
    arms: &mut SubstitutionArms<'_>,
) -> SubstitutionSummary {
    let mut rows: BTreeMap<String, SubstitutionLine> = BTreeMap::new();
    let mut divergences = Vec::new();
    for case in cases {
        let Some(target) = targets.iter().find(|t| t.name == case.func) else {
            continue;
        };
        let plans: Vec<ParamPlan> = plan(&target.proto);
        let seed = case_seed(config.seed, &case.func, &case.key);

        let det = replay(case, &plans, factory, config, seed, &mut *arms.detect);
        let before = (arms.prevented_probe)();
        let sub = replay(case, &plans, factory, config, seed, &mut *arms.substitute);
        let after = (arms.prevented_probe)();
        let reference = replay(case, &plans, factory, config, seed, &mut *arms.reference);

        let row = rows.entry(case.func.clone()).or_insert_with(|| SubstitutionLine {
            func: case.func.clone(),
            replayed: 0,
            detected: 0,
            prevented: 0,
            survived: 0,
            diverged: 0,
        });
        row.replayed += 1;
        // Detection = the unsubstituted security wrapper refused or
        // terminated the call (canary smash / rejected write).
        if det.outcome == Outcome::Contained {
            row.detected += 1;
        }
        match sub.outcome {
            Outcome::Pass | Outcome::GracefulError => {
                row.survived += 1;
                if after > before {
                    row.prevented += 1;
                }
            }
            _ => {}
        }
        // Soundness gate: on cases the reference passes, the substitute
        // must be observationally identical.
        if reference.outcome == Outcome::Pass
            && (sub.outcome, &sub.ret, sub.errno)
                != (reference.outcome, &reference.ret, reference.errno)
        {
            row.diverged += 1;
            divergences.push(Divergence {
                func: case.func.clone(),
                reference: reference.clone(),
                substitute: sub.clone(),
            });
        }
    }
    SubstitutionSummary { lines: rows.into_values().collect(), divergences }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::setup::init_process;
    use simproc::{CVal, Fault};
    use typelattice::{ExtentClass, ProofStep, SubstFamily, SubstitutionPlan};
    use wrappergen::{build_wrapper, WrapperConfig, WrapperKind};

    use crate::search::{run_campaign, targets_from_simlibc};

    fn proven_plan(family: SubstFamily) -> SubstitutionPlan {
        SubstitutionPlan {
            func: family.func().into(),
            family,
            dst_arg: 0,
            src_arg: 1,
            dst_extent: ExtentClass::ExactExtent,
            proof: vec![ProofStep {
                obligation: "test fixture".into(),
                discharged_by: "fixture".into(),
            }],
        }
    }

    #[test]
    fn strcpy_overflows_move_from_detected_to_prevented() {
        let targets: Vec<_> =
            targets_from_simlibc().into_iter().filter(|t| t.name == "strcpy").collect();
        let config = CampaignConfig { fuel: 300_000, ..CampaignConfig::default() };
        let result = run_campaign("libsimc.so.1", &targets, init_process, &config);
        assert!(!result.crashes.is_empty(), "strcpy must fail bare");

        let security =
            build_wrapper(WrapperKind::Security, &result.api, &WrapperConfig::default());
        let subst_config = WrapperConfig {
            substitutions: vec![proven_plan(SubstFamily::Strcpy)],
            ..WrapperConfig::default()
        };
        let substitute = build_wrapper(WrapperKind::Substitute, &result.api, &subst_config);
        assert_eq!(substitute.wrapped_names(), vec!["strcpy"]);
        let journal = std::sync::Arc::clone(&substitute.journal);

        let run = || {
            let mut det = |n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                security.get(n).unwrap().call(p, a)
            };
            let mut refr = |n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                security.get(n).unwrap().call(p, a)
            };
            let mut sub = |n: &str, p: &mut Proc, a: &[CVal]| -> Result<CVal, Fault> {
                substitute.get(n).unwrap().call(p, a)
            };
            let mut probe = || {
                journal
                    .snapshot()
                    .iter()
                    .filter(|e| e.action == profiler::HealAction::Prevented)
                    .count() as u64
            };
            let mut arms = SubstitutionArms {
                detect: &mut det,
                substitute: &mut sub,
                reference: &mut refr,
                prevented_probe: &mut probe,
            };
            run_substitution_trial(
                &result.crashes,
                &targets,
                init_process,
                &config,
                &mut arms,
            )
        };

        let s1 = run();
        let s2 = run();
        assert_eq!(s1.lines, s2.lines, "same seed must give identical rows");
        assert!(s1.divergences.is_empty(), "{:?}", s1.divergences);
        let row = &s1.lines[0];
        assert_eq!(row.func, "strcpy");
        assert!(row.detected > 0, "security wrapper must detect overflows: {row:?}");
        assert!(row.prevented > 0, "substitute must prevent overflows: {row:?}");
        assert!(row.survived >= row.prevented, "{row:?}");
        assert_eq!(row.diverged, 0, "{row:?}");
    }
}
