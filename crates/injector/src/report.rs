//! Rendering campaign results: the robustness table of the §3.1 demo and
//! the XML documents HEALERS ships to its collection server.
//!
//! Both renderings are deterministic: functions are sorted by symbol
//! name, histograms are ordered maps, and run-variable telemetry
//! (retries, checkpoint hits) stays out of the XML so a resumed campaign
//! serialises byte-identically to an uninterrupted one.

use std::fmt::Write as _;

use cdecl::xml::XmlWriter;

use crate::outcome::Outcome;
use crate::search::{CampaignResult, FunctionReport};

fn sorted_reports(result: &CampaignResult) -> Vec<&FunctionReport> {
    let mut reports: Vec<&FunctionReport> = result.reports.iter().collect();
    reports.sort_by(|a, b| a.name.cmp(&b.name));
    reports
}

/// Renders the campaign as a fixed-width text table: one row per
/// function (sorted by name), failure counts by class, confidence and
/// coverage annotations, and the derived safe types.
pub fn render_table(result: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Robustness campaign over {} — {} functions, {} injected calls, {} failures{}{}",
        result.library,
        result.reports.len(),
        result.total_tests(),
        result.total_failures(),
        match result.total_pruned() {
            0 => String::new(),
            n => format!(", {n} cases pruned by static contracts"),
        },
        if result.complete { "" } else { " [PARTIAL: budget exhausted]" }
    );
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>12} {:>5}  derived robust argument types",
        "function", "tests", "crash", "abort", "hang", "resid", "confidence", "cover"
    );
    let _ = writeln!(out, "{}", "-".repeat(112));
    for r in sorted_reports(result) {
        if r.skipped {
            let _ = writeln!(
                out,
                "{:<14} {:>6}  (skipped: terminates by contract)",
                r.name, "-"
            );
            continue;
        }
        let count = |o: Outcome| r.histogram.get(&o).copied().unwrap_or(0);
        let types =
            r.params.iter().map(|p| p.chosen_name.as_str()).collect::<Vec<_>>().join(", ");
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>12} {:>5.3}  [{}]{}",
            r.name,
            r.tests,
            count(Outcome::Crash),
            count(Outcome::Abort),
            count(Outcome::Hang),
            r.residual_failures,
            r.confidence.tag(),
            r.coverage,
            types,
            if r.fully_robust { "" } else { "  (!residual)" }
        );
    }
    out
}

/// Serialises the campaign as a self-describing XML document (the format
/// sent to the central server in §2.3). Functions are emitted sorted by
/// symbol name; per-run telemetry that varies between a full and a
/// resumed run (retries, checkpoint hits) is deliberately excluded so
/// equivalent campaigns serialise byte-identically.
pub fn to_xml(result: &CampaignResult) -> String {
    let mut w = XmlWriter::new();
    w.open(
        "campaign",
        &[
            ("library", result.library.as_str()),
            ("tests", &result.total_tests().to_string()),
            ("failures", &result.total_failures().to_string()),
            ("pruned", &result.total_pruned().to_string()),
            ("complete", if result.complete { "true" } else { "false" }),
        ],
    );
    for r in sorted_reports(result) {
        w.open(
            "function",
            &[
                ("name", r.name.as_str()),
                ("tests", &r.tests.to_string()),
                ("fully-robust", if r.fully_robust { "true" } else { "false" }),
                ("skipped", if r.skipped { "true" } else { "false" }),
                ("confidence", r.confidence.tag()),
                ("coverage", &format!("{:.3}", r.coverage)),
                ("pruned", &r.pruned.to_string()),
            ],
        );
        for (o, n) in &r.histogram {
            w.leaf("outcome", &[("kind", o.tag()), ("count", &n.to_string())]);
        }
        for (i, p) in r.params.iter().enumerate() {
            w.open(
                "param",
                &[
                    ("index", &(i + 1).to_string()),
                    ("robust-type", p.chosen_name.as_str()),
                    ("pruned", &p.pruned.to_string()),
                ],
            );
            for (rung, failures) in &p.tried {
                w.leaf(
                    "rung",
                    &[("type", rung.as_str()), ("failures", &failures.to_string())],
                );
            }
            w.close();
        }
        w.close();
    }
    w.close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_campaign, targets_from_simlibc, CampaignConfig};
    use simlibc::setup::init_process;

    fn small_result() -> CampaignResult {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "abs", "exit"].contains(&t.name.as_str()))
            .collect();
        let config = CampaignConfig { pair_values: 4, fuel: 200_000, ..Default::default() };
        run_campaign("libsimc.so.1", &targets, init_process, &config)
    }

    #[test]
    fn table_mentions_functions_and_types() {
        let table = render_table(&small_result());
        assert!(table.contains("strlen"), "{table}");
        assert!(table.contains("cstr"), "{table}");
        assert!(table.contains("skipped"), "{table}");
        assert!(table.contains("injected calls"), "{table}");
        assert!(table.contains("high"), "{table}");
    }

    #[test]
    fn xml_is_well_formed_enough() {
        let xml = to_xml(&small_result());
        assert!(xml.starts_with("<?xml"));
        assert_eq!(xml.matches("<campaign").count(), 1);
        assert_eq!(xml.matches("</campaign>").count(), 1);
        assert_eq!(xml.matches("<function").count(), xml.matches("</function>").count());
        assert!(xml.contains("robust-type"));
        assert!(xml.contains("complete=\"true\""), "{xml}");
        assert!(xml.contains("confidence=\"high\""), "{xml}");
    }

    #[test]
    fn reports_render_sorted_by_function_name() {
        let result = small_result();
        let table = render_table(&result);
        let xml = to_xml(&result);
        // abs < exit < strlen alphabetically, regardless of probe order.
        for text in [&table, &xml] {
            let abs = text.find("abs").unwrap();
            let exit = text.find("exit").unwrap();
            let strlen = text.find("strlen").unwrap();
            assert!(abs < exit && exit < strlen, "{text}");
        }
    }

    #[test]
    fn hinted_campaign_reports_pruned_counts_in_xml() {
        let targets: Vec<_> =
            targets_from_simlibc().into_iter().filter(|t| t.name == "strlen").collect();
        let config = CampaignConfig { pair_values: 4, fuel: 200_000, ..Default::default() };
        let mut hints = typelattice::LadderHints::new();
        hints.set("strlen", vec![3]);
        let result = crate::search::run_campaign_with_hints(
            "libsimc.so.1",
            &targets,
            init_process,
            &config,
            &hints,
        );
        assert!(result.total_pruned() > 0);
        let xml = to_xml(&result);
        assert!(xml.contains(&format!("pruned=\"{}\"", result.total_pruned())), "{xml}");
    }

    #[test]
    fn same_seed_runs_render_byte_identically() {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "isalpha"].contains(&t.name.as_str()))
            .collect();
        let config = CampaignConfig { pair_values: 4, fuel: 200_000, ..Default::default() };
        let r1 = run_campaign("libsimc.so.1", &targets, init_process, &config);
        let r2 = run_campaign("libsimc.so.1", &targets, init_process, &config);
        assert_eq!(render_table(&r1), render_table(&r2));
        assert_eq!(to_xml(&r1), to_xml(&r2));
        assert_eq!(r1.api.to_xml(), r2.api.to_xml());
    }
}
