//! Rendering campaign results: the robustness table of the §3.1 demo and
//! the XML documents HEALERS ships to its collection server.

use std::fmt::Write as _;

use cdecl::xml::XmlWriter;

use crate::outcome::Outcome;
use crate::search::CampaignResult;

/// Renders the campaign as a fixed-width text table: one row per
/// function, failure counts by class, and the derived safe types.
pub fn render_table(result: &CampaignResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Robustness campaign over {} — {} functions, {} injected calls, {} failures",
        result.library,
        result.reports.len(),
        result.total_tests(),
        result.total_failures()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}  derived robust argument types",
        "function", "tests", "crash", "abort", "hang", "resid"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for r in &result.reports {
        if r.skipped {
            let _ = writeln!(
                out,
                "{:<14} {:>6}  (skipped: terminates by contract)",
                r.name, "-"
            );
            continue;
        }
        let count = |o: Outcome| r.histogram.get(&o).copied().unwrap_or(0);
        let types =
            r.params.iter().map(|p| p.chosen_name.as_str()).collect::<Vec<_>>().join(", ");
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}  [{}]{}",
            r.name,
            r.tests,
            count(Outcome::Crash),
            count(Outcome::Abort),
            count(Outcome::Hang),
            r.residual_failures,
            types,
            if r.fully_robust { "" } else { "  (!residual)" }
        );
    }
    out
}

/// Serialises the campaign as a self-describing XML document (the format
/// sent to the central server in §2.3).
pub fn to_xml(result: &CampaignResult) -> String {
    let mut w = XmlWriter::new();
    w.open(
        "campaign",
        &[
            ("library", result.library.as_str()),
            ("tests", &result.total_tests().to_string()),
            ("failures", &result.total_failures().to_string()),
        ],
    );
    for r in &result.reports {
        w.open(
            "function",
            &[
                ("name", r.name.as_str()),
                ("tests", &r.tests.to_string()),
                ("fully-robust", if r.fully_robust { "true" } else { "false" }),
                ("skipped", if r.skipped { "true" } else { "false" }),
            ],
        );
        for (o, n) in &r.histogram {
            w.leaf("outcome", &[("kind", o.tag()), ("count", &n.to_string())]);
        }
        for (i, p) in r.params.iter().enumerate() {
            w.open(
                "param",
                &[("index", &(i + 1).to_string()), ("robust-type", p.chosen_name.as_str())],
            );
            for (rung, failures) in &p.tried {
                w.leaf(
                    "rung",
                    &[("type", rung.as_str()), ("failures", &failures.to_string())],
                );
            }
            w.close();
        }
        w.close();
    }
    w.close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{run_campaign, targets_from_simlibc, CampaignConfig};
    use simlibc::setup::init_process;

    fn small_result() -> CampaignResult {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "abs", "exit"].contains(&t.name.as_str()))
            .collect();
        let config = CampaignConfig { pair_values: 4, fuel: 200_000, ..Default::default() };
        run_campaign("libsimc.so.1", &targets, init_process, &config)
    }

    #[test]
    fn table_mentions_functions_and_types() {
        let table = render_table(&small_result());
        assert!(table.contains("strlen"), "{table}");
        assert!(table.contains("cstr"), "{table}");
        assert!(table.contains("skipped"), "{table}");
        assert!(table.contains("injected calls"), "{table}");
    }

    #[test]
    fn xml_is_well_formed_enough() {
        let xml = to_xml(&small_result());
        assert!(xml.starts_with("<?xml"));
        assert_eq!(xml.matches("<campaign").count(), 1);
        assert_eq!(xml.matches("</campaign>").count(), 1);
        assert_eq!(xml.matches("<function").count(), xml.matches("</function>").count());
        assert!(xml.contains("robust-type"));
    }
}
