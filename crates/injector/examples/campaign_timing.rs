fn main() {
    let targets = injector::targets_from_simlibc();
    let config = injector::CampaignConfig::default();
    let start = std::time::Instant::now();
    let result = injector::run_campaign(
        "libsimc.so.1",
        &targets,
        simlibc::setup::init_process,
        &config,
    );
    let dt = start.elapsed();
    println!("{}", injector::render_table(&result));
    println!(
        "elapsed: {:?}  tests: {}  rate: {:.0}/s",
        dt,
        result.total_tests(),
        result.total_tests() as f64 / dt.as_secs_f64()
    );
}
