//! Times the full simlibc campaign and reports throughput.
//!
//! Modes:
//! * (no args) — human-readable table plus elapsed/rate;
//! * `--xml`   — only the derived robust-API XML on stdout (the CI
//!   determinism gate runs this twice and diffs the output);
//! * `--json`  — machine-readable benchmark record (the committed
//!   `BENCH_campaign.json` baseline is a snapshot of this).

fn main() {
    let mode = std::env::args().nth(1);
    let targets = injector::targets_from_simlibc();
    let config = injector::CampaignConfig::default();
    let start = std::time::Instant::now();
    let result = injector::run_campaign(
        "libsimc.so.1",
        &targets,
        simlibc::setup::init_process,
        &config,
    );
    let dt = start.elapsed();
    match mode.as_deref() {
        Some("--xml") => {
            println!("{}", result.api.to_xml());
        }
        Some("--json") => {
            println!(
                "{{\n  \"library\": \"{}\",\n  \"functions\": {},\n  \"tests\": {},\n  \"failures\": {},\n  \"retries\": {},\n  \"complete\": {},\n  \"elapsed_ms\": {},\n  \"rate_per_s\": {:.0}\n}}",
                result.library,
                result.reports.len(),
                result.total_tests(),
                result.total_failures(),
                result.total_retries(),
                result.complete,
                dt.as_millis(),
                result.total_tests() as f64 / dt.as_secs_f64()
            );
        }
        _ => {
            println!("{}", injector::render_table(&result));
            println!(
                "elapsed: {:?}  tests: {}  retries: {}  rate: {:.0}/s",
                dt,
                result.total_tests(),
                result.total_retries(),
                result.total_tests() as f64 / dt.as_secs_f64()
            );
        }
    }
}
