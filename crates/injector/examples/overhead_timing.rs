//! Per-call wrapper overhead: the paper's Figure 5 analogue.
//!
//! Times `strlen("hello")` three ways inside the simulated process —
//! raw (direct host-fn call), through the robustness wrapper's compiled
//! fast path, and through a tracing wrapper that must run the dynamic
//! hook pipeline — plus the memory-oracle micro-operations underneath
//! them, and reports the per-call cost the wrapper adds.
//!
//! Modes:
//! * (no args)        — human-readable report;
//! * `--json-wrapper` — machine-readable record (`BENCH_wrapper.json`
//!   baseline is a snapshot of this);
//! * `--json-mem`     — memory-oracle micro-bench record
//!   (`BENCH_mem.json` baseline is a snapshot of this);
//! * `--json-oblivious` — failure-oblivious healing-wrapper record
//!   (`BENCH_oblivious.json` baseline is a snapshot of this): the
//!   accept path (valid call through the audited dynamic pipeline) and
//!   the absorb path (every call a manufactured read + journal entry).

use std::hint::black_box;
use std::time::Instant;

use cdecl::{parse_prototype, TypedefTable};
use simproc::{Access, CVal, Proc, VirtAddr};
use typelattice::{RobustApi, RobustFunction, SafePred};
use wrappergen::{build_wrapper, Policy, PolicyEngine, WrapperConfig, WrapperKind};

const WRAPPER_ITERS: u32 = 200_000;
const MEM_ITERS: u32 = 1_000_000;

/// A process with the libc image plus a short C string to scan.
fn proc_with_hello() -> (Proc, VirtAddr) {
    let mut p = simlibc::testutil::libc_proc();
    let s = p.alloc_data_zeroed(16);
    assert!(p.mem.poke_bytes(s, b"hello\0"));
    (p, s)
}

/// Nanoseconds per call of `f`, amortised over [`WRAPPER_ITERS`] calls.
fn ns_per_call(
    p: &mut Proc,
    args: &[CVal],
    mut f: impl FnMut(&mut Proc, &[CVal]) -> CVal,
) -> f64 {
    // Warm-up: touch the MRU cache, branch predictors and any lazy init.
    for _ in 0..1000 {
        black_box(f(p, args));
    }
    let start = Instant::now();
    for _ in 0..WRAPPER_ITERS {
        black_box(f(p, black_box(args)));
    }
    start.elapsed().as_nanos() as f64 / f64::from(WRAPPER_ITERS)
}

struct WrapperReport {
    raw_ns: f64,
    fast_ns: f64,
    dynamic_ns: f64,
    plan_active: bool,
}

/// One suite entry: the same three-way timing for one libc shape.
struct SuiteEntry {
    function: &'static str,
    raw_ns: f64,
    fast_ns: f64,
    dynamic_ns: f64,
}

impl SuiteEntry {
    fn overhead_pct(&self) -> f64 {
        (self.fast_ns / self.raw_ns - 1.0) * 100.0
    }
}

/// The benched robust API: three check-kernel shapes — `strlen` (single
/// `CStr`, memo-hittable: the string is never written, so the address-
/// space epoch holds still), `memcpy` (relational extent checks, honest
/// memo misses: every call writes memory and moves the epoch) and `free`
/// (`HeapChunkOrNull`, benched on the `NULL` short-circuit).
fn bench_api() -> RobustApi {
    let t = TypedefTable::with_builtins();
    RobustApi {
        library: "libsimc.so.1".into(),
        functions: vec![
            RobustFunction::new(
                parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
                vec![SafePred::CStr],
                true,
            ),
            RobustFunction::new(
                parse_prototype("void *memcpy(void *dest, const void *src, size_t n);", &t)
                    .unwrap(),
                vec![
                    SafePred::WritableAtLeastArg { size: 2, elem: 1 },
                    SafePred::ReadableAtLeastArg { size: 2, elem: 1 },
                    SafePred::SizeBelow(1 << 20),
                ],
                true,
            ),
            RobustFunction::new(
                parse_prototype("void free(void *ptr);", &t).unwrap(),
                vec![SafePred::HeapChunkOrNull],
                true,
            ),
        ],
    }
}

/// A raw (unwrapped) reference implementation for one suite case.
type RawCall = fn(&mut Proc, &[CVal]) -> CVal;

fn bench_wrapper() -> (WrapperReport, Vec<SuiteEntry>) {
    let api = bench_api();
    let robust = build_wrapper(WrapperKind::Robustness, &api, &WrapperConfig::default());
    let tracing = build_wrapper(WrapperKind::Tracing, &api, &WrapperConfig::default());

    let (mut p, s) = proc_with_hello();
    let dst = p.alloc_data_zeroed(64);
    let mut suite = Vec::new();
    let cases: [(&'static str, Vec<CVal>, RawCall); 3] = [
        ("strlen", vec![CVal::Ptr(s)], |p, a| simlibc::string::strlen(p, a).unwrap()),
        ("memcpy", vec![CVal::Ptr(dst), CVal::Ptr(s), CVal::Int(6)], |p, a| {
            simlibc::mem::memcpy(p, a).unwrap()
        }),
        ("free", vec![CVal::NULL], |p, a| {
            simlibc::heap::free(p, a[0].as_ptr()).unwrap();
            CVal::Void
        }),
    ];
    for (name, args, raw) in cases {
        let fast = robust.get(name).unwrap();
        let dynamic = tracing.get(name).unwrap();
        assert!(fast.has_plan(), "robustness {name} must compile to a plan");
        assert!(!dynamic.has_plan(), "tracing {name} must stay dynamic");
        suite.push(SuiteEntry {
            function: name,
            raw_ns: ns_per_call(&mut p, &args, raw),
            fast_ns: ns_per_call(&mut p, &args, |p, a| fast.call(p, a).unwrap()),
            dynamic_ns: ns_per_call(&mut p, &args, |p, a| dynamic.call(p, a).unwrap()),
        });
    }
    // The tracing wrapper accumulates one log entry per call; drop them.
    tracing.log.lock().clear();
    let strlen = &suite[0];
    let report = WrapperReport {
        raw_ns: strlen.raw_ns,
        fast_ns: strlen.fast_ns,
        dynamic_ns: strlen.dynamic_ns,
        plan_active: true,
    };
    (report, suite)
}

/// Per-call cost of the compiled telemetry epilogue: the same robustness
/// `strlen`, with latency histograms and a flight recorder configured.
/// The plan must survive — this is the configuration that used to force
/// every call through `call_dynamic`.
fn bench_telemetry_fast() -> f64 {
    let api = bench_api();
    let config = WrapperConfig {
        latency_histograms: true,
        flight_recorder: Some(64),
        ..WrapperConfig::default()
    };
    let lib = build_wrapper(WrapperKind::Robustness, &api, &config);
    let f = lib.get("strlen").unwrap();
    assert!(f.has_plan(), "telemetry must not force the dynamic pipeline");
    let (mut p, s) = proc_with_hello();
    ns_per_call(&mut p, &[CVal::Ptr(s)], |p, a| f.call(p, a).unwrap())
}

struct ObliviousReport {
    accept_ns: f64,
    absorb_ns: f64,
}

/// The availability mode's per-call price: a healing wrapper whose
/// uniform policy is `Oblivious` carries the audit ledger, so every
/// call runs the dynamic pipeline. `accept` is the common case (valid
/// arguments, checks pass); `absorb` is the worst case (every call a
/// violation: manufactured read + ledger + journal entry).
fn bench_oblivious() -> ObliviousReport {
    let t = TypedefTable::with_builtins();
    let api = RobustApi {
        library: "libsimc.so.1".into(),
        functions: vec![RobustFunction::new(
            parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
            vec![SafePred::CStr],
            true,
        )],
    };
    let config = WrapperConfig {
        policy: Some(PolicyEngine::new(Policy::Oblivious)),
        ..WrapperConfig::default()
    };
    let lib = build_wrapper(WrapperKind::Healing, &api, &config);
    let f = lib.get("strlen").unwrap();
    assert!(!f.has_plan(), "the audited oblivious pipeline must stay dynamic");

    let (mut p, s) = proc_with_hello();
    let accept_ns = ns_per_call(&mut p, &[CVal::Ptr(s)], |p, a| f.call(p, a).unwrap());
    let absorb_ns = ns_per_call(&mut p, &[CVal::NULL], |p, a| f.call(p, a).unwrap());
    // The absorb path journals every call; drop the events, like the
    // tracing log above.
    lib.journal.clear();
    ObliviousReport { accept_ns, absorb_ns }
}

struct MemReport {
    seq_read_u8_ns: f64,
    rand_read_u8_ns: f64,
    extent_ns: f64,
    cstr_scan_ns: f64,
}

fn bench_mem() -> MemReport {
    let (mut p, s) = proc_with_hello();

    // Sequential byte reads inside one region: the MRU-cache hit path
    // every per-byte simlibc loop takes.
    let base = p.alloc_data_zeroed(4096);
    let mut byte = [0u8; 1];
    let start = Instant::now();
    for i in 0..MEM_ITERS {
        black_box(p.mem.peek_into(base.add(u64::from(i) % 4096), &mut byte));
    }
    let seq_read_u8_ns = start.elapsed().as_nanos() as f64 / f64::from(MEM_ITERS);

    // Alternating reads across distant segments: defeats the MRU cache,
    // so every lookup pays the binary search.
    let far = simproc::layout::STACK_TOP.sub(64);
    let start = Instant::now();
    for i in 0..MEM_ITERS {
        let a = if i % 2 == 0 { base } else { far };
        black_box(p.mem.peek_into(a, &mut byte));
    }
    let rand_read_u8_ns = start.elapsed().as_nanos() as f64 / f64::from(MEM_ITERS);

    // The extent-oracle query security wrappers issue per checked call.
    let start = Instant::now();
    for _ in 0..MEM_ITERS {
        black_box(p.mem.accessible_extent(black_box(base), Access::Write));
    }
    let extent_ns = start.elapsed().as_nanos() as f64 / f64::from(MEM_ITERS);

    // The zero-copy C-string scan under `SafePred::CStr`.
    let start = Instant::now();
    for _ in 0..MEM_ITERS {
        black_box(p.mem.peek_slice(black_box(s)));
    }
    let cstr_scan_ns = start.elapsed().as_nanos() as f64 / f64::from(MEM_ITERS);

    MemReport { seq_read_u8_ns, rand_read_u8_ns, extent_ns, cstr_scan_ns }
}

fn main() {
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        Some("--json-wrapper") => {
            let (w, suite) = bench_wrapper();
            let telemetry_ns = bench_telemetry_fast();
            // The legacy strlen keys stay first and unrenamed (the CI
            // gate greps the first match); the suite rides behind them.
            println!(
                "{{\n  \"function\": \"strlen\",\n  \"iters\": {},\n  \"raw_ns_per_call\": {:.1},\n  \"fast_ns_per_call\": {:.1},\n  \"dynamic_ns_per_call\": {:.1},\n  \"fast_overhead_ns\": {:.1},\n  \"fast_overhead_pct\": {:.1},\n  \"dynamic_overhead_pct\": {:.1},\n  \"plan_active\": {},\n  \"telemetry_fast_ns_per_call\": {:.1},\n  \"suite\": [",
                WRAPPER_ITERS,
                w.raw_ns,
                w.fast_ns,
                w.dynamic_ns,
                w.fast_ns - w.raw_ns,
                (w.fast_ns / w.raw_ns - 1.0) * 100.0,
                (w.dynamic_ns / w.raw_ns - 1.0) * 100.0,
                w.plan_active,
                telemetry_ns
            );
            for (i, e) in suite.iter().enumerate() {
                let sep = if i + 1 < suite.len() { "," } else { "" };
                println!(
                    "    {{\"function\": \"{}\", \"raw_ns\": {:.1}, \"fast_ns\": {:.1}, \"dynamic_ns\": {:.1}, \"overhead_pct\": {:.1}}}{sep}",
                    e.function,
                    e.raw_ns,
                    e.fast_ns,
                    e.dynamic_ns,
                    e.overhead_pct()
                );
            }
            println!("  ]\n}}");
        }
        Some("--json-oblivious") => {
            let o = bench_oblivious();
            println!(
                "{{\n  \"function\": \"strlen\",\n  \"iters\": {},\n  \"accept_ns_per_call\": {:.1},\n  \"absorb_ns_per_call\": {:.1},\n  \"plan_active\": false\n}}",
                WRAPPER_ITERS, o.accept_ns, o.absorb_ns
            );
        }
        Some("--json-mem") => {
            let m = bench_mem();
            println!(
                "{{\n  \"iters\": {},\n  \"seq_read_u8_ns\": {:.1},\n  \"rand_read_u8_ns\": {:.1},\n  \"extent_ns\": {:.1},\n  \"cstr_scan_ns\": {:.1}\n}}",
                MEM_ITERS, m.seq_read_u8_ns, m.rand_read_u8_ns, m.extent_ns, m.cstr_scan_ns
            );
        }
        _ => {
            let (w, suite) = bench_wrapper();
            let m = bench_mem();
            println!("per-call wrapper overhead, strlen(\"hello\") x {WRAPPER_ITERS}:");
            println!("  raw host call      {:8.1} ns/call", w.raw_ns);
            println!(
                "  compiled fast path {:8.1} ns/call  (+{:.1} ns, {:+.1}%)",
                w.fast_ns,
                w.fast_ns - w.raw_ns,
                (w.fast_ns / w.raw_ns - 1.0) * 100.0
            );
            println!(
                "  dynamic pipeline   {:8.1} ns/call  (+{:.1} ns, {:+.1}%)",
                w.dynamic_ns,
                w.dynamic_ns - w.raw_ns,
                (w.dynamic_ns / w.raw_ns - 1.0) * 100.0
            );
            let telemetry_ns = bench_telemetry_fast();
            println!(
                "  fast + telemetry   {:8.1} ns/call  (+{:.1} ns vs fast)",
                telemetry_ns,
                telemetry_ns - w.fast_ns
            );
            println!("check-kernel suite (raw / fast / dynamic, ns per call):");
            for e in &suite {
                println!(
                    "  {:8} {:8.1} {:8.1} {:8.1}  (fast {:+.1}%)",
                    e.function,
                    e.raw_ns,
                    e.fast_ns,
                    e.dynamic_ns,
                    e.overhead_pct()
                );
            }
            let o = bench_oblivious();
            println!(
                "  oblivious accept   {:8.1} ns/call  (+{:.1} ns, {:+.1}%)",
                o.accept_ns,
                o.accept_ns - w.raw_ns,
                (o.accept_ns / w.raw_ns - 1.0) * 100.0
            );
            println!("  oblivious absorb   {:8.1} ns/call", o.absorb_ns);
            println!("memory oracle micro-ops x {MEM_ITERS}:");
            println!("  sequential peek (MRU hit)    {:8.1} ns/op", m.seq_read_u8_ns);
            println!("  alternating peek (bin search){:8.1} ns/op", m.rand_read_u8_ns);
            println!("  accessible_extent            {:8.1} ns/op", m.extent_ns);
            println!("  peek_slice C-string scan     {:8.1} ns/op", m.cstr_scan_ns);
        }
    }
}
