fn main() {
    let targets = injector::targets_from_simlibc();
    let config = injector::CampaignConfig::default();
    let t0 = std::time::Instant::now();
    let serial = injector::run_campaign(
        "libsimc.so.1",
        &targets,
        simlibc::setup::init_process,
        &config,
    );
    let t_serial = t0.elapsed();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let t0 = std::time::Instant::now();
    let parallel = injector::run_campaign_parallel(
        "libsimc.so.1",
        &targets,
        simlibc::setup::init_process,
        &config,
        threads,
    );
    let t_par = t0.elapsed();
    assert_eq!(serial.total_tests(), parallel.total_tests());
    assert_eq!(serial.total_failures(), parallel.total_failures());
    println!(
        "serial: {t_serial:?}  parallel({threads}): {t_par:?}  speedup: {:.2}x",
        t_serial.as_secs_f64() / t_par.as_secs_f64()
    );
    println!();
    println!(
        "{}",
        profiler::render_worker_report("libsimc.so.1", &parallel.worker_metrics)
    );
}
