//! Property tests for the checkpoint journal: a campaign killed after an
//! arbitrary number of executed cases and resumed from its journal must
//! converge on exactly the uninterrupted result, and fingerprint changes
//! must invalidate precisely the function they belong to.

use injector::{
    run_campaign, run_campaign_checkpointed, targets_from_simlibc, to_xml, CampaignConfig,
    CheckpointJournal, TargetFn,
};
use proptest::prelude::*;
use simlibc::setup::init_process;

fn slice(names: &[&str]) -> Vec<TargetFn> {
    targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect()
}

fn quick_config() -> CampaignConfig {
    CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Kill the campaign after an arbitrary number of executed cases
    /// (the budget), resume from the serialised journal, repeat until it
    /// completes: the result must be indistinguishable from a run that
    /// was never interrupted.
    #[test]
    fn kill_at_arbitrary_case_then_resume_is_lossless(budget in 5u64..80) {
        let targets = slice(&["strlen", "isalpha"]);
        let full = run_campaign("l", &targets, init_process, &quick_config());
        prop_assert!(full.complete);

        let limited =
            CampaignConfig { case_budget: Some(budget), ..quick_config() };
        let mut journal = CheckpointJournal::new();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            prop_assert!(rounds < 1000, "must converge");
            let r = run_campaign_checkpointed(
                "l",
                &targets,
                init_process,
                &limited,
                &journal,
            );
            if r.complete {
                prop_assert_eq!(r.api.to_xml(), full.api.to_xml());
                prop_assert_eq!(to_xml(&r), to_xml(&full));
                break;
            }
            // The kill: only the durable text survives to the next run.
            journal = CheckpointJournal::from_text(&journal.to_text())
                .expect("journal text roundtrip");
        }
    }
}

/// Changing one function's prototype changes its fingerprint and
/// invalidates exactly that function's cached cases — the other
/// functions replay entirely from the journal.
#[test]
fn changed_prototype_invalidates_only_that_function() {
    let mut targets = slice(&["strlen", "isalpha"]);
    let config = quick_config();
    let journal = CheckpointJournal::new();
    let first = run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
    assert_eq!(first.checkpoint_hits(), 0);

    // A "new release" ships strlen with a changed prototype.
    let table = cdecl::TypedefTable::with_builtins();
    let idx = targets.iter().position(|t| t.name == "strlen").unwrap();
    targets[idx].proto = cdecl::parse_prototype("size_t strlen(char *s);", &table).unwrap();

    let second = run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
    for report in &second.reports {
        if report.name == "strlen" {
            assert_eq!(
                report.checkpoint_hits, 0,
                "changed prototype must invalidate the cache"
            );
            assert!(report.tests > 0);
        } else {
            assert_eq!(
                report.tests - report.checkpoint_hits,
                0,
                "{}: untouched functions replay from the journal",
                report.name
            );
        }
    }
}

/// A different campaign seed is a different fingerprint: nothing cached
/// under the old seed is reused.
#[test]
fn changed_seed_misses_the_cache() {
    let targets = slice(&["isalpha"]);
    let journal = CheckpointJournal::new();
    let config = quick_config();
    run_campaign_checkpointed("l", &targets, init_process, &config, &journal);
    let reseeded = CampaignConfig { seed: 7, ..quick_config() };
    let second =
        run_campaign_checkpointed("l", &targets, init_process, &reseeded, &journal);
    assert_eq!(second.checkpoint_hits(), 0);
}
