//! # healers-bench — shared fixtures for the benchmark harness
//!
//! The paper makes quantitative claims in prose rather than tables; each
//! Criterion bench target regenerates one of them (see `EXPERIMENTS.md`,
//! experiments C2–C5):
//!
//! * `interception` — per-call cost: direct vs loader-dispatched vs each
//!   wrapper type ("low overhead during normal operations; an application
//!   should only pay the overhead for the protection it actually needs");
//! * `microgen` — per-micro-generator overhead increments, composed one
//!   at a time (the §2.3 flexibility claim);
//! * `security` — allocator and `strcpy` cost with vs without canaries;
//! * `injection` — fault-injection campaign throughput (the §2.2
//!   cost-effectiveness claim);
//! * `profiling` — a whole application run bare vs under the profiling
//!   wrapper.

use healers_core::process_factory;
use injector::{run_campaign, targets_from_simlibc, CampaignConfig, CampaignResult};
use simproc::{CVal, Proc, VirtAddr};

/// A campaign sized for building wrappers in benches (full ladders, small
/// pairwise phase).
pub fn bench_campaign(funcs: &[&str]) -> CampaignResult {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| funcs.is_empty() || funcs.contains(&t.name.as_str()))
        .collect();
    run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 200_000, ..CampaignConfig::default() },
    )
}

/// A process with a valid string and destination buffer materialised,
/// for call benchmarks.
pub fn call_fixture() -> (Proc, VirtAddr, VirtAddr) {
    let mut p = process_factory();
    let src = p.alloc_cstr("a moderately sized benchmark string");
    let dst = simlibc::heap::malloc(&mut p, 256).expect("fixture malloc");
    (p, dst, src)
}

/// Standard argument vector for `strcpy(dst, src)`.
pub fn strcpy_args(dst: VirtAddr, src: VirtAddr) -> [CVal; 2] {
    [CVal::Ptr(dst), CVal::Ptr(src)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let (mut p, dst, src) = call_fixture();
        let f = simlibc::find_symbol("strcpy").unwrap();
        let r = (f.imp)(&mut p, &strcpy_args(dst, src)).unwrap();
        assert_eq!(r.as_ptr(), dst);
    }

    #[test]
    fn bench_campaign_filters() {
        let c = bench_campaign(&["abs"]);
        assert_eq!(c.reports.len(), 1);
    }
}
