//! Experiment C2 (paper §1 "low overhead" + Figure 1): per-call cost of
//! interception, by protection level. The paper's claim is twofold:
//! wrapper overhead is small, and "an application should only pay the
//! overhead for the protection it actually needs" — so the chain
//! direct < dispatched < robustness/security < profiling must hold, with
//! unwrapped symbols costing nothing extra.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use healers_bench::{bench_campaign, call_fixture, strcpy_args};
use healers_core::as_preload_library;
use simproc::CVal;
use wrappergen::{build_wrapper, WrapperConfig, WrapperKind};

fn interception(c: &mut Criterion) {
    let campaign = bench_campaign(&["strcpy", "strlen", "malloc", "free", "exit"]);
    let robust =
        build_wrapper(WrapperKind::Robustness, &campaign.api, &WrapperConfig::default());
    let secure =
        build_wrapper(WrapperKind::Security, &campaign.api, &WrapperConfig::default());
    let profile =
        build_wrapper(WrapperKind::Profiling, &campaign.api, &WrapperConfig::default());
    let strcpy_raw = simlibc::find_symbol("strcpy").unwrap().imp;
    // Dispatch cost in isolation: the loader binding around the RAW
    // symbol (no wrapper hooks).
    let plain = interpose::SharedLibrary::simlibc();
    let binding = plain.symbol("strcpy").unwrap().binding.clone();
    // And the full preload path through the robustness wrapper.
    let preload = as_preload_library(&robust);
    let robust_binding = preload.symbol("strcpy").unwrap().binding.clone();

    let mut group = c.benchmark_group("strcpy_per_call");
    group.bench_function("direct", |b| {
        let (mut p, dst, src) = call_fixture();
        b.iter(|| black_box(strcpy_raw(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("loader_dispatch", |b| {
        let (mut p, dst, src) = call_fixture();
        b.iter(|| black_box(binding.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("robustness_wrapper", |b| {
        let (mut p, dst, src) = call_fixture();
        let w = robust.get("strcpy").unwrap();
        b.iter(|| black_box(w.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("robustness_via_preload", |b| {
        let (mut p, dst, src) = call_fixture();
        b.iter(|| black_box(robust_binding.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("security_wrapper", |b| {
        let (mut p, dst, src) = call_fixture();
        let w = secure.get("strcpy").unwrap();
        b.iter(|| black_box(w.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("profiling_wrapper", |b| {
        let (mut p, dst, src) = call_fixture();
        let w = profile.get("strcpy").unwrap();
        b.iter(|| black_box(w.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.finish();

    // Pay-for-what-you-need: a function without checks is not even
    // interposed by the robustness wrapper.
    let mut group = c.benchmark_group("abs_per_call");
    let abs_raw = simlibc::find_symbol("abs").unwrap().imp;
    group.bench_function("direct", |b| {
        let mut p = healers_core::process_factory();
        b.iter(|| black_box(abs_raw(&mut p, &[CVal::Int(-5)]).unwrap()))
    });
    assert!(robust.get("abs").is_none(), "abs needs no protection");
    group.bench_function("profiling_wrapper", |b| {
        let campaign = bench_campaign(&["abs"]);
        let profile =
            build_wrapper(WrapperKind::Profiling, &campaign.api, &WrapperConfig::default());
        let w = profile.get("abs").unwrap().clone();
        let mut p = healers_core::process_factory();
        b.iter(|| black_box(w.call(&mut p, &[CVal::Int(-5)]).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(40);
    targets = interception
}
criterion_main!(benches);
