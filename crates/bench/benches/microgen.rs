//! Experiment C2b (paper §2.3): the cost of each micro-generator,
//! measured by composing the profiling wrapper's hook pipeline one
//! micro-generator at a time — the runtime counterpart of Figure 3's
//! prefix/postfix fragments. Also benchmarks wrapper *generation* itself
//! ("can adapt quickly to new software releases").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use healers_bench::{bench_campaign, call_fixture, strcpy_args};
use profiler::Stats;
use wrappergen::hooks::{
    CallCounterHook, CollectErrorsHook, ExectimeHook, FuncErrorsHook, LogCallHook,
};
use wrappergen::{build_wrapper, Hook, WrappedFn, WrapperConfig, WrapperKind};

fn hook_stack(upto: usize, stats: &Arc<Stats>) -> Vec<Arc<dyn Hook>> {
    let all: Vec<Arc<dyn Hook>> = vec![
        Arc::new(ExectimeHook::new(Arc::clone(stats))),
        Arc::new(CollectErrorsHook::new(Arc::clone(stats))),
        Arc::new(FuncErrorsHook::new(Arc::clone(stats))),
        Arc::new(CallCounterHook::new(Arc::clone(stats))),
    ];
    all.into_iter().take(upto).collect()
}

fn microgen(c: &mut Criterion) {
    let proto = simlibc::prototypes().into_iter().find(|p| p.name == "strcpy").unwrap();
    let imp = simlibc::find_symbol("strcpy").unwrap().imp;
    let stats = Arc::new(Stats::new());

    let mut group = c.benchmark_group("microgen_increments");
    let names =
        ["0_none", "1_exectime", "2_collect_errors", "3_func_errors", "4_call_counter"];
    for (n, label) in names.iter().enumerate() {
        let wrapped = WrappedFn::new(proto.clone(), imp, hook_stack(n, &stats));
        group.bench_function(*label, |b| {
            let (mut p, dst, src) = call_fixture();
            b.iter(|| black_box(wrapped.call(&mut p, &strcpy_args(dst, src)).unwrap()))
        });
    }
    // The log-call micro-generator formats arguments: the expensive one.
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let logged = WrappedFn::new(
        proto.clone(),
        imp,
        vec![Arc::new(LogCallHook::new(Arc::clone(&log)))],
    );
    group.bench_function("log_call_only", |b| {
        let (mut p, dst, src) = call_fixture();
        b.iter(|| {
            log.lock().clear();
            black_box(logged.call(&mut p, &strcpy_args(dst, src)).unwrap())
        })
    });
    group.finish();

    // Wrapper (re)generation cost — the adaptivity claim: regenerating
    // wrappers for a new library release is automatic and fast.
    let campaign = bench_campaign(&["strcpy", "strlen", "malloc", "free", "memcpy"]);
    let mut group = c.benchmark_group("wrapper_generation");
    for kind in [
        WrapperKind::Robustness,
        WrapperKind::Security,
        WrapperKind::Profiling,
        WrapperKind::Healing,
    ] {
        group.bench_function(kind.tag(), |b| {
            b.iter(|| {
                black_box(
                    build_wrapper(kind, &campaign.api, &WrapperConfig::default()).len(),
                )
            })
        });
    }
    group.finish();

    // Healing-path overhead: on valid arguments the policy engine only
    // runs the same predicate checks as `arg check`, so the happy path
    // must sit within noise of the robustness wrapper.
    let robust =
        build_wrapper(WrapperKind::Robustness, &campaign.api, &WrapperConfig::default());
    let healing =
        build_wrapper(WrapperKind::Healing, &campaign.api, &WrapperConfig::default());
    let mut group = c.benchmark_group("healing_path");
    group.bench_function("arg_check_happy", |b| {
        let (mut p, dst, src) = call_fixture();
        let w = robust.get("strcpy").unwrap().clone();
        b.iter(|| black_box(w.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    group.bench_function("heal_happy", |b| {
        let (mut p, dst, src) = call_fixture();
        let w = healing.get("strcpy").unwrap().clone();
        b.iter(|| black_box(w.call(&mut p, &strcpy_args(dst, src)).unwrap()))
    });
    // The repair path itself: strlen(NULL) is healed to strlen("") every
    // iteration (journal cleared to keep memory flat).
    group.bench_function("heal_repair_null_strlen", |b| {
        let mut p = healers_core::process_factory();
        let w = healing.get("strlen").unwrap().clone();
        b.iter(|| {
            healing.journal.clear();
            black_box(w.call(&mut p, &[simproc::CVal::NULL]).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(40);
    targets = microgen
}
criterion_main!(benches);
