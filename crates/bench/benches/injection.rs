//! Experiment C4 (paper §2.2): fault-injection throughput — the
//! cost-effectiveness claim ("the cost of a computer programmer is
//! usually much higher than the cost of a group of high-end PCs ... let
//! the computers do the work"). Measures single sandboxed injections and
//! whole per-function campaigns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use healers_core::process_factory;
use injector::{
    case_seed, run_campaign, run_case, targets_from_simlibc, CampaignConfig, CaseKey,
};
use simproc::{CVal, Proc};
use typelattice::plan;

fn injection(c: &mut Criterion) {
    // One sandboxed injection, end to end: fresh process image,
    // materialisation, call, classification.
    let mut group = c.benchmark_group("single_injection");
    for func in ["strlen", "strcpy", "qsort"] {
        let target = targets_from_simlibc().into_iter().find(|t| t.name == func).unwrap();
        let plans = plan(&target.proto);
        let key = CaseKey::Ladder { param: 0, rung_idx: 0, value_idx: 0 };
        let seed = case_seed(2003, func, &key);
        let imp = target.imp;
        group.bench_with_input(BenchmarkId::from_parameter(func), &(), |b, ()| {
            let mut call = move |p: &mut Proc, a: &[CVal]| imp(p, a);
            b.iter(|| {
                black_box(run_case(process_factory, &plans, &key, seed, 200_000, &mut call))
            })
        });
    }
    group.finish();

    // Whole-function campaigns: ladder search + pairwise validation.
    let mut group = c.benchmark_group("per_function_campaign");
    group.sample_size(10);
    for func in ["strlen", "strcpy", "memcpy", "isalpha"] {
        let targets: Vec<_> =
            targets_from_simlibc().into_iter().filter(|t| t.name == func).collect();
        let config =
            CampaignConfig { pair_values: 4, fuel: 200_000, ..CampaignConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(func), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    run_campaign("libsimc.so.1", &targets, process_factory, &config)
                        .total_tests(),
                )
            })
        });
    }
    group.finish();

    // Process-image creation — the sandbox cost floor.
    c.bench_function("process_factory", |b| {
        b.iter(|| black_box(process_factory().cycles()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(40);
    targets = injection
}
criterion_main!(benches);
