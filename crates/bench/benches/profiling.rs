//! Experiment C5 (paper §3.3): whole-application overhead of the
//! profiling wrapper — the Figure 5 workload run bare and wrapped. The
//! paper's claim: "its run time overhead is small for most applications".

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use healers_bench::bench_campaign;
use healers_core::Toolkit;
use interpose::{Executable, Session};
use simproc::{CVal, Fault};
use wrappergen::{build_wrapper, WrapperConfig, WrapperKind};

const TEXT: &str = "the quick brown fox jumps over the lazy dog \
the dog barks the fox runs the end of the benchmark corpus";

/// A tokenise-and-measure workload: string-heavy, like the Figure 5 app.
fn workload_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let buf = s.malloc(256)?;
    let text = s.literal(TEXT);
    s.call("strcpy", &[CVal::Ptr(buf), CVal::Ptr(text)])?;
    let delim = s.literal(" ");
    let mut tok = s.call("strtok", &[CVal::Ptr(buf), CVal::Ptr(delim)])?;
    let mut total = 0i64;
    while !tok.is_null() {
        total += s.call("strlen", &[tok])?.as_int();
        tok = s.call("strtok", &[CVal::NULL, CVal::Ptr(delim)])?;
    }
    Ok(total as i32)
}

fn workload() -> Executable {
    Executable::new(
        "bench-workload",
        &["libsimc.so.1"],
        &["malloc", "strcpy", "strtok", "strlen"],
        workload_entry,
    )
}

fn profiling(c: &mut Criterion) {
    let toolkit = Toolkit::new();
    let campaign = bench_campaign(&["malloc", "strcpy", "strtok", "strlen"]);
    let profile =
        build_wrapper(WrapperKind::Profiling, &campaign.api, &WrapperConfig::default());
    let robust =
        build_wrapper(WrapperKind::Robustness, &campaign.api, &WrapperConfig::default());

    let mut group = c.benchmark_group("whole_application");
    group.bench_function("bare", |b| {
        b.iter(|| black_box(toolkit.run(&workload()).unwrap().status.clone().unwrap()))
    });
    group.bench_function("profiling_wrapper", |b| {
        b.iter(|| {
            black_box(
                toolkit
                    .run_protected(&workload(), &[&profile])
                    .unwrap()
                    .status
                    .clone()
                    .unwrap(),
            )
        })
    });
    group.bench_function("robustness_wrapper", |b| {
        b.iter(|| {
            black_box(
                toolkit
                    .run_protected(&workload(), &[&robust])
                    .unwrap()
                    .status
                    .clone()
                    .unwrap(),
            )
        })
    });
    group.finish();

    // Report generation itself (the at-exit path).
    let snapshot = {
        let out = toolkit.run_protected(&workload(), &[&profile]).unwrap();
        assert!(out.status.is_ok());
        profile.stats.snapshot()
    };
    let mut group = c.benchmark_group("report_generation");
    group.bench_function("xml_document", |b| {
        b.iter(|| {
            black_box(profiler::to_xml("bench-workload", "profiling", &snapshot).len())
        })
    });
    group.bench_function("text_report", |b| {
        b.iter(|| black_box(profiler::render_report("bench-workload", &snapshot).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(40);
    targets = profiling
}
criterion_main!(benches);
