//! Experiment C3 (paper §3.4): the cost of heap-smashing protection —
//! allocator traffic and guarded writes, with and without the security
//! wrapper's canaries. The paper's claim is that the protection is cheap
//! enough for production root daemons.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use healers_bench::bench_campaign;
use healers_core::process_factory;
use simproc::CVal;
use wrappergen::{build_wrapper, WrapperConfig, WrapperKind};

fn security(c: &mut Criterion) {
    let campaign =
        bench_campaign(&["malloc", "free", "calloc", "realloc", "strcpy", "exit"]);
    let secure =
        build_wrapper(WrapperKind::Security, &campaign.api, &WrapperConfig::default());

    // malloc/free pairs, bare vs canary-protected.
    let mut group = c.benchmark_group("malloc_free_pair");
    group.bench_function("bare", |b| {
        let mut p = process_factory();
        b.iter(|| {
            let ptr = simlibc::heap::malloc(&mut p, 64).unwrap();
            simlibc::heap::free(&mut p, black_box(ptr)).unwrap();
        })
    });
    group.bench_function("canary_protected", |b| {
        let mut p = process_factory();
        let malloc = secure.get("malloc").unwrap().clone();
        let free = secure.get("free").unwrap().clone();
        b.iter(|| {
            let ptr = malloc.call(&mut p, &[CVal::Int(64)]).unwrap();
            free.call(&mut p, &[black_box(ptr)]).unwrap();
        })
    });
    group.finish();

    // Guarded string writes by destination size: the bounds check is
    // O(heap chunks) while the copy is O(n) — the crossover matters.
    let src_sizes = [8usize, 64, 512, 4096];
    let mut group = c.benchmark_group("strcpy_guarded");
    for n in src_sizes {
        let payload = "x".repeat(n);
        group.bench_function(format!("bare_{n}B"), |b| {
            let mut p = process_factory();
            let src = p.alloc_cstr(&payload);
            let dst = simlibc::heap::malloc(&mut p, n as u64 + 1).unwrap();
            let f = simlibc::find_symbol("strcpy").unwrap().imp;
            b.iter(|| black_box(f(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src)]).unwrap()))
        });
        group.bench_function(format!("guarded_{n}B"), |b| {
            let mut p = process_factory();
            let src = p.alloc_cstr(&payload);
            let malloc = secure.get("malloc").unwrap().clone();
            let dst = malloc.call(&mut p, &[CVal::Int(n as i64 + 1)]).unwrap();
            let w = secure.get("strcpy").unwrap().clone();
            b.iter(|| black_box(w.call(&mut p, &[dst, CVal::Ptr(src)]).unwrap()))
        });
    }
    group.finish();

    // Detection is not free only at allocation time: the violation path
    // itself (attack traffic) should also be cheap to reject.
    let mut group = c.benchmark_group("attack_rejection");
    group.bench_function("oversized_strcpy_denied", |b| {
        let mut p = process_factory();
        let attack = p.alloc_cstr(&"A".repeat(512));
        let malloc = secure.get("malloc").unwrap().clone();
        let dst = malloc.call(&mut p, &[CVal::Int(32)]).unwrap();
        let w = secure.get("strcpy").unwrap().clone();
        b.iter(|| {
            let err = w.call(&mut p, &[dst, CVal::Ptr(attack)]).unwrap_err();
            black_box(err)
        })
    });
    // The healing alternative on the same attack traffic: instead of
    // killing the process, the copy is truncated to the destination's
    // writable extent — how much does graceful degradation cost over a
    // hard deny?
    let healing =
        build_wrapper(WrapperKind::Healing, &campaign.api, &WrapperConfig::default());
    group.bench_function("oversized_strcpy_healed", |b| {
        let mut p = process_factory();
        let attack = p.alloc_cstr(&"A".repeat(512));
        let dst = CVal::Ptr(simlibc::heap::malloc(&mut p, 32).unwrap());
        let w = healing.get("strcpy").unwrap().clone();
        b.iter(|| {
            // The repair truncates the source in place; restore the
            // attack string so every iteration heals, not just the first.
            p.mem.poke_bytes(attack, &[b'A'; 512]);
            healing.journal.clear();
            black_box(w.call(&mut p, &[dst, CVal::Ptr(attack)]).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(40);
    targets = security
}
criterion_main!(benches);
