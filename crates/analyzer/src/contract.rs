//! Static contract inference (the analyzer's first pass).
//!
//! A fixpoint engine over [`cdecl::Prototype`] structure and man-page
//! prose that emits a *fact base* per function: which parameters must not
//! be NULL, which are C strings, which pointer/length pairs travel
//! together, where ownership transfers. Every fact carries a confidence
//! in `[0, 1]` and the list of evidence sources that produced it;
//! independent evidence combines by noisy-or, so no single weak heuristic
//! can clear the pre-seeding threshold on its own.

use std::collections::BTreeMap;
use std::fmt;

use cdecl::Prototype;
use typelattice::{classify_params, plan, ArgClass, LadderHints, SafePred};

/// Minimum confidence before a fact is allowed to pre-seed the
/// injector's ladder search or emit a contract-derived check. Calibrated
/// so that type structure (≤ 0.55) plus parameter-name heuristics
/// (≤ 0.7) stay below it even combined: only man-page phrases and
/// known-family knowledge can clear it.
pub const PRESEED_THRESHOLD: f64 = 0.9;

/// Confidence below which a [`Fact::NullOk`] is ignored when deciding
/// whether NULL tolerance blocks a ladder floor or contradicts a
/// [`Fact::NonNull`].
pub const NULL_OK_THRESHOLD: f64 = 0.5;

/// One inferable contract fact about a function. Parameter indices are
/// zero-based.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fact {
    /// Parameter must not be NULL.
    NonNull(usize),
    /// Parameter must point to a NUL-terminated C string.
    CStr(usize),
    /// Parameter is documented to tolerate NULL — blocks any ladder
    /// floor for it and contradicts a confident [`Fact::NonNull`].
    NullOk(usize),
    /// Parameter is a printf-style format string.
    FormatString(usize),
    /// Pointer parameter `buf` travels with length parameter `len`.
    BufLenPair {
        /// Index of the pointer parameter.
        buf: usize,
        /// Index of the length parameter.
        len: usize,
    },
    /// The function allocates memory it hands to the caller.
    Allocates,
    /// The function takes ownership of (frees) the pointed-to chunk.
    Frees(usize),
    /// The function signals failure by returning NULL.
    ReturnsNullOnFailure,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fact::NonNull(i) => write!(f, "arg {} non-null", i + 1),
            Fact::CStr(i) => write!(f, "arg {} cstr", i + 1),
            Fact::NullOk(i) => write!(f, "arg {} null-ok", i + 1),
            Fact::FormatString(i) => write!(f, "arg {} format-string", i + 1),
            Fact::BufLenPair { buf, len } => {
                write!(f, "arg {} buffer sized by arg {}", buf + 1, len + 1)
            }
            Fact::Allocates => write!(f, "allocates (ownership to caller)"),
            Fact::Frees(i) => write!(f, "frees arg {}", i + 1),
            Fact::ReturnsNullOnFailure => write!(f, "returns NULL on failure"),
        }
    }
}

/// A fact with its combined confidence and the evidence that produced it.
#[derive(Debug, Clone)]
pub struct InferredFact {
    /// The fact.
    pub fact: Fact,
    /// Noisy-or combination of all evidence sources, in `[0, 1)`.
    pub confidence: f64,
    /// Sorted evidence source tags (e.g. `man:null-terminated`).
    pub sources: Vec<String>,
}

/// The inferred contract of one function: a set of facts, each backed by
/// per-source evidence. Evidence is keyed by source tag and kept as the
/// maximum confidence that source ever contributed, which makes the
/// fixpoint iteration idempotent (re-deriving the same rule never
/// inflates confidence).
#[derive(Debug, Clone, Default)]
pub struct FunctionContract {
    /// Function name.
    pub func: String,
    evidence: BTreeMap<Fact, BTreeMap<String, f64>>,
}

impl FunctionContract {
    /// An empty contract for `func`.
    pub fn new(func: impl Into<String>) -> Self {
        FunctionContract { func: func.into(), evidence: BTreeMap::new() }
    }

    /// Records one piece of evidence. The same source tag contributes at
    /// most once per fact (its maximum), so repeated derivation is safe.
    pub fn add_evidence(&mut self, fact: Fact, confidence: f64, source: &str) {
        let per_source = self.evidence.entry(fact).or_default();
        let slot = per_source.entry(source.to_string()).or_insert(0.0);
        if confidence > *slot {
            *slot = confidence;
        }
    }

    /// The combined (noisy-or) confidence of a fact; `0.0` if unknown.
    pub fn confidence(&self, fact: &Fact) -> f64 {
        match self.evidence.get(fact) {
            None => 0.0,
            Some(sources) => 1.0 - sources.values().fold(1.0, |acc, c| acc * (1.0 - c)),
        }
    }

    /// All facts, sorted, with combined confidences and sorted sources.
    pub fn facts(&self) -> Vec<InferredFact> {
        self.evidence
            .iter()
            .map(|(fact, sources)| InferredFact {
                fact: fact.clone(),
                confidence: self.confidence(fact),
                sources: sources.keys().cloned().collect(),
            })
            .collect()
    }

    /// Zero-based parameter indices mentioned by any fact.
    pub fn mentioned_params(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .evidence
            .keys()
            .filter_map(|f| match f {
                Fact::NonNull(i)
                | Fact::CStr(i)
                | Fact::NullOk(i)
                | Fact::FormatString(i)
                | Fact::Frees(i) => Some(*i),
                Fact::BufLenPair { buf, .. } => Some(*buf),
                Fact::Allocates | Fact::ReturnsNullOnFailure => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The fact base for a whole library: one [`FunctionContract`] per
/// function, in name order.
#[derive(Debug, Clone, Default)]
pub struct ContractBase {
    /// Library soname the contracts describe.
    pub library: String,
    /// Contracts keyed by function name.
    pub functions: BTreeMap<String, FunctionContract>,
}

impl ContractBase {
    /// Looks up one function's contract.
    pub fn function(&self, name: &str) -> Option<&FunctionContract> {
        self.functions.get(name)
    }

    /// Renders the fact base deterministically: functions in name order,
    /// facts in [`Fact`] order, sources sorted. Two runs over the same
    /// inputs produce byte-identical text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Contract fact base for `{}` ({} functions):",
            self.library,
            self.functions.len()
        );
        for contract in self.functions.values() {
            let facts = contract.facts();
            if facts.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n{}", contract.func);
            for f in facts {
                let _ = writeln!(
                    out,
                    "  {:<32} {:.3}  [{}]",
                    f.fact.to_string(),
                    f.confidence,
                    f.sources.join(", ")
                );
            }
        }
        out
    }
}

/// Whether `word` occurs in `text` as a whole identifier (no `[A-Za-z0-9_]`
/// on either side).
fn mentions_word(text: &str, word: &str) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !text[..at].chars().next_back().is_some_and(ident);
        let after = at + word.len();
        let after_ok =
            after >= text.len() || !text[after..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len().max(1);
    }
    false
}

/// A man-page phrase rule: phrase, fact constructor, confidence, source.
type ManPhrase = (&'static str, fn(usize) -> Fact, f64, &'static str);

/// Man-page prose phrases and the facts they assert about the parameters
/// a sentence mentions.
const MAN_PHRASES: &[ManPhrase] = &[
    ("must not be NULL", Fact::NonNull as fn(usize) -> Fact, 0.92, "man:must-not-be-NULL"),
    ("null-terminated", Fact::CStr, 0.90, "man:null-terminated"),
    ("may be NULL", Fact::NullOk, 0.92, "man:may-be-NULL"),
    ("format string", Fact::FormatString, 0.92, "man:format-string"),
];

/// Evidence from type structure: weak on its own (≤ 0.55).
fn type_evidence(contract: &mut FunctionContract, classes: &[ArgClass]) {
    for (i, class) in classes.iter().enumerate() {
        match class {
            ArgClass::CStrIn => {
                contract.add_evidence(Fact::CStr(i), 0.50, "type:const-char-ptr");
                contract.add_evidence(Fact::NonNull(i), 0.30, "type:pointer");
            }
            ArgClass::CStrOut
            | ArgClass::PtrIn(_)
            | ArgClass::PtrOut(_)
            | ArgClass::CStrPtrPtr
            | ArgClass::FilePtr
            | ArgClass::FuncPtr => {
                contract.add_evidence(Fact::NonNull(i), 0.30, "type:pointer");
            }
            ArgClass::Int(_) | ArgClass::Size | ArgClass::Float => {}
        }
    }
}

/// Evidence from parameter names: the `buf`/`len`/`fmt` conventions libc
/// man pages follow. Capped at 0.7 so names alone never pre-seed.
fn name_evidence(contract: &mut FunctionContract, proto: &Prototype, classes: &[ArgClass]) {
    let name_of = |i: usize| proto.params[i].name.as_deref().unwrap_or("");
    for i in 0..proto.params.len() {
        let name = name_of(i);
        let class = classes[i];
        let is_cstr_in = class == ArgClass::CStrIn;
        if is_cstr_in && matches!(name, "fmt" | "format") {
            contract.add_evidence(Fact::FormatString(i), 0.70, "name:fmt");
        }
        if is_cstr_in && matches!(name, "s" | "str" | "src" | "string" | "nptr" | "path") {
            contract.add_evidence(Fact::CStr(i), 0.60, "name:string-like");
        }
        let is_buf_ptr = matches!(
            class,
            ArgClass::CStrIn | ArgClass::CStrOut | ArgClass::PtrIn(_) | ArgClass::PtrOut(_)
        );
        if is_buf_ptr
            && matches!(name, "buf" | "buffer" | "dest" | "dst" | "src" | "ptr" | "s")
        {
            for (j, jc) in classes.iter().enumerate() {
                if j > i
                    && *jc == ArgClass::Size
                    && matches!(name_of(j), "len" | "n" | "size" | "count" | "nbytes")
                {
                    contract.add_evidence(
                        Fact::BufLenPair { buf: i, len: j },
                        0.65,
                        "name:buf-len",
                    );
                    break;
                }
            }
        }
    }
}

/// Evidence mined from man-page DESCRIPTION prose. A phrase applies to
/// every parameter the containing sentence mentions by name.
fn man_evidence(contract: &mut FunctionContract, proto: &Prototype, description: &str) {
    for sentence in description.split('.') {
        for (i, p) in proto.params.iter().enumerate() {
            let Some(pname) = p.name.as_deref() else { continue };
            if pname.is_empty() || !mentions_word(sentence, pname) {
                continue;
            }
            for (phrase, mk, conf, source) in MAN_PHRASES {
                if sentence.contains(phrase) {
                    contract.add_evidence(mk(i), *conf, source);
                }
            }
        }
    }
}

/// Evidence from the allocator family the toolkit knows cold (0.95).
fn family_evidence(contract: &mut FunctionContract, proto: &Prototype) {
    match proto.name.as_str() {
        "malloc" | "calloc" | "strdup" => {
            contract.add_evidence(Fact::Allocates, 0.95, "family:allocator");
            contract.add_evidence(Fact::ReturnsNullOnFailure, 0.95, "family:allocator");
        }
        "realloc" => {
            contract.add_evidence(Fact::Allocates, 0.95, "family:allocator");
            contract.add_evidence(Fact::Frees(0), 0.95, "family:allocator");
            contract.add_evidence(Fact::NullOk(0), 0.95, "family:allocator");
            contract.add_evidence(Fact::ReturnsNullOnFailure, 0.95, "family:allocator");
        }
        "free" => {
            contract.add_evidence(Fact::Frees(0), 0.95, "family:allocator");
            contract.add_evidence(Fact::NullOk(0), 0.95, "family:allocator");
        }
        _ => {}
    }
}

/// One fixpoint round of the implication rules. Returns whether any
/// confidence moved by more than `eps`.
fn propagate(contract: &mut FunctionContract, n_params: usize, eps: f64) -> bool {
    const DECAY: f64 = 0.97;
    let mut moved = false;
    let mut derive =
        |c: &mut FunctionContract, from: Fact, to: Fact, factor: f64, src: &str| {
            let conf = c.confidence(&from) * factor;
            if conf <= 0.0 {
                return;
            }
            let before = c.confidence(&to);
            c.add_evidence(to.clone(), conf, src);
            if (c.confidence(&to) - before).abs() > eps {
                moved = true;
            }
        };
    for i in 0..n_params {
        derive(
            contract,
            Fact::FormatString(i),
            Fact::CStr(i),
            DECAY,
            "infer:format-implies-cstr",
        );
        derive(
            contract,
            Fact::CStr(i),
            Fact::NonNull(i),
            DECAY,
            "infer:cstr-implies-nonnull",
        );
    }
    let pairs: Vec<(usize, usize)> = contract
        .evidence
        .keys()
        .filter_map(|f| match f {
            Fact::BufLenPair { buf, len } => Some((*buf, *len)),
            _ => None,
        })
        .collect();
    for (buf, len) in pairs {
        derive(
            contract,
            Fact::BufLenPair { buf, len },
            Fact::NonNull(buf),
            0.9,
            "infer:buflen-implies-nonnull",
        );
    }
    moved
}

/// Runs the full inference over a library's prototypes. `man_page` maps a
/// function name to its man-page text (DESCRIPTION prose is mined when
/// present); return `None` for functions without a page.
pub fn infer_contracts(
    library: &str,
    protos: &[Prototype],
    man_page: &dyn Fn(&str) -> Option<String>,
) -> ContractBase {
    let mut base = ContractBase { library: library.to_string(), ..Default::default() };
    for proto in protos {
        let classes = classify_params(proto);
        let mut contract = FunctionContract::new(&proto.name);
        type_evidence(&mut contract, &classes);
        name_evidence(&mut contract, proto, &classes);
        if let Some(text) = man_page(&proto.name) {
            if let Some(desc) = cdecl::description_section(&text) {
                man_evidence(&mut contract, proto, &desc);
            }
        }
        family_evidence(&mut contract, proto);
        // Implication rules to fixpoint; the per-source max in
        // `add_evidence` makes each round idempotent, so this converges
        // fast — the cap is a belt for the suspenders.
        for _ in 0..8 {
            if !propagate(&mut contract, proto.params.len(), 1e-9) {
                break;
            }
        }
        base.functions.insert(proto.name.clone(), contract);
    }
    base
}

/// Converts high-confidence facts into ladder floors for the injector:
/// the search may start at the rung a settled contract implies instead of
/// rung 0. A confident [`Fact::NullOk`] vetoes any floor for that
/// parameter — documented NULL tolerance must stay probeable.
pub fn ladder_hints(base: &ContractBase, protos: &[Prototype]) -> LadderHints {
    let mut hints = LadderHints::new();
    for proto in protos {
        let Some(contract) = base.function(&proto.name) else { continue };
        let plans = plan(proto);
        let mut floors = vec![0usize; plans.len()];
        for (i, p) in plans.iter().enumerate() {
            if contract.confidence(&Fact::NullOk(i)) >= NULL_OK_THRESHOLD {
                continue;
            }
            let rung = |name: &str| p.ladder.iter().position(|r| r.name == name);
            if contract.confidence(&Fact::CStr(i)) >= PRESEED_THRESHOLD {
                if let Some(r) = rung("cstr") {
                    floors[i] = r;
                    continue;
                }
            }
            if contract.confidence(&Fact::NonNull(i)) >= PRESEED_THRESHOLD {
                if let Some(r) = rung("nonnull") {
                    floors[i] = r;
                }
            }
        }
        if floors.iter().any(|f| *f > 0) {
            hints.set(proto.name.clone(), floors);
        }
    }
    hints
}

/// The per-parameter check predicates a contract supports at
/// [`PRESEED_THRESHOLD`] confidence — the payload of a contract-derived
/// wrapper hook. Parameters without a settled fact get
/// [`SafePred::Always`].
pub fn contract_preds(contract: &FunctionContract, proto: &Prototype) -> Vec<SafePred> {
    (0..proto.params.len())
        .map(|i| {
            if contract.confidence(&Fact::NullOk(i)) >= NULL_OK_THRESHOLD {
                return SafePred::Always;
            }
            if contract.confidence(&Fact::CStr(i)) >= PRESEED_THRESHOLD {
                return SafePred::CStr;
            }
            if contract.confidence(&Fact::NonNull(i)) >= PRESEED_THRESHOLD {
                return SafePred::NonNull;
            }
            SafePred::Always
        })
        .collect()
}

/// Builds a contract-derived [`wrappergen::hooks::ArgCheckHook`] whose
/// checks carry `"contract"` provenance — visible in
/// [`wrappergen::CallModel`] ops and lint findings, so a reviewer can
/// tell statically-seeded checks from campaign-measured ones.
pub fn contract_hook(
    contract: &FunctionContract,
    proto: &Prototype,
    oracle: guardian::GuardOracle,
    engine: wrappergen::PolicyEngine,
) -> wrappergen::hooks::ArgCheckHook {
    wrappergen::hooks::ArgCheckHook::new(
        contract_preds(contract, proto),
        proto.ret.clone(),
        oracle,
        engine,
    )
    .with_provenance("contract")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn proto(s: &str) -> Prototype {
        parse_prototype(s, &TypedefTable::with_builtins()).unwrap()
    }

    fn simlibc_man(name: &str) -> Option<String> {
        simlibc::man_page(name)
    }

    #[test]
    fn noisy_or_combines_and_is_idempotent_per_source() {
        let mut c = FunctionContract::new("f");
        c.add_evidence(Fact::CStr(0), 0.5, "type:const-char-ptr");
        c.add_evidence(Fact::CStr(0), 0.6, "name:string-like");
        let combined = c.confidence(&Fact::CStr(0));
        assert!((combined - 0.8).abs() < 1e-9, "{combined}");
        // Replaying the same source must not inflate.
        c.add_evidence(Fact::CStr(0), 0.6, "name:string-like");
        assert!((c.confidence(&Fact::CStr(0)) - combined).abs() < 1e-12);
    }

    #[test]
    fn heuristics_alone_stay_below_the_preseed_threshold() {
        // No man page: type + name evidence only.
        let base = infer_contracts(
            "libsimc.so.1",
            &[proto("size_t strlen(const char *s);")],
            &|_| None,
        );
        let c = base.function("strlen").unwrap();
        assert!(c.confidence(&Fact::CStr(0)) > 0.5);
        assert!(c.confidence(&Fact::CStr(0)) < PRESEED_THRESHOLD);
        assert!(ladder_hints(&base, &[proto("size_t strlen(const char *s);")]).is_empty());
    }

    #[test]
    fn man_phrases_clear_the_threshold_and_floor_the_ladder() {
        let p = proto("size_t strlen(const char *s);");
        let base = infer_contracts("libsimc.so.1", std::slice::from_ref(&p), &simlibc_man);
        let c = base.function("strlen").unwrap();
        assert!(c.confidence(&Fact::CStr(0)) >= PRESEED_THRESHOLD);
        assert!(c.confidence(&Fact::NonNull(0)) >= PRESEED_THRESHOLD);
        let hints = ladder_hints(&base, std::slice::from_ref(&p));
        // CStrIn ladder: [any, nonnull, null-or-cstr, cstr] — floor at 3.
        assert_eq!(hints.floor("strlen", 0), 3);
    }

    #[test]
    fn null_ok_vetoes_the_floor() {
        let frees = proto("void free(void *ptr);");
        let time = proto("time_t time(time_t *tloc);");
        let protos = vec![frees, time];
        let base = infer_contracts("libsimc.so.1", &protos, &simlibc_man);
        let c = base.function("free").unwrap();
        assert!(c.confidence(&Fact::NullOk(0)) >= NULL_OK_THRESHOLD);
        assert!(c.confidence(&Fact::Frees(0)) >= PRESEED_THRESHOLD);
        let hints = ladder_hints(&base, &protos);
        assert_eq!(hints.floor("free", 0), 0);
        assert_eq!(hints.floor("time", 0), 0);
    }

    #[test]
    fn format_string_implies_cstr_implies_nonnull() {
        let p = proto("int printf(const char *format, ...);");
        let base = infer_contracts("libsimc.so.1", std::slice::from_ref(&p), &simlibc_man);
        let c = base.function("printf").unwrap();
        assert!(c.confidence(&Fact::FormatString(0)) >= PRESEED_THRESHOLD);
        assert!(c.confidence(&Fact::CStr(0)) >= PRESEED_THRESHOLD);
        assert!(c.confidence(&Fact::NonNull(0)) >= PRESEED_THRESHOLD);
    }

    #[test]
    fn phrase_attribution_is_per_parameter() {
        let p = proto("long strtol(const char *nptr, char **endptr, int base);");
        let base = infer_contracts("libsimc.so.1", std::slice::from_ref(&p), &simlibc_man);
        let c = base.function("strtol").unwrap();
        assert!(c.confidence(&Fact::CStr(0)) >= PRESEED_THRESHOLD);
        assert!(c.confidence(&Fact::NullOk(1)) >= NULL_OK_THRESHOLD);
        assert!(c.confidence(&Fact::NullOk(0)) < NULL_OK_THRESHOLD);
        let hints = ladder_hints(&base, std::slice::from_ref(&p));
        assert_eq!(hints.floor("strtol", 0), 3);
        assert_eq!(hints.floor("strtol", 1), 0);
    }

    #[test]
    fn buf_len_pairs_come_from_names() {
        let p = proto("void *memset_s(void *buf, size_t len, int c);");
        let base = infer_contracts("x", std::slice::from_ref(&p), &|_| None);
        let c = base.function("memset_s").unwrap();
        assert!(c.confidence(&Fact::BufLenPair { buf: 0, len: 1 }) > 0.6);
    }

    #[test]
    fn allocator_family_facts() {
        let protos =
            vec![proto("void *malloc(size_t size);"), proto("void free(void *ptr);")];
        let base = infer_contracts("libsimc.so.1", &protos, &|_| None);
        let m = base.function("malloc").unwrap();
        assert!(m.confidence(&Fact::Allocates) >= PRESEED_THRESHOLD);
        assert!(m.confidence(&Fact::ReturnsNullOnFailure) >= PRESEED_THRESHOLD);
        assert!(base.function("free").unwrap().confidence(&Fact::Frees(0)) >= 0.9);
    }

    #[test]
    fn contract_preds_follow_settled_facts() {
        let p = proto("size_t strlen(const char *s);");
        let base = infer_contracts("libsimc.so.1", std::slice::from_ref(&p), &simlibc_man);
        assert_eq!(
            contract_preds(base.function("strlen").unwrap(), &p),
            vec![SafePred::CStr]
        );

        let f = proto("void free(void *ptr);");
        let base = infer_contracts("libsimc.so.1", std::slice::from_ref(&f), &simlibc_man);
        assert_eq!(
            contract_preds(base.function("free").unwrap(), &f),
            vec![SafePred::Always]
        );
    }

    #[test]
    fn fact_base_text_is_deterministic() {
        let protos: Vec<Prototype> = simlibc::prototypes();
        let a = infer_contracts("libsimc.so.1", &protos, &simlibc_man).to_text();
        let b = infer_contracts("libsimc.so.1", &protos, &simlibc_man).to_text();
        assert_eq!(a, b, "same inputs must render byte-identically");
        assert!(a.contains("strlen"));
    }

    #[test]
    fn whole_word_matching_avoids_substring_hits() {
        assert!(mentions_word("The s argument", "s"));
        assert!(!mentions_word("The string argument", "s"));
        assert!(mentions_word("copies src into dest", "src"));
        assert!(!mentions_word("sources are copied", "src"));
    }
}
