//! Rendering lint findings through the profiler's report vocabulary.

use profiler::LintLine;

use crate::lint::LintFinding;

/// Converts findings into the profiler's rendering rows.
pub fn to_lint_lines(findings: &[LintFinding]) -> Vec<LintLine> {
    findings
        .iter()
        .map(|f| LintLine {
            func: f.func.clone(),
            rule: f.rule.tag().to_string(),
            severity: f.rule.severity().to_string(),
            message: f.message.clone(),
        })
        .collect()
}

/// Renders the lint report section — deterministic (sorted) regardless of
/// finding order; see [`profiler::render_lint_report`].
pub fn render_findings(library: &str, findings: &[LintFinding]) -> String {
    profiler::render_lint_report(library, &to_lint_lines(findings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRule;

    #[test]
    fn findings_render_deterministically() {
        let mk = |func: &str, rule: LintRule| LintFinding {
            func: func.into(),
            rule,
            arg: Some(0),
            message: format!("{} in {}", rule.tag(), func),
        };
        let findings = vec![
            mk("strcpy", LintRule::NarrowMask),
            mk("memcpy", LintRule::CheckAfterMutation),
        ];
        let a = render_findings("libsimc.so.1", &findings);
        let mut reversed = findings.clone();
        reversed.reverse();
        let b = render_findings("libsimc.so.1", &reversed);
        assert_eq!(a, b);
        assert!(a.contains("narrow-mask"), "{a}");
        assert!(a.contains("2 finding(s)"), "{a}");
    }
}
