//! # analyzer — static contract inference and the wrapper-soundness lint
//!
//! Two static passes that run *before* and *after* the HEALERS dynamic
//! pipeline:
//!
//! * **Contract inference** ([`infer_contracts`]): a fixpoint engine over
//!   prototypes and man-page prose emitting a per-function fact base
//!   ([`ContractBase`]) — `NonNull`, `CStr`, buffer/length pairing,
//!   ownership transfer — each fact with a confidence and its evidence
//!   sources. High-confidence facts pre-seed the fault injector's ladder
//!   search ([`ladder_hints`]), skipping rungs a settled contract already
//!   decides, and emit contract-derived wrapper checks with `"contract"`
//!   provenance ([`contract_hook`]).
//! * **Wrapper-soundness lint** ([`lint_library`], [`lint_contracts`]):
//!   a dataflow walk over each generated wrapper's
//!   [`CallModel`](wrappergen::CallModel) flagging check-after-mutation
//!   orderings, range checks wider than the register truncation before
//!   them, string scans not dominated by a NULL check, and contradictory
//!   contract facts.
//!
//! ```
//! use analyzer::{infer_contracts, ladder_hints, Fact, PRESEED_THRESHOLD};
//! use cdecl::{parse_prototype, TypedefTable};
//!
//! let t = TypedefTable::with_builtins();
//! let protos = vec![parse_prototype("size_t strlen(const char *s);", &t).unwrap()];
//! let base = infer_contracts("libsimc.so.1", &protos, &simlibc::man_page);
//! let strlen = base.function("strlen").unwrap();
//! assert!(strlen.confidence(&Fact::CStr(0)) >= PRESEED_THRESHOLD);
//! // The injector may start strlen's ladder at the `cstr` rung:
//! assert_eq!(ladder_hints(&base, &protos).floor("strlen", 0), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod contract;
mod lint;
mod report;
mod subst;

pub use contract::{
    contract_hook, contract_preds, infer_contracts, ladder_hints, ContractBase, Fact,
    FunctionContract, InferredFact, NULL_OK_THRESHOLD, PRESEED_THRESHOLD,
};
pub use lint::{lint_call_model, lint_contracts, lint_library, LintFinding, LintRule};
pub use report::{render_findings, to_lint_lines};
pub use subst::{analyze_substitutions, SubstitutionAnalysis};
