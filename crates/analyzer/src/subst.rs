//! The flow-sensitive substitution analysis (the analyzer's third pass).
//!
//! A dataflow walk over each wrapper's symbolic [`CallModel`] — the same
//! IR the soundness lint consumes — plus the inferred contract fact
//! base, deriving per (function, argument) a point on the extent lattice
//! (`Unknown → NullOk → NonNull → BoundedBy → ExactExtent`) and emitting
//! a [`SubstitutionPlan`] only when the full proof obligation
//! discharges:
//!
//! 1. the model is fully described (no opaque ops — an op the model
//!    cannot vouch for could do anything);
//! 2. the destination's extent is *exactly* known at entry
//!    ([`ExtentClass::ExactExtent`]): some check already consults the
//!    oracle's `extent_right` answer for that pointer, so the safer
//!    variant may clip to the same exact bound;
//! 3. no size-mutating op is ordered before the bounded copy (a mutated
//!    destination invalidates the proven extent);
//! 4. the source is established as a measurable C string (the clip
//!    length exists);
//! 5. no contradictory facts: the contract base must not confidently
//!    assert the destination is NULL-tolerant while the rewrite
//!    requires dereferencing it.
//!
//! Rejections are kept (with reasons) so the audit can show what was
//! *not* rewritten and why — a substitution pass that silently skips
//! functions reads as "covered everything" when it didn't.

use typelattice::{ExtentClass, ProofStep, SafePred, SubstFamily, SubstitutionPlan};
use wrappergen::{CallModel, HookOp, WrapperLibrary};

use crate::contract::{ContractBase, Fact, NULL_OK_THRESHOLD};

/// The analysis result over one wrapper library: proven plans plus the
/// audit trail of fragile functions that could not be proven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionAnalysis {
    /// soname of the analyzed library.
    pub library: String,
    /// Proven-sound plans, sorted by function name.
    pub plans: Vec<SubstitutionPlan>,
    /// `(function, reason)` for every family member whose proof did not
    /// discharge, sorted by function name.
    pub rejected: Vec<(String, String)>,
}

impl SubstitutionAnalysis {
    /// Renders the analysis deterministically: every plan with its
    /// discharged proof, then every rejection with its reason.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Substitution analysis for `{}`: {} plan(s), {} rejection(s)",
            self.library,
            self.plans.len(),
            self.rejected.len()
        );
        for plan in &self.plans {
            out.push_str(&plan.render_proof());
        }
        for (func, reason) in &self.rejected {
            let _ = writeln!(out, "{func}: NOT substituted — {reason}");
        }
        out
    }
}

/// Per-argument lattice state threaded through one model walk.
#[derive(Debug, Default)]
struct ArgState {
    extent: ExtentClass,
    /// The op that established the current lattice point (for the proof).
    evidence: Option<String>,
}

impl ArgState {
    fn refine(&mut self, to: ExtentClass, evidence: &str) {
        let next = self.extent.refine(to);
        if next != self.extent || self.evidence.is_none() {
            self.extent = next;
            self.evidence = Some(evidence.to_string());
        }
    }
}

/// What one predicate teaches the lattice about its subject argument.
fn transfer(pred: &SafePred) -> ExtentClass {
    match pred {
        SafePred::NonNull
        | SafePred::CStr
        | SafePred::Readable(_)
        | SafePred::Writable(_)
        | SafePred::ValidFilePtr
        | SafePred::PtrToCStrOrNull => ExtentClass::NonNull,
        // The check passed means the oracle answered the exact
        // right-edge extent of this pointer and the relation held — the
        // safer variant may re-ask the same oracle at call time.
        SafePred::HoldsCStrOf { .. } => ExtentClass::ExactExtent,
        SafePred::WritableAtLeastArg { size, .. } => ExtentClass::BoundedBy(*size),
        SafePred::NullOr(_) | SafePred::HeapChunkOrNull => ExtentClass::NullOk,
        _ => ExtentClass::Unknown,
    }
}

/// Walks one call model, deciding whether the fragile `family` call may
/// be rerouted. Returns the plan or the reason it may not.
fn prove_model(
    model: &CallModel,
    family: SubstFamily,
    base: Option<&ContractBase>,
) -> Result<SubstitutionPlan, String> {
    let dst = family.dst_arg();
    let src = family.src_arg();
    let mut args: std::collections::BTreeMap<usize, ArgState> = Default::default();
    let mut proof = Vec::new();

    for op in &model.ops {
        match &op.op {
            HookOp::Opaque => {
                return Err(format!(
                    "`{}` contributes an op the model cannot describe; \
                     an undescribed op may mutate the destination",
                    op.hook
                ));
            }
            HookOp::Mutate { arg, label } => {
                if *arg == dst {
                    return Err(format!(
                        "`{}` mutates the destination before the copy ({label}); \
                         the proven extent would be stale",
                        op.hook
                    ));
                }
                // Any other mutated argument loses its lattice point.
                args.entry(*arg).or_default().extent = ExtentClass::Unknown;
                args.entry(*arg).or_default().evidence = None;
            }
            HookOp::Check { arg, pred: Some(p), label, .. } => {
                let evidence = format!("`{}` check: {label}", op.hook);
                // Relational predicates teach the lattice about the
                // arguments they reference, not just their subject: a
                // passed `holds-cstr(argN)` measured argN's string (its
                // evaluation scans it), and a passed size-fits check got
                // an exact oracle answer for the pointer it bounds.
                match p {
                    SafePred::SizeFitsWritable { ptr, .. } => {
                        args.entry(*ptr)
                            .or_default()
                            .refine(ExtentClass::ExactExtent, &evidence);
                    }
                    SafePred::HoldsCStrOf { src: s } => {
                        args.entry(*s).or_default().refine(
                            ExtentClass::NonNull,
                            &format!("{evidence} (source measured by the check)"),
                        );
                    }
                    _ => {}
                }
                args.entry(*arg).or_default().refine(transfer(p), &evidence);
            }
            HookOp::Check { pred: None, .. } | HookOp::Observe => {}
        }
    }

    // Obligation: the model was fully described (checked op by op above).
    proof.push(ProofStep {
        obligation: "wrapper model fully described (no opaque ops)".into(),
        discharged_by: format!("{} described op(s)", model.ops.len()),
    });

    // Obligation: destination extent exactly known at entry.
    let dst_state = args.get(&dst);
    let dst_extent = dst_state.map(|s| s.extent).unwrap_or_default();
    match dst_extent {
        ExtentClass::ExactExtent => proof.push(ProofStep {
            obligation: format!("arg {} extent exactly known at entry", dst + 1),
            discharged_by: dst_state
                .and_then(|s| s.evidence.clone())
                .unwrap_or_else(|| "exact-extent".into()),
        }),
        other => {
            return Err(format!(
                "destination extent is `{other}` at entry, not exact — \
                 the oracle cannot bound the copy"
            ));
        }
    }

    // Obligation: no size-mutating op before the copy (checked in the
    // walk — reaching here means none was seen).
    proof.push(ProofStep {
        obligation: format!("no size-mutating op on arg {} before the copy", dst + 1),
        discharged_by: "no Mutate op targets the destination".into(),
    });

    // Obligation: the source is a measurable C string.
    let src_extent = args.get(&src).map(|s| s.extent).unwrap_or_default();
    if src_extent.rank() >= ExtentClass::NonNull.rank() {
        proof.push(ProofStep {
            obligation: format!("arg {} measurable as a C string", src + 1),
            discharged_by: args
                .get(&src)
                .and_then(|s| s.evidence.clone())
                .unwrap_or_else(|| "non-null".into()),
        });
    } else {
        return Err(format!(
            "source extent is `{src_extent}` — the clip length cannot be measured"
        ));
    }

    // Obligation: no contradictory contract facts about the destination.
    if let Some(contract) = base.and_then(|b| b.function(&model.func)) {
        let nullok = contract.confidence(&Fact::NullOk(dst));
        if nullok >= NULL_OK_THRESHOLD {
            return Err(format!(
                "contract asserts arg {} is NULL-tolerant ({nullok:.2}) but the \
                 rewrite must dereference it — contradictory facts",
                dst + 1
            ));
        }
        proof.push(ProofStep {
            obligation: "no contradictory contract facts".into(),
            discharged_by: format!(
                "contract NullOk(arg {}) confidence {nullok:.2} < {NULL_OK_THRESHOLD}",
                dst + 1
            ),
        });
    } else {
        proof.push(ProofStep {
            obligation: "no contradictory contract facts".into(),
            discharged_by: "no contract facts recorded for this function".into(),
        });
    }

    Ok(SubstitutionPlan {
        func: model.func.clone(),
        family,
        dst_arg: dst,
        src_arg: src,
        dst_extent,
        proof,
    })
}

/// Runs the substitution analysis over every wrapper in `lib` (normally
/// the security wrapper — its models carry the campaign-derived
/// relational checks the proofs lean on), consulting `base` for
/// contradictory facts when given.
pub fn analyze_substitutions(
    lib: &WrapperLibrary,
    base: Option<&ContractBase>,
) -> SubstitutionAnalysis {
    let mut plans = Vec::new();
    let mut rejected = Vec::new();
    for (name, wrapped) in lib.iter() {
        let Some(family) = SubstFamily::of(name) else { continue };
        match prove_model(&wrapped.call_model(), family, base) {
            Ok(plan) => plans.push(plan),
            Err(reason) => rejected.push((name.to_string(), reason)),
        }
    }
    // `iter` walks a BTreeMap, but sort anyway so the contract is local.
    plans.sort_by(|a, b| a.func.cmp(&b.func));
    rejected.sort();
    SubstitutionAnalysis { library: lib.soname.clone(), plans, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrappergen::ModelOp;

    fn check(arg: usize, pred: SafePred) -> HookOp {
        HookOp::Check {
            arg,
            label: pred.to_string(),
            pred: Some(pred),
            null_guarded: true,
            memoized: false,
        }
    }

    fn model(func: &str, ops: Vec<HookOp>) -> CallModel {
        CallModel {
            func: func.into(),
            truncations: vec![],
            ops: ops
                .into_iter()
                .map(|op| ModelOp { hook: "arg check", provenance: "campaign".into(), op })
                .collect(),
        }
    }

    fn strcpy_model() -> CallModel {
        model(
            "strcpy",
            vec![check(0, SafePred::HoldsCStrOf { src: 1 }), check(1, SafePred::CStr)],
        )
    }

    #[test]
    fn proves_the_strcpy_shape() {
        let plan = prove_model(&strcpy_model(), SubstFamily::Strcpy, None).unwrap();
        assert_eq!(plan.dst_extent, ExtentClass::ExactExtent);
        assert_eq!(plan.dst_arg, 0);
        assert_eq!(plan.src_arg, 1);
        assert!(plan.proof.len() >= 4, "{:?}", plan.proof);
        let rendered = plan.render_proof();
        assert!(rendered.contains("exactly known"), "{rendered}");
    }

    #[test]
    fn opaque_ops_block_the_proof() {
        let mut m = strcpy_model();
        m.ops.push(ModelOp {
            hook: "mystery",
            provenance: "builtin".into(),
            op: HookOp::Opaque,
        });
        let err = prove_model(&m, SubstFamily::Strcpy, None).unwrap_err();
        assert!(err.contains("cannot describe"), "{err}");
    }

    #[test]
    fn destination_mutation_blocks_the_proof() {
        let mut m = strcpy_model();
        m.ops.insert(
            0,
            ModelOp {
                hook: "canary",
                provenance: "builtin".into(),
                op: HookOp::Mutate { arg: 0, label: "inflate".into() },
            },
        );
        let err = prove_model(&m, SubstFamily::Strcpy, None).unwrap_err();
        assert!(err.contains("mutates the destination"), "{err}");
    }

    #[test]
    fn inexact_destination_extent_blocks_the_proof() {
        // Only NonNull established for dst: the lattice stops below
        // ExactExtent and the proof must not discharge.
        let m =
            model("strcpy", vec![check(0, SafePred::NonNull), check(1, SafePred::CStr)]);
        let err = prove_model(&m, SubstFamily::Strcpy, None).unwrap_err();
        assert!(err.contains("non-null"), "{err}");
        // NullOr admits NULL: even further down.
        let nullok = model(
            "strcpy",
            vec![
                check(0, SafePred::NullOr(Box::new(SafePred::Writable(1)))),
                check(1, SafePred::CStr),
            ],
        );
        let err = prove_model(&nullok, SubstFamily::Strcpy, None).unwrap_err();
        assert!(err.contains("null-ok"), "{err}");
    }

    #[test]
    fn unmeasurable_source_blocks_the_proof() {
        // Destination extent is exact (a size-fits check measured it) but
        // nothing ever touched the source string.
        let m =
            model("strcpy", vec![check(2, SafePred::SizeFitsWritable { ptr: 0, elem: 1 })]);
        let err = prove_model(&m, SubstFamily::Strcpy, None).unwrap_err();
        assert!(err.contains("clip length"), "{err}");
    }

    #[test]
    fn holds_cstr_alone_proves_the_security_wrapper_shape() {
        // The security wrapper strips the read-side CStr check to
        // `Always`, leaving only the relational holds-cstr on dst — whose
        // evaluation measures the source, so the proof still discharges.
        let m = model("strcpy", vec![check(0, SafePred::HoldsCStrOf { src: 1 })]);
        let plan = prove_model(&m, SubstFamily::Strcpy, None).unwrap();
        assert_eq!(plan.dst_extent, ExtentClass::ExactExtent);
        assert!(
            plan.proof.iter().any(|s| s.discharged_by.contains("source measured")),
            "{:?}",
            plan.proof
        );
    }

    #[test]
    fn contradictory_nullok_contract_blocks_the_proof() {
        use crate::contract::FunctionContract;
        let mut c = FunctionContract::new("strcpy");
        c.add_evidence(Fact::NullOk(0), 0.95, "man:may-be-NULL");
        let mut base = ContractBase { library: "x".into(), ..Default::default() };
        base.functions.insert("strcpy".into(), c);
        let err =
            prove_model(&strcpy_model(), SubstFamily::Strcpy, Some(&base)).unwrap_err();
        assert!(err.contains("contradictory"), "{err}");
    }

    #[test]
    fn analysis_text_is_deterministic() {
        let a = SubstitutionAnalysis {
            library: "libx.so.1".into(),
            plans: vec![],
            rejected: vec![("strcat".into(), "reason".into())],
        };
        assert_eq!(a.to_text(), a.to_text());
        assert!(a.to_text().contains("NOT substituted"));
    }
}
