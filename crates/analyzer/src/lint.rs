//! The wrapper-soundness linter (the analyzer's second pass).
//!
//! A dataflow walk over the [`wrappergen::CallModel`] of each generated
//! wrapper — the ordered check/mutate ops its hook pipeline admits to —
//! plus a consistency pass over the contract fact base. Five rules:
//!
//! 1. **check-after-mutation** — a check reads an argument an earlier
//!    hook already rewrote, so it no longer validates what the caller
//!    passed;
//! 2. **narrow-mask** — an integer range check wider than the register
//!    truncation applied before it: part of the checked range is
//!    unrepresentable, so the check silently passes values the truncation
//!    already folded;
//! 3. **unguarded-cstr-scan** — a string/byte scan not dominated by a
//!    NULL check on the same argument dereferences NULL on the failure
//!    path the wrapper exists to prevent;
//! 4. **memoized-relational-verdict** — a memoized per-pointer verdict
//!    about an argument that a downstream relational check relates to
//!    other arguments: the memoizable predicate set disagrees with the
//!    wrapper's relational contract facts (the cached verdict answers
//!    for state the relational check must re-derive every call);
//! 5. **contradictory-contract-facts** — the fact base asserts both
//!    `NonNull` and `NullOk` for the same parameter with confidence.

use std::collections::BTreeMap;
use std::fmt;

use typelattice::SafePred;
use wrappergen::{CallModel, HookOp, WrapperLibrary};

use crate::contract::{ContractBase, Fact, NULL_OK_THRESHOLD, PRESEED_THRESHOLD};

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintRule {
    /// A check runs after the argument it reads was mutated.
    CheckAfterMutation,
    /// A range check wider than the truncation applied before it.
    NarrowMask,
    /// A scanning check not dominated by a NULL check.
    UnguardedScan,
    /// A memoized verdict on an argument a downstream relational check
    /// involves.
    MemoizedRelational,
    /// `NonNull` and `NullOk` both asserted for one parameter.
    ContradictoryFacts,
}

impl LintRule {
    /// Stable identifier used in reports and CI gates.
    pub fn tag(self) -> &'static str {
        match self {
            LintRule::CheckAfterMutation => "check-after-mutation",
            LintRule::NarrowMask => "narrow-mask",
            LintRule::UnguardedScan => "unguarded-cstr-scan",
            LintRule::MemoizedRelational => "memoized-relational-verdict",
            LintRule::ContradictoryFacts => "contradictory-contract-facts",
        }
    }

    /// Report severity: pipeline defects are errors, consistency
    /// disagreements are warnings (the relational check still runs each
    /// call; fact-base contradictions block pre-seeding, not calls).
    pub fn severity(self) -> &'static str {
        match self {
            LintRule::ContradictoryFacts | LintRule::MemoizedRelational => "warning",
            _ => "error",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Wrapped function the finding is about.
    pub func: String,
    /// Violated rule.
    pub rule: LintRule,
    /// Zero-based argument index, when the finding is about one.
    pub arg: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

/// Whether passing `pred` establishes that the argument is non-NULL —
/// i.e. a later raw scan of the same argument is dominated by it.
fn implies_nonnull(pred: &SafePred) -> bool {
    matches!(
        pred,
        SafePred::NonNull
            | SafePred::CStr
            | SafePred::Readable(_)
            | SafePred::Writable(_)
            | SafePred::HoldsCStrOf { .. }
            | SafePred::ReadableAtLeastArg { .. }
            | SafePred::ReadableAtLeastProduct { .. }
            | SafePred::WritableAtLeastArg { .. }
            | SafePred::WritableAtLeastProduct { .. }
            | SafePred::ValidFilePtr
            | SafePred::ValidFuncPtr
    )
}

/// Lints one wrapper's call model. Findings come out in pipeline order;
/// rendering sorts them, so order here carries no meaning.
pub fn lint_call_model(model: &CallModel) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let widths: BTreeMap<usize, u64> = model.truncations.iter().copied().collect();
    // arg -> (hook, label) of the op that last mutated it.
    let mut mutated: BTreeMap<usize, (&str, String)> = BTreeMap::new();
    // args already established non-NULL by an earlier check.
    let mut null_checked: std::collections::BTreeSet<usize> = Default::default();
    // arg -> (hook, label) of an earlier memoized per-pointer verdict.
    let mut memoized_verdicts: BTreeMap<usize, (&str, String)> = BTreeMap::new();

    for op in &model.ops {
        match &op.op {
            HookOp::Check { arg, pred, label, null_guarded, memoized } => {
                // Rule 1: the set of args this check reads.
                let mut reads = vec![*arg];
                if let Some(p) = pred {
                    reads.extend(p.referenced_args());
                }
                reads.sort_unstable();
                reads.dedup();
                for r in reads {
                    if let Some((mhook, mlabel)) = mutated.get(&r) {
                        findings.push(LintFinding {
                            func: model.func.clone(),
                            rule: LintRule::CheckAfterMutation,
                            arg: Some(r),
                            message: format!(
                                "`{}` checks arg {} ({label}) after `{mhook}` mutated it \
                                 ({mlabel}); the check no longer sees the caller's value",
                                op.hook,
                                r + 1
                            ),
                        });
                    }
                }
                // Rule 2: range checks vs the register truncation.
                if let (Some(SafePred::IntInRange { min, max }), Some(b)) =
                    (pred.as_ref(), widths.get(arg))
                {
                    let lo = -(1i64 << (8 * b - 1));
                    let hi = (1i64 << (8 * b - 1)) - 1;
                    if *min < lo || *max > hi {
                        findings.push(LintFinding {
                            func: model.func.clone(),
                            rule: LintRule::NarrowMask,
                            arg: Some(*arg),
                            message: format!(
                                "`{}` checks int in [{min}, {max}] on arg {}, but the call \
                                 boundary truncates it to {b} bytes ([{lo}, {hi}]) first — \
                                 part of the checked range is unrepresentable",
                                op.hook,
                                arg + 1
                            ),
                        });
                    }
                }
                // Rule 3: raw scans need a dominating NULL check.
                if !null_guarded && !null_checked.contains(arg) {
                    findings.push(LintFinding {
                        func: model.func.clone(),
                        rule: LintRule::UnguardedScan,
                        arg: Some(*arg),
                        message: format!(
                            "`{}` scans arg {} ({label}) without a dominating NULL check",
                            op.hook,
                            arg + 1
                        ),
                    });
                }
                // Rule 4: a relational check involving an argument whose
                // verdict an earlier check memoized per pointer — the
                // memoizable predicate set disagrees with the relational
                // contract facts.
                if pred.as_ref().is_some_and(SafePred::is_relational) {
                    let mut involved = vec![*arg];
                    if let Some(p) = pred {
                        involved.extend(p.referenced_args());
                    }
                    involved.sort_unstable();
                    involved.dedup();
                    for r in involved {
                        if let Some((mhook, mlabel)) = memoized_verdicts.get(&r) {
                            findings.push(LintFinding {
                                func: model.func.clone(),
                                rule: LintRule::MemoizedRelational,
                                arg: Some(r),
                                message: format!(
                                    "`{mhook}` memoizes a per-pointer verdict on arg {} \
                                     ({mlabel}), but `{}` evaluates the relational check \
                                     ({label}) involving the same argument on every call \
                                     — the memoized verdict disagrees with the wrapper's \
                                     relational facts",
                                    r + 1,
                                    op.hook
                                ),
                            });
                        }
                    }
                }
                if *memoized {
                    memoized_verdicts.insert(*arg, (op.hook, label.clone()));
                }
                // A passed check whose predicate implies non-NULL
                // dominates later raw scans of the same argument.
                if pred.as_ref().is_some_and(implies_nonnull) {
                    null_checked.insert(*arg);
                }
            }
            HookOp::Mutate { arg, label } => {
                mutated.insert(*arg, (op.hook, label.clone()));
            }
            HookOp::Observe | HookOp::Opaque => {}
        }
    }
    findings
}

/// Lints every wrapper in a generated library.
pub fn lint_library(lib: &WrapperLibrary) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (_, wrapped) in lib.iter() {
        findings.extend(lint_call_model(&wrapped.call_model()));
    }
    findings
}

/// Consistency pass over the contract fact base (rule 4). A
/// contradiction is only reportable when the `NonNull` side is
/// *actionable* (at or above [`PRESEED_THRESHOLD`]): weak derived
/// evidence below the threshold never pre-seeds or emits checks, so a
/// confident `NullOk` simply vetoes it without conflict.
pub fn lint_contracts(base: &ContractBase) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for contract in base.functions.values() {
        for i in contract.mentioned_params() {
            let nonnull = contract.confidence(&Fact::NonNull(i));
            let nullok = contract.confidence(&Fact::NullOk(i));
            if nonnull >= PRESEED_THRESHOLD && nullok >= NULL_OK_THRESHOLD {
                findings.push(LintFinding {
                    func: contract.func.clone(),
                    rule: LintRule::ContradictoryFacts,
                    arg: Some(i),
                    message: format!(
                        "arg {} is asserted non-null ({nonnull:.2}) and null-ok \
                         ({nullok:.2}) at the same time — neither fact is usable",
                        i + 1
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::FunctionContract;
    use wrappergen::ModelOp;

    fn check(arg: usize, pred: Option<SafePred>, guarded: bool) -> HookOp {
        let label = pred.as_ref().map(|p| p.to_string()).unwrap_or_else(|| "raw".into());
        HookOp::Check { arg, pred, label, null_guarded: guarded, memoized: false }
    }

    fn memo_check(arg: usize, pred: SafePred) -> HookOp {
        HookOp::Check {
            arg,
            label: pred.to_string(),
            pred: Some(pred),
            null_guarded: true,
            memoized: true,
        }
    }

    fn model(
        truncations: Vec<(usize, u64)>,
        ops: Vec<(&'static str, HookOp)>,
    ) -> CallModel {
        CallModel {
            func: "f".into(),
            truncations,
            ops: ops
                .into_iter()
                .map(|(hook, op)| ModelOp { hook, provenance: "builtin".into(), op })
                .collect(),
        }
    }

    #[test]
    fn check_after_mutation_is_flagged() {
        let m = model(
            vec![],
            vec![
                ("canary", HookOp::Mutate { arg: 0, label: "inflate size".into() }),
                ("arg check", check(0, Some(SafePred::SizeBelow(1 << 16)), true)),
            ],
        );
        let f = lint_call_model(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::CheckAfterMutation);
        assert_eq!(f[0].arg, Some(0));
    }

    #[test]
    fn check_before_mutation_is_clean() {
        let m = model(
            vec![],
            vec![
                ("arg check", check(0, Some(SafePred::SizeBelow(1 << 16)), true)),
                ("canary", HookOp::Mutate { arg: 0, label: "inflate size".into() }),
            ],
        );
        assert!(lint_call_model(&m).is_empty());
    }

    #[test]
    fn relational_pred_reading_a_mutated_arg_is_flagged() {
        // The check is *on* arg 0 but *reads* arg 1, which was mutated.
        let m = model(
            vec![],
            vec![
                ("canary", HookOp::Mutate { arg: 1, label: "inflate size".into() }),
                (
                    "arg check",
                    check(0, Some(SafePred::WritableAtLeastArg { size: 1, elem: 1 }), true),
                ),
            ],
        );
        let f = lint_call_model(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].arg, Some(1));
    }

    #[test]
    fn narrow_mask_is_flagged_only_when_range_exceeds_width() {
        let wide = model(
            vec![(0, 4)],
            vec![(
                "arg check",
                check(0, Some(SafePred::IntInRange { min: 0, max: 1 << 40 }), true),
            )],
        );
        let f = lint_call_model(&wide);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::NarrowMask);

        // char-range on a 4-byte int is representable — clean.
        let fits = model(
            vec![(0, 4)],
            vec![(
                "arg check",
                check(0, Some(SafePred::IntInRange { min: -1, max: 255 }), true),
            )],
        );
        assert!(lint_call_model(&fits).is_empty());
    }

    #[test]
    fn unguarded_scan_is_flagged_and_dominance_clears_it() {
        let raw = model(vec![], vec![("fixture", check(0, Some(SafePred::CStr), false))]);
        let f = lint_call_model(&raw);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::UnguardedScan);

        let dominated = model(
            vec![],
            vec![
                ("arg check", check(0, Some(SafePred::NonNull), true)),
                ("fixture", check(0, Some(SafePred::CStr), false)),
            ],
        );
        assert!(lint_call_model(&dominated).is_empty());

        // A NULL check on a *different* arg does not dominate.
        let other = model(
            vec![],
            vec![
                ("arg check", check(1, Some(SafePred::NonNull), true)),
                ("fixture", check(0, Some(SafePred::CStr), false)),
            ],
        );
        assert_eq!(lint_call_model(&other).len(), 1);
    }

    #[test]
    fn memoized_verdict_under_a_relational_check_is_flagged() {
        // The PR 8 allowlist memoizes Writable per pointer; a relational
        // SizeFitsWritable downstream re-derives the same extent every
        // call — the two disagree about what may be cached.
        let m = model(
            vec![],
            vec![
                ("kernel", memo_check(0, SafePred::Writable(1))),
                (
                    "arg check",
                    check(2, Some(SafePred::SizeFitsWritable { ptr: 0, elem: 1 }), true),
                ),
            ],
        );
        let f = lint_call_model(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::MemoizedRelational);
        assert_eq!(f[0].rule.severity(), "warning");
        assert_eq!(f[0].arg, Some(0));
        assert!(f[0].message.contains("memoizes"), "{}", f[0].message);
    }

    #[test]
    fn memoized_relational_rule_spares_unrelated_args() {
        // Memoized verdict on an argument no relational check involves:
        // clean (the fread shape — ValidFilePtr memoized on the stream,
        // relational product check on the buffer).
        let m = model(
            vec![],
            vec![
                ("kernel", memo_check(3, SafePred::ValidFilePtr)),
                (
                    "arg check",
                    check(0, Some(SafePred::WritableAtLeastProduct { a: 1, b: 2 }), true),
                ),
            ],
        );
        assert!(lint_call_model(&m).is_empty());
        // Unmemoized verdicts never trigger the rule, wherever they sit.
        let unmemo = model(
            vec![],
            vec![
                ("kernel", check(0, Some(SafePred::Writable(1)), true)),
                (
                    "arg check",
                    check(2, Some(SafePred::SizeFitsWritable { ptr: 0, elem: 1 }), true),
                ),
            ],
        );
        assert!(lint_call_model(&unmemo).is_empty());
    }

    #[test]
    fn contradictory_facts_are_flagged() {
        let mut c = FunctionContract::new("weird");
        c.add_evidence(Fact::NonNull(0), 0.92, "man:must-not-be-NULL");
        c.add_evidence(Fact::NullOk(0), 0.92, "man:may-be-NULL");
        let mut base = ContractBase { library: "x".into(), ..Default::default() };
        base.functions.insert("weird".into(), c);
        let f = lint_contracts(&base);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::ContradictoryFacts);
        assert_eq!(f[0].rule.severity(), "warning");
    }
}
