//! A running, linked application: the paper's Figure 1 at work. The
//! application calls C library functions by name; every call dispatches
//! through the linked image, i.e. through whatever wrapper was preloaded.

use simproc::{CVal, Fault, Proc, VirtAddr};

use crate::library::Executable;
use crate::loader::{LinkError, LinkedImage, Loader, System};

/// The runtime context handed to a simulated application's entry point.
#[derive(Debug)]
pub struct Session<'a> {
    proc: &'a mut Proc,
    image: &'a LinkedImage,
}

impl<'a> Session<'a> {
    /// Builds a session over a linked image.
    pub fn new(proc: &'a mut Proc, image: &'a LinkedImage) -> Self {
        Session { proc, image }
    }

    /// The simulated process.
    pub fn proc(&mut self) -> &mut Proc {
        self.proc
    }

    /// Calls an imported C library function by name — the PLT.
    ///
    /// # Errors
    ///
    /// Faults from the callee (or the wrapper containing it);
    /// [`Fault::Abort`] if the symbol was not in the import list.
    pub fn call(&mut self, symbol: &str, args: &[CVal]) -> Result<CVal, Fault> {
        match self.image.lookup(symbol) {
            Some(sym) => sym.binding.call(self.proc, args),
            None => {
                Err(Fault::abort(format!("call through unresolved PLT entry `{symbol}`")))
            }
        }
    }

    /// Convenience: places a NUL-terminated string and returns its
    /// address (stand-in for a string literal in the app's binary).
    pub fn literal(&mut self, s: &str) -> VirtAddr {
        self.proc.alloc_cstr_literal(s)
    }

    /// Convenience: a writable data buffer of `n` zeroed bytes (stand-in
    /// for a static buffer in the app's .bss).
    pub fn static_buf(&mut self, n: u64) -> VirtAddr {
        self.proc.alloc_data_zeroed(n)
    }

    /// Convenience: `malloc` through the (possibly wrapped) allocator.
    ///
    /// # Errors
    ///
    /// Faults from the allocator.
    pub fn malloc(&mut self, n: u64) -> Result<VirtAddr, Fault> {
        Ok(self.call("malloc", &[CVal::Int(n as i64)])?.as_ptr())
    }

    /// Reads a C string (host-side view, for assertions inside apps).
    pub fn read_str(&mut self, addr: VirtAddr) -> String {
        self.proc.read_cstr_lossy(addr)
    }
}

/// The outcome of running an application to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Exit status: `Ok(code)` from a clean return or `exit()`, or the
    /// fatal fault.
    pub status: Result<i32, Fault>,
    /// Captured stdout text.
    pub stdout: String,
    /// Whether the attacker's shell flag was set during the run.
    pub shell_spawned: bool,
    /// Cycles consumed.
    pub cycles: u64,
}

impl RunOutcome {
    /// `true` for a clean zero exit.
    pub fn success(&self) -> bool {
        matches!(self.status, Ok(0))
    }
}

/// Links and runs an executable on a fresh simulated process.
///
/// # Errors
///
/// [`LinkError`] if linking fails; runtime faults are reported inside
/// [`RunOutcome`], not as an `Err` (the process ran, then died).
pub fn run(
    loader: &Loader,
    system: &System,
    exe: &Executable,
) -> Result<RunOutcome, LinkError> {
    run_opts(loader, system, exe, None)
}

/// [`run`] for one member of a simulated fleet: the process is stamped
/// with `(instance, epoch, seed)` via [`Proc::set_fleet_identity`]
/// before the entry point runs. Wrappers that ship documents at `exit`
/// read the identity back and tag their submissions with it, and the
/// application itself can derive per-instance deterministic behaviour
/// from the triple.
///
/// # Errors
///
/// [`LinkError`] if linking fails; runtime faults are reported inside
/// [`RunOutcome`].
pub fn run_instance(
    loader: &Loader,
    system: &System,
    exe: &Executable,
    instance: u64,
    epoch: u64,
    seed: u64,
) -> Result<RunOutcome, LinkError> {
    run_opts(loader, system, exe, Some((instance, epoch, seed)))
}

fn run_opts(
    loader: &Loader,
    system: &System,
    exe: &Executable,
    identity: Option<(u64, u64, u64)>,
) -> Result<RunOutcome, LinkError> {
    let image = loader.load(system, exe)?;
    let mut proc = simlibc::setup::init_process();
    proc.kernel.root_privilege = exe.setuid_root;
    if let Some((instance, epoch, seed)) = identity {
        proc.set_fleet_identity(instance, epoch, seed);
    }
    let entry = exe.entry;
    let status = {
        let mut session = Session::new(&mut proc, &image);
        match entry(&mut session) {
            Ok(code) => Ok(code),
            Err(Fault::Exit(code)) => Ok(code),
            Err(fault) => Err(fault),
        }
    };
    Ok(RunOutcome {
        status,
        stdout: proc.kernel.stdout_text(),
        shell_spawned: proc.kernel.shell_spawned,
        cycles: proc.cycles(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Executable;

    fn hello_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let msg = s.literal("hello from the app");
        s.call("puts", &[CVal::Ptr(msg)])?;
        Ok(0)
    }

    fn hello_exe() -> Executable {
        Executable::new("hello", &["libsimc.so.1"], &["puts"], hello_entry)
    }

    #[test]
    fn runs_a_hello_world() {
        let system = System::standard();
        let out = run(&Loader::new(), &system, &hello_exe()).unwrap();
        assert!(out.success(), "{:?}", out.status);
        assert_eq!(out.stdout, "hello from the app\n");
        assert!(!out.shell_spawned);
        assert!(out.cycles > 0);
    }

    fn crasher_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        s.call("strlen", &[CVal::NULL])?;
        Ok(0)
    }

    #[test]
    fn app_crash_is_reported_in_outcome() {
        let system = System::standard();
        let exe = Executable::new("crasher", &["libsimc.so.1"], &["strlen"], crasher_entry);
        let out = run(&Loader::new(), &system, &exe).unwrap();
        assert!(matches!(out.status, Err(Fault::Segv { .. })));
    }

    fn exiter_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        s.call("exit", &[CVal::Int(7)])?;
        unreachable!("exit does not return");
    }

    #[test]
    fn exit_maps_to_status() {
        let system = System::standard();
        let exe = Executable::new("exiter", &["libsimc.so.1"], &["exit"], exiter_entry);
        let out = run(&Loader::new(), &system, &exe).unwrap();
        assert_eq!(out.status, Ok(7));
    }

    fn unresolved_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        s.call("not_imported", &[])?;
        Ok(0)
    }

    #[test]
    fn calling_unimported_symbol_aborts() {
        let system = System::standard();
        let exe = Executable::new("bad", &["libsimc.so.1"], &[], unresolved_entry);
        let out = run(&Loader::new(), &system, &exe).unwrap();
        assert!(matches!(out.status, Err(Fault::Abort { .. })));
    }

    fn setuid_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        assert!(s.proc().kernel.root_privilege);
        Ok(0)
    }

    #[test]
    fn setuid_marks_root() {
        let system = System::standard();
        let exe = Executable::new("rootd", &["libsimc.so.1"], &[], setuid_entry).setuid();
        let out = run(&Loader::new(), &system, &exe).unwrap();
        assert!(out.success());
    }

    fn malloc_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let buf = s.malloc(64)?;
        let msg = s.literal("data");
        s.call("strcpy", &[CVal::Ptr(buf), CVal::Ptr(msg)])?;
        assert_eq!(s.read_str(buf), "data");
        Ok(0)
    }

    #[test]
    fn session_helpers_work() {
        let system = System::standard();
        let exe = Executable::new(
            "alloc",
            &["libsimc.so.1"],
            &["malloc", "strcpy"],
            malloc_entry,
        );
        let out = run(&Loader::new(), &system, &exe).unwrap();
        assert!(out.success(), "{:?}", out.status);
    }
}
