//! Shared libraries and executables as the dynamic loader sees them.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use cdecl::Prototype;
use simproc::{CVal, Fault, Proc};

/// A callable binding: either a raw host function or a wrapper closure
/// around one (wrappers capture shared state — stats tables, canary
/// registries — so they are `Arc<dyn Fn>`).
#[derive(Clone)]
pub struct Binding(Arc<BindingFn>);

/// The callable shape shared by raw host functions and wrapper closures.
type BindingFn = dyn Fn(&mut Proc, &[CVal]) -> Result<CVal, Fault> + Send + Sync;

impl Binding {
    /// Wraps a callable.
    pub fn new(
        f: impl Fn(&mut Proc, &[CVal]) -> Result<CVal, Fault> + Send + Sync + 'static,
    ) -> Self {
        Binding(Arc::new(f))
    }

    /// Binds a plain host function.
    pub fn from_host(f: simproc::HostFn) -> Self {
        Binding(Arc::new(f))
    }

    /// Invokes the binding.
    ///
    /// # Errors
    ///
    /// Whatever the bound function faults with.
    pub fn call(&self, proc: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        (self.0)(proc, args)
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Binding(..)")
    }
}

/// One exported symbol of a shared library.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Parsed prototype.
    pub proto: Prototype,
    /// The callable behind it.
    pub binding: Binding,
}

/// A simulated shared library: a soname plus a symbol table.
#[derive(Debug, Clone)]
pub struct SharedLibrary {
    soname: String,
    symbols: BTreeMap<String, Symbol>,
}

impl SharedLibrary {
    /// Creates an empty library.
    pub fn new(soname: impl Into<String>) -> Self {
        SharedLibrary { soname: soname.into(), symbols: BTreeMap::new() }
    }

    /// The simulated C library (`libsimc.so.1`), with every symbol bound
    /// to its raw (unprotected) implementation.
    pub fn simlibc() -> Self {
        let mut lib = SharedLibrary::new(simlibc::LIB_NAME);
        for (sym, proto) in simlibc::symbols().iter().zip(simlibc::prototypes()) {
            lib.define(sym.name, proto, Binding::from_host(sym.imp));
        }
        lib
    }

    /// The simulated math library (`libsimm.so.1`).
    pub fn simmath() -> Self {
        let table = cdecl::TypedefTable::with_builtins();
        let mut lib = SharedLibrary::new(simlibc::math::MATH_LIB_NAME);
        for sym in simlibc::math::math_symbols() {
            let proto = cdecl::parse_prototype(sym.proto, &table).expect("math proto");
            lib.define(sym.name, proto, Binding::from_host(sym.imp));
        }
        lib
    }

    /// The library's soname.
    pub fn soname(&self) -> &str {
        &self.soname
    }

    /// Defines (or replaces) a symbol.
    pub fn define(&mut self, name: &str, proto: Prototype, binding: Binding) {
        self.symbols
            .insert(name.to_string(), Symbol { name: name.to_string(), proto, binding });
    }

    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// All symbol names, sorted.
    pub fn symbol_names(&self) -> Vec<&str> {
        self.symbols.keys().map(|s| s.as_str()).collect()
    }

    /// Number of exported symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` if the library exports nothing.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// All prototypes, sorted by name — the input to declaration files.
    pub fn prototypes(&self) -> Vec<Prototype> {
        self.symbols.values().map(|s| s.proto.clone()).collect()
    }
}

/// The entry point of a simulated application.
pub type AppEntry = fn(&mut crate::session::Session<'_>) -> Result<i32, Fault>;

/// A simulated executable: name, dependency list (`DT_NEEDED`), undefined
/// symbols (its PLT imports) and an entry point.
#[derive(Debug, Clone)]
pub struct Executable {
    /// Program name.
    pub name: String,
    /// Libraries the executable was linked against.
    pub needed: Vec<String>,
    /// Undefined symbols the loader must resolve.
    pub undefined: Vec<String>,
    /// Whether the program runs with root privilege (setuid).
    pub setuid_root: bool,
    /// The program body.
    pub entry: AppEntry,
}

impl Executable {
    /// Builds an executable description.
    pub fn new(
        name: impl Into<String>,
        needed: &[&str],
        undefined: &[&str],
        entry: AppEntry,
    ) -> Self {
        Executable {
            name: name.into(),
            needed: needed.iter().map(|s| s.to_string()).collect(),
            undefined: undefined.iter().map(|s| s.to_string()).collect(),
            setuid_root: false,
            entry,
        }
    }

    /// Marks the executable setuid-root (the §3.4 victim).
    pub fn setuid(mut self) -> Self {
        self.setuid_root = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simlibc_library_has_every_symbol() {
        let lib = SharedLibrary::simlibc();
        assert_eq!(lib.soname(), "libsimc.so.1");
        assert_eq!(lib.len(), simlibc::symbols().len());
        assert!(lib.symbol("strcpy").is_some());
        assert!(lib.symbol("frobnicate").is_none());
        assert!(!lib.is_empty());
        let names = lib.symbol_names();
        assert!(names.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn simmath_library_loads() {
        let lib = SharedLibrary::simmath();
        assert_eq!(lib.soname(), "libsimm.so.1");
        assert!(lib.symbol("mgcd").is_some());
        assert_eq!(lib.len(), 5);
    }

    #[test]
    fn binding_dispatches() {
        let lib = SharedLibrary::simlibc();
        let mut p = simlibc::setup::init_process();
        let s = p.alloc_cstr("four");
        let sym = lib.symbol("strlen").unwrap();
        let r = sym.binding.call(&mut p, &[CVal::Ptr(s)]).unwrap();
        assert_eq!(r, CVal::Int(4));
    }

    #[test]
    fn define_replaces() {
        let mut lib = SharedLibrary::new("test.so");
        let proto = cdecl::parse_prototype(
            "int answer(void);",
            &cdecl::TypedefTable::with_builtins(),
        )
        .unwrap();
        lib.define("answer", proto.clone(), Binding::new(|_, _| Ok(CVal::Int(1))));
        lib.define("answer", proto, Binding::new(|_, _| Ok(CVal::Int(42))));
        assert_eq!(lib.len(), 1);
        let mut p = simproc::Proc::new();
        let r = lib.symbol("answer").unwrap().binding.call(&mut p, &[]).unwrap();
        assert_eq!(r, CVal::Int(42));
    }

    fn dummy_entry(_s: &mut crate::session::Session<'_>) -> Result<i32, Fault> {
        Ok(0)
    }

    #[test]
    fn executable_description() {
        let exe =
            Executable::new("netd", &["libsimc.so.1"], &["strcpy", "malloc"], dummy_entry)
                .setuid();
        assert!(exe.setuid_root);
        assert_eq!(exe.needed, vec!["libsimc.so.1"]);
        assert_eq!(exe.undefined.len(), 2);
    }
}
