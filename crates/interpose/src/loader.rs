//! The dynamic link loader: symbol resolution with `LD_PRELOAD`
//! semantics. "On most Unix systems a user interested in using a wrapper
//! can preload it by defining the LD_PRELOAD environment variable ... a
//! system administrator can enable a wrapper on a system wide basis
//! through a dynamic link loader" (§2.1, Figure 1).

use std::collections::BTreeMap;
use std::fmt;

use crate::library::{Executable, SharedLibrary, Symbol};

/// The set of shared libraries installed on the simulated system —
/// what the §3.1 demo lists ("Our toolkit can list all libraries in the
/// system").
#[derive(Debug, Clone, Default)]
pub struct System {
    libraries: Vec<SharedLibrary>,
    /// Wrappers enabled system-wide by the administrator ("through a
    /// dynamic link loader", §2.1) — they interpose every load, after
    /// any per-process `LD_PRELOAD` entries.
    system_preload: Vec<SharedLibrary>,
}

impl System {
    /// An empty system.
    pub fn new() -> Self {
        System::default()
    }

    /// The standard simulated system: libc + libm.
    pub fn standard() -> Self {
        let mut s = System::new();
        s.install(SharedLibrary::simlibc());
        s.install(SharedLibrary::simmath());
        s
    }

    /// Installs a library (system-wide).
    pub fn install(&mut self, lib: SharedLibrary) {
        self.libraries.push(lib);
    }

    /// All installed libraries.
    pub fn libraries(&self) -> &[SharedLibrary] {
        &self.libraries
    }

    /// Finds a library by soname.
    pub fn library(&self, soname: &str) -> Option<&SharedLibrary> {
        self.libraries.iter().find(|l| l.soname() == soname)
    }

    /// Enables a wrapper system-wide: every subsequently loaded
    /// executable resolves symbols through it, regardless of its own
    /// `LD_PRELOAD`.
    pub fn enable_system_wide(&mut self, wrapper: SharedLibrary) {
        self.system_preload.push(wrapper);
    }

    /// The system-wide wrapper list.
    pub fn system_preloaded(&self) -> &[SharedLibrary] {
        &self.system_preload
    }
}

/// A link-time failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A `DT_NEEDED` library is not installed.
    MissingLibrary {
        /// The missing soname.
        soname: String,
    },
    /// An undefined symbol could not be resolved in any searched library.
    UnresolvedSymbol {
        /// The symbol name.
        symbol: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::MissingLibrary { soname } => {
                write!(f, "error while loading shared libraries: {soname}: cannot open")
            }
            LinkError::UnresolvedSymbol { symbol } => {
                write!(f, "undefined symbol: {symbol}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Where a symbol was resolved from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedFrom {
    /// soname of the providing library.
    pub library: String,
    /// `true` if the provider was a preloaded wrapper.
    pub preloaded: bool,
}

/// A fully linked process image: every undefined symbol bound.
#[derive(Debug, Clone)]
pub struct LinkedImage {
    /// The executable's name.
    pub name: String,
    bindings: BTreeMap<String, (Symbol, ResolvedFrom)>,
}

impl LinkedImage {
    /// The binding for `symbol`, if the executable imports it.
    pub fn lookup(&self, symbol: &str) -> Option<&Symbol> {
        self.bindings.get(symbol).map(|(s, _)| s)
    }

    /// Which library provided `symbol`.
    pub fn provider(&self, symbol: &str) -> Option<&ResolvedFrom> {
        self.bindings.get(symbol).map(|(_, p)| p)
    }

    /// All imported symbols, sorted.
    pub fn imports(&self) -> Vec<&str> {
        self.bindings.keys().map(|s| s.as_str()).collect()
    }
}

/// The loader: an ordered preload list (wrappers) ahead of the system
/// search path — `LD_PRELOAD` exactly.
#[derive(Debug, Clone, Default)]
pub struct Loader {
    preload: Vec<SharedLibrary>,
}

impl Loader {
    /// A loader with an empty preload list.
    pub fn new() -> Self {
        Loader::default()
    }

    /// Appends a wrapper library to `LD_PRELOAD`.
    pub fn preload(&mut self, wrapper: SharedLibrary) -> &mut Self {
        self.preload.push(wrapper);
        self
    }

    /// The current preload list.
    pub fn preloaded(&self) -> &[SharedLibrary] {
        &self.preload
    }

    /// Resolves one symbol: preload list first (in order), then the
    /// executable's `DT_NEEDED` libraries (in order).
    fn resolve(
        &self,
        system: &System,
        exe: &Executable,
        symbol: &str,
    ) -> Result<(Symbol, ResolvedFrom), LinkError> {
        for lib in self.preload.iter().chain(&system.system_preload) {
            if let Some(sym) = lib.symbol(symbol) {
                return Ok((
                    sym.clone(),
                    ResolvedFrom { library: lib.soname().to_string(), preloaded: true },
                ));
            }
        }
        for soname in &exe.needed {
            let lib = system
                .library(soname)
                .ok_or_else(|| LinkError::MissingLibrary { soname: soname.clone() })?;
            if let Some(sym) = lib.symbol(symbol) {
                return Ok((
                    sym.clone(),
                    ResolvedFrom { library: soname.clone(), preloaded: false },
                ));
            }
        }
        Err(LinkError::UnresolvedSymbol { symbol: symbol.to_string() })
    }

    /// Links an executable against the system, producing a runnable
    /// image.
    ///
    /// # Errors
    ///
    /// [`LinkError`] when a needed library or symbol is missing.
    pub fn load(
        &self,
        system: &System,
        exe: &Executable,
    ) -> Result<LinkedImage, LinkError> {
        // Missing NEEDED libraries fail even with no symbols to resolve.
        for soname in &exe.needed {
            if system.library(soname).is_none() {
                return Err(LinkError::MissingLibrary { soname: soname.clone() });
            }
        }
        let mut bindings = BTreeMap::new();
        for symbol in &exe.undefined {
            let resolved = self.resolve(system, exe, symbol)?;
            bindings.insert(symbol.clone(), resolved);
        }
        Ok(LinkedImage { name: exe.name.clone(), bindings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Binding;
    use simproc::{CVal, Fault};

    fn entry(_s: &mut crate::session::Session<'_>) -> Result<i32, Fault> {
        Ok(0)
    }

    fn sample_exe() -> Executable {
        Executable::new(
            "app",
            &["libsimc.so.1", "libsimm.so.1"],
            &["strlen", "mgcd"],
            entry,
        )
    }

    #[test]
    fn standard_system_lists_libraries() {
        let system = System::standard();
        let names: Vec<_> = system.libraries().iter().map(|l| l.soname()).collect();
        assert_eq!(names, vec!["libsimc.so.1", "libsimm.so.1"]);
        assert!(system.library("libsimc.so.1").is_some());
        assert!(system.library("libdoesnot.so").is_none());
    }

    #[test]
    fn plain_link_resolves_from_needed() {
        let system = System::standard();
        let image = Loader::new().load(&system, &sample_exe()).unwrap();
        assert_eq!(image.imports(), vec!["mgcd", "strlen"]);
        let from = image.provider("strlen").unwrap();
        assert_eq!(from.library, "libsimc.so.1");
        assert!(!from.preloaded);
        assert_eq!(image.provider("mgcd").unwrap().library, "libsimm.so.1");
    }

    #[test]
    fn preload_interposes() {
        let system = System::standard();
        let mut wrapper = SharedLibrary::new("libhealers_robust.so");
        let proto = simlibc::prototypes().into_iter().find(|p| p.name == "strlen").unwrap();
        wrapper.define("strlen", proto, Binding::new(|_, _| Ok(CVal::Int(-7))));
        let mut loader = Loader::new();
        loader.preload(wrapper);
        let image = loader.load(&system, &sample_exe()).unwrap();
        let from = image.provider("strlen").unwrap();
        assert!(from.preloaded);
        assert_eq!(from.library, "libhealers_robust.so");
        // mgcd is untouched by the wrapper — falls through to libm.
        assert!(!image.provider("mgcd").unwrap().preloaded);
        // And the interposed binding is the wrapper's.
        let mut p = simlibc::setup::init_process();
        let r = image.lookup("strlen").unwrap().binding.call(&mut p, &[]).unwrap();
        assert_eq!(r, CVal::Int(-7));
    }

    #[test]
    fn preload_order_first_wins() {
        let system = System::standard();
        let proto = simlibc::prototypes().into_iter().find(|p| p.name == "strlen").unwrap();
        let mut w1 = SharedLibrary::new("w1.so");
        w1.define("strlen", proto.clone(), Binding::new(|_, _| Ok(CVal::Int(1))));
        let mut w2 = SharedLibrary::new("w2.so");
        w2.define("strlen", proto, Binding::new(|_, _| Ok(CVal::Int(2))));
        let mut loader = Loader::new();
        loader.preload(w1).preload(w2);
        let image = loader.load(&system, &sample_exe()).unwrap();
        assert_eq!(image.provider("strlen").unwrap().library, "w1.so");
    }

    #[test]
    fn system_wide_wrapper_interposes_every_load() {
        let mut system = System::standard();
        let proto = simlibc::prototypes().into_iter().find(|p| p.name == "strlen").unwrap();
        let mut admin = SharedLibrary::new("libadmin_wrap.so");
        admin.define("strlen", proto.clone(), Binding::new(|_, _| Ok(CVal::Int(-99))));
        system.enable_system_wide(admin);
        assert_eq!(system.system_preloaded().len(), 1);

        // No per-process preload, yet the wrapper interposes.
        let image = Loader::new().load(&system, &sample_exe()).unwrap();
        assert_eq!(image.provider("strlen").unwrap().library, "libadmin_wrap.so");

        // Per-process LD_PRELOAD still takes precedence over the
        // system-wide entry.
        let mut user = SharedLibrary::new("libuser_wrap.so");
        user.define("strlen", proto, Binding::new(|_, _| Ok(CVal::Int(-1))));
        let mut loader = Loader::new();
        loader.preload(user);
        let image = loader.load(&system, &sample_exe()).unwrap();
        assert_eq!(image.provider("strlen").unwrap().library, "libuser_wrap.so");
    }

    #[test]
    fn missing_library_fails() {
        let system = System::new(); // nothing installed
        let err = Loader::new().load(&system, &sample_exe()).unwrap_err();
        assert!(matches!(err, LinkError::MissingLibrary { .. }));
        assert!(err.to_string().contains("cannot open"));
    }

    #[test]
    fn unresolved_symbol_fails() {
        let system = System::standard();
        let exe = Executable::new("bad", &["libsimc.so.1"], &["no_such_fn"], entry);
        let err = Loader::new().load(&system, &exe).unwrap_err();
        assert_eq!(err, LinkError::UnresolvedSymbol { symbol: "no_such_fn".into() });
    }
}
