//! # interpose — the dynamic-link loader simulation (paper §2.1, Figure 1)
//!
//! "Our software is implemented as a dynamically loadable C library
//! wrapper. The wrapper sits between an application and the C library. It
//! intercepts every C library function call from the application."
//!
//! This crate reproduces the mechanism:
//!
//! * [`SharedLibrary`] — sonames + symbol tables; [`Binding`]s can be raw
//!   host functions or wrapper closures;
//! * [`System`] — the installed library list (the §3.1 demo's "list all
//!   libraries in the system");
//! * [`Loader`] — `LD_PRELOAD` semantics: wrappers resolve first, in
//!   order, then the executable's `DT_NEEDED` chain;
//! * [`Executable`] / [`Session`] / [`run`] — simulated applications that
//!   call libc by name through the linked image, so a preloaded wrapper
//!   transparently intercepts them;
//! * [`inspect`] — the §3.2 application-centric demo (Figure 4).
//!
//! ```
//! use interpose::{Loader, System, Executable, Session};
//! use simproc::{CVal, Fault};
//!
//! fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
//!     let msg = s.literal("hi");
//!     s.call("puts", &[CVal::Ptr(msg)])?;
//!     Ok(0)
//! }
//!
//! let system = System::standard();
//! let exe = Executable::new("hi", &["libsimc.so.1"], &["puts"], entry);
//! let out = interpose::run(&Loader::new(), &system, &exe).unwrap();
//! assert_eq!(out.stdout, "hi\n");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod inspect;
mod library;
mod loader;
mod session;

pub use inspect::{inspect, render as render_app_info, to_xml as app_info_xml, AppInfo};
pub use library::{AppEntry, Binding, Executable, SharedLibrary, Symbol};
pub use loader::{LinkError, LinkedImage, Loader, ResolvedFrom, System};
pub use session::{run, run_instance, RunOutcome, Session};
