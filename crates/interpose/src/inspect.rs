//! Application inspection — the §3.2 demo and Figure 4: "Our toolkit can
//! automatically extract the list of libraries linked to this application
//! as well as the list of undefined functions in the application."

use std::fmt::Write as _;

use cdecl::xml::XmlWriter;

use crate::library::Executable;
use crate::loader::System;

/// What inspection found for one executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppInfo {
    /// Program name.
    pub name: String,
    /// `(soname, installed?)` for each `DT_NEEDED` entry.
    pub libraries: Vec<(String, bool)>,
    /// `(symbol, providing library if any)` for each undefined symbol.
    pub undefined: Vec<(String, Option<String>)>,
    /// Whether the program is setuid root (drives wrapper choice:
    /// security wrapper for root processes, per Figure 1).
    pub setuid_root: bool,
}

/// Inspects an executable against a system's library list.
pub fn inspect(system: &System, exe: &Executable) -> AppInfo {
    let libraries = exe
        .needed
        .iter()
        .map(|soname| (soname.clone(), system.library(soname).is_some()))
        .collect();
    let undefined = exe
        .undefined
        .iter()
        .map(|symbol| {
            let provider = exe
                .needed
                .iter()
                .find(|soname| {
                    system
                        .library(soname)
                        .map(|l| l.symbol(symbol).is_some())
                        .unwrap_or(false)
                })
                .cloned();
            (symbol.clone(), provider)
        })
        .collect();
    AppInfo { name: exe.name.clone(), libraries, undefined, setuid_root: exe.setuid_root }
}

/// Renders the Figure-4 style listing.
pub fn render(info: &AppInfo) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Application: {}{}",
        info.name,
        if info.setuid_root { "  (setuid root)" } else { "" }
    );
    let _ = writeln!(out, "Linked libraries:");
    for (soname, installed) in &info.libraries {
        let _ =
            writeln!(out, "  {} {}", soname, if *installed { "" } else { "(NOT FOUND)" });
    }
    let _ = writeln!(out, "Undefined functions:");
    for (symbol, provider) in &info.undefined {
        match provider {
            Some(lib) => {
                let _ = writeln!(out, "  {symbol:<16} -> {lib}");
            }
            None => {
                let _ = writeln!(out, "  {symbol:<16} -> UNRESOLVED");
            }
        }
    }
    out
}

/// The XML form of the listing (every demo artefact is also a document).
pub fn to_xml(info: &AppInfo) -> String {
    let mut w = XmlWriter::new();
    w.open(
        "application",
        &[
            ("name", info.name.as_str()),
            ("setuid-root", if info.setuid_root { "true" } else { "false" }),
        ],
    );
    for (soname, installed) in &info.libraries {
        w.leaf(
            "library",
            &[("soname", soname), ("installed", if *installed { "true" } else { "false" })],
        );
    }
    for (symbol, provider) in &info.undefined {
        match provider {
            Some(lib) => w.leaf("undefined", &[("symbol", symbol), ("provider", lib)]),
            None => w.leaf("undefined", &[("symbol", symbol)]),
        }
    }
    w.close();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::Fault;

    fn entry(_s: &mut crate::session::Session<'_>) -> Result<i32, Fault> {
        Ok(0)
    }

    fn exe() -> Executable {
        Executable::new(
            "wordcount",
            &["libsimc.so.1", "libsimm.so.1", "libmissing.so.9"],
            &["strtok", "mgcd", "mystery_fn"],
            entry,
        )
        .setuid()
    }

    #[test]
    fn inspection_finds_providers_and_gaps() {
        let system = System::standard();
        let info = inspect(&system, &exe());
        assert_eq!(
            info.libraries,
            vec![
                ("libsimc.so.1".to_string(), true),
                ("libsimm.so.1".to_string(), true),
                ("libmissing.so.9".to_string(), false),
            ]
        );
        assert_eq!(info.undefined[0], ("strtok".to_string(), Some("libsimc.so.1".into())));
        assert_eq!(info.undefined[1], ("mgcd".to_string(), Some("libsimm.so.1".into())));
        assert_eq!(info.undefined[2], ("mystery_fn".to_string(), None));
        assert!(info.setuid_root);
    }

    #[test]
    fn rendering_mentions_everything() {
        let system = System::standard();
        let text = render(&inspect(&system, &exe()));
        assert!(text.contains("wordcount"));
        assert!(text.contains("setuid root"));
        assert!(text.contains("libsimc.so.1"));
        assert!(text.contains("NOT FOUND"));
        assert!(text.contains("UNRESOLVED"));
        assert!(text.contains("strtok"));
    }

    #[test]
    fn xml_form() {
        let system = System::standard();
        let xml = to_xml(&inspect(&system, &exe()));
        assert!(xml.contains("<application name=\"wordcount\""));
        assert!(xml.contains("installed=\"false\""));
        assert!(xml.contains("provider=\"libsimm.so.1\""));
    }
}
