//! `substitute`: the safer-variant micro-generator. Where the analyzer's
//! flow-sensitive substitution analysis proved the rewrite sound (a
//! [`SubstitutionPlan`] with its discharged proof), the fragile call is
//! rerouted to a bounded variant clipped to the oracle's *exact* extent
//! answer ([`guardian::GuardOracle`]'s `extent_right`):
//!
//! * `strcpy(dst, src)`  → bounded copy of `min(strlen(src), extent-1)`;
//! * `strcat(dst, src)`  → bounded append within the remaining extent;
//! * `sprintf(dst, ...)` → `snprintf(dst, extent, ...)`.
//!
//! The overflow is thereby *prevented*, not canary-detected: the process
//! keeps running with a clipped (journaled, [`HealAction::Prevented`])
//! write instead of being terminated after the fact. In-contract calls
//! are byte-for-byte identical to the unsubstituted library — `snprintf`
//! returns the full rendered length exactly as `sprintf` does, and a
//! source that fits is copied whole — which is what the same-seed
//! divergence gate in the injector's substitution trial checks.

use std::sync::Arc;

use cdecl::CType;
use guardian::GuardOracle;
use profiler::{HealAction, HealEvent, HealingJournal};
use simproc::{CVal, ExtentOracle, VirtAddr};
use typelattice::{peek_cstr_len, SafePred, SubstFamily, SubstitutionPlan};

use crate::codegen::{CodegenCx, MicroGen};
use crate::runtime::{reject, CallCx, Hook, HookAction, HookOp};

/// Runtime hook carrying one proven substitution plan. Always dynamic:
/// the rewrite consults the extent oracle and performs the bounded write
/// itself, short-circuiting the fragile original entirely.
#[derive(Debug)]
pub struct SubstituteHook {
    plan: SubstitutionPlan,
    oracle: GuardOracle,
    journal: Arc<HealingJournal>,
    ret: CType,
}

impl SubstituteHook {
    /// Builds the hook from a proven plan.
    pub fn new(
        plan: SubstitutionPlan,
        oracle: GuardOracle,
        journal: Arc<HealingJournal>,
        ret: CType,
    ) -> Self {
        SubstituteHook { plan, oracle, journal, ret }
    }

    /// The plan this hook enforces.
    pub fn plan(&self) -> &SubstitutionPlan {
        &self.plan
    }

    fn journal_prevented(&self, cx: &CallCx<'_>, detail: String) {
        self.journal.record(HealEvent {
            func: cx.func.to_string(),
            arg: Some(self.plan.dst_arg),
            violation: format!("write exceeds extent_right(arg{})", self.plan.dst_arg + 1),
            class: "overflow".into(),
            action: HealAction::Prevented,
            detail,
        });
    }

    fn journal_contained(&self, cx: &CallCx<'_>, detail: &str) {
        self.journal.record(HealEvent {
            func: cx.func.to_string(),
            arg: Some(self.plan.dst_arg),
            violation: "substitution precondition unmeasurable".into(),
            class: "overflow".into(),
            action: HealAction::Contained,
            detail: detail.into(),
        });
    }

    /// `strcpy`: copy `min(strlen(src), extent-1)` bytes plus NUL.
    fn strcpy(&self, cx: &mut CallCx<'_>) -> HookAction {
        let dst = cx.args[0].as_ptr();
        let src = cx.args[1].as_ptr();
        let Some(len) = peek_cstr_len(cx.proc, src) else {
            self.journal_contained(cx, "source is not a measurable C string");
            return reject(cx.proc, &self.ret);
        };
        let Some(ext) = self.oracle.extent_right(cx.proc, dst) else {
            self.journal_contained(cx, "destination has no writable extent");
            return reject(cx.proc, &self.ret);
        };
        let n = len.min(ext.saturating_sub(1));
        match self.bounded_copy(cx, src, dst, n) {
            Ok(()) => {}
            Err(detail) => {
                self.journal_contained(cx, &detail);
                return reject(cx.proc, &self.ret);
            }
        }
        if n < len {
            self.journal_prevented(
                cx,
                format!("strcpy clipped to {n} of {len} bytes (extent_right(dst) = {ext})"),
            );
        }
        HookAction::ShortCircuit(CVal::Ptr(dst))
    }

    /// `strcat`: append within `extent - strlen(dst) - 1`.
    fn strcat(&self, cx: &mut CallCx<'_>) -> HookAction {
        let dst = cx.args[0].as_ptr();
        let src = cx.args[1].as_ptr();
        let Some(len) = peek_cstr_len(cx.proc, src) else {
            self.journal_contained(cx, "source is not a measurable C string");
            return reject(cx.proc, &self.ret);
        };
        let Some(ext) = self.oracle.extent_right(cx.proc, dst) else {
            self.journal_contained(cx, "destination has no writable extent");
            return reject(cx.proc, &self.ret);
        };
        // The destination must itself terminate within its extent, or
        // the append has no legal anchor.
        let Some(dpos) = peek_cstr_len(cx.proc, dst).filter(|l| *l < ext) else {
            self.journal_contained(cx, "destination is not NUL-terminated in extent");
            return reject(cx.proc, &self.ret);
        };
        let avail = (ext - dpos).saturating_sub(1);
        let n = len.min(avail);
        match self.bounded_copy(cx, src, dst.add(dpos), n) {
            Ok(()) => {}
            Err(detail) => {
                self.journal_contained(cx, &detail);
                return reject(cx.proc, &self.ret);
            }
        }
        if n < len {
            self.journal_prevented(
                cx,
                format!(
                    "strcat clipped to {n} of {len} bytes \
                     (extent_right(dst) = {ext}, strlen(dst) = {dpos})"
                ),
            );
        }
        HookAction::ShortCircuit(CVal::Ptr(dst))
    }

    /// `sprintf`: delegate to the library's own `snprintf` with the
    /// oracle's exact extent as the bound. `snprintf` returns the full
    /// rendered length exactly as `sprintf` does, so the return value is
    /// identical even when the write is clipped.
    fn sprintf(&self, cx: &mut CallCx<'_>) -> HookAction {
        let dst = cx.args[0].as_ptr();
        let Some(ext) = self.oracle.extent_right(cx.proc, dst) else {
            self.journal_contained(cx, "destination has no writable extent");
            return reject(cx.proc, &self.ret);
        };
        let mut bounded = Vec::with_capacity(cx.args.len() + 1);
        bounded.push(cx.args[0]);
        bounded.push(CVal::Int(ext as i64));
        bounded.extend_from_slice(&cx.args[1..]);
        match simlibc::stdio::snprintf(cx.proc, &bounded) {
            Ok(ret) => {
                let rendered = ret.as_int().max(0) as u64;
                if rendered >= ext {
                    self.journal_prevented(
                        cx,
                        format!(
                            "sprintf rendered {rendered} bytes, clipped to \
                             {} (extent_right(dst) = {ext})",
                            ext.saturating_sub(1)
                        ),
                    );
                }
                HookAction::ShortCircuit(ret)
            }
            // A format-path fault (bad fmt pointer, wild vararg string)
            // propagates exactly as the fragile original would raise it.
            Err(fault) => HookAction::Deny(fault),
        }
    }

    fn bounded_copy(
        &self,
        cx: &mut CallCx<'_>,
        src: VirtAddr,
        dst: VirtAddr,
        n: u64,
    ) -> Result<(), String> {
        let bytes =
            cx.proc.read_bytes(src, n).map_err(|f| format!("source unreadable: {f}"))?;
        cx.proc
            .write_bytes(dst, &bytes)
            .and_then(|()| cx.proc.write_u8(dst.add(n), 0))
            .map_err(|f| format!("destination unwritable: {f}"))
    }
}

impl Hook for SubstituteHook {
    fn name(&self) -> &'static str {
        "substitute"
    }

    fn provenance(&self) -> &str {
        "analysis"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        let dst = self.plan.dst_arg;
        let src = self.plan.src_arg;
        vec![
            HookOp::Check {
                arg: src,
                pred: Some(SafePred::CStr),
                label: "measure source length".into(),
                null_guarded: true,
                memoized: false,
            },
            HookOp::Check {
                arg: dst,
                pred: Some(SafePred::Writable(1)),
                label: "extent_right(dst)".into(),
                null_guarded: true,
                memoized: false,
            },
            HookOp::Mutate { arg: dst, label: self.plan.family.variant().into() },
        ]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        match self.plan.family {
            SubstFamily::Strcpy => self.strcpy(cx),
            SubstFamily::Strcat => self.strcat(cx),
            SubstFamily::Sprintf => self.sprintf(cx),
        }
    }
}

/// Codegen twin of [`SubstituteHook`]: the C fragment a real deployment
/// would compile in place of the fragile call.
#[derive(Debug, Clone)]
pub struct SubstituteGen {
    /// The plan the emitted fragment enforces.
    pub plan: SubstitutionPlan,
}

impl MicroGen for SubstituteGen {
    fn name(&self) -> &'static str {
        "substitute"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out = vec![format!(
            "  /* proven substitution: {} -> {} */",
            self.plan.func,
            self.plan.family.variant()
        )];
        let dst = cx
            .proto
            .params
            .get(self.plan.dst_arg)
            .map(|p| p.display_name(self.plan.dst_arg))
            .unwrap_or_else(|| format!("a{}", self.plan.dst_arg + 1));
        out.push(format!("  size_t __ext = healers_extent_right({dst});"));
        match self.plan.family {
            SubstFamily::Strcpy => {
                out.push(format!("  return healers_bounded_strcpy({dst}, src, __ext);"));
            }
            SubstFamily::Strcat => {
                out.push(format!("  return healers_bounded_strcat({dst}, src, __ext);"));
            }
            SubstFamily::Sprintf => {
                out.push(format!(
                    "  return vsnprintf({dst}, __ext, format, __healers_va);"
                ));
            }
        }
        out
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardian::CanaryRegistry;
    use simlibc::heap;
    use simlibc::testutil::libc_proc;
    use typelattice::{ExtentClass, ProofStep};

    fn plan(family: SubstFamily) -> SubstitutionPlan {
        SubstitutionPlan {
            func: family.func().into(),
            family,
            dst_arg: 0,
            src_arg: 1,
            dst_extent: ExtentClass::ExactExtent,
            proof: vec![ProofStep {
                obligation: "test".into(),
                discharged_by: "fixture".into(),
            }],
        }
    }

    fn hook(family: SubstFamily) -> (SubstituteHook, Arc<HealingJournal>) {
        let journal = Arc::new(HealingJournal::new());
        let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
        let ret = simlibc::prototypes()
            .into_iter()
            .find(|pr| pr.name == family.func())
            .expect("family function is in simlibc")
            .ret;
        (SubstituteHook::new(plan(family), oracle, Arc::clone(&journal), ret), journal)
    }

    fn call(
        h: &SubstituteHook,
        p: &mut simproc::Proc,
        func: &str,
        args: Vec<CVal>,
    ) -> HookAction {
        let mut cx = CallCx {
            func,
            proc: p,
            args,
            errno_before: 0,
            entry_cycles: 0,
            scratch: Vec::new(),
        };
        h.before(&mut cx)
    }

    #[test]
    fn in_bounds_strcpy_is_byte_identical() {
        let (h, journal) = hook(SubstFamily::Strcpy);
        let mut p = libc_proc();
        let dst = heap::malloc(&mut p, 16).unwrap();
        let src = p.alloc_cstr("hello");
        let act = call(&h, &mut p, "strcpy", vec![CVal::Ptr(dst), CVal::Ptr(src)]);
        assert_eq!(act, HookAction::ShortCircuit(CVal::Ptr(dst)));
        assert_eq!(p.read_cstr_lossy(dst), "hello");
        assert!(journal.is_empty(), "in-bounds copies journal nothing");
    }

    #[test]
    fn overflowing_strcpy_is_clipped_and_journaled() {
        let (h, journal) = hook(SubstFamily::Strcpy);
        let mut p = libc_proc();
        let dst = heap::malloc(&mut p, 8).unwrap();
        let ext = h.oracle.extent_right(&p, dst).unwrap();
        let src = p.alloc_cstr(&"X".repeat(64));
        let act = call(&h, &mut p, "strcpy", vec![CVal::Ptr(dst), CVal::Ptr(src)]);
        assert_eq!(act, HookAction::ShortCircuit(CVal::Ptr(dst)));
        let copied = p.read_cstr_lossy(dst);
        assert_eq!(copied.len() as u64, ext - 1, "clipped to extent minus NUL");
        let events = journal.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, HealAction::Prevented);
        assert!(events[0].detail.contains("clipped"), "{:?}", events[0]);
    }

    #[test]
    fn strcat_appends_within_the_extent() {
        let (h, journal) = hook(SubstFamily::Strcat);
        let mut p = libc_proc();
        let dst = heap::malloc(&mut p, 8).unwrap();
        p.write_cstr(dst, b"ab").unwrap();
        let src = p.alloc_cstr("cd");
        let act = call(&h, &mut p, "strcat", vec![CVal::Ptr(dst), CVal::Ptr(src)]);
        assert_eq!(act, HookAction::ShortCircuit(CVal::Ptr(dst)));
        assert_eq!(p.read_cstr_lossy(dst), "abcd");
        assert!(journal.is_empty());
        // Overlong append clips at the extent and journals Prevented.
        let big = p.alloc_cstr(&"Y".repeat(64));
        call(&h, &mut p, "strcat", vec![CVal::Ptr(dst), CVal::Ptr(big)]);
        let ext = h.oracle.extent_right(&p, dst).unwrap();
        assert_eq!(p.read_cstr_lossy(dst).len() as u64, ext - 1);
        let events = journal.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, HealAction::Prevented);
    }

    #[test]
    fn sprintf_returns_the_full_rendered_length_even_when_clipped() {
        let (h, journal) = hook(SubstFamily::Sprintf);
        let mut p = libc_proc();
        let dst = heap::malloc(&mut p, 8).unwrap();
        let ext = h.oracle.extent_right(&p, dst).unwrap();
        let fmt = p.alloc_cstr("%s");
        let long = p.alloc_cstr(&"Z".repeat(40));
        let act = call(
            &h,
            &mut p,
            "sprintf",
            vec![CVal::Ptr(dst), CVal::Ptr(fmt), CVal::Ptr(long)],
        );
        // sprintf's contract: return the FULL rendered length.
        assert_eq!(act, HookAction::ShortCircuit(CVal::Int(40)));
        assert_eq!(p.read_cstr_lossy(dst).len() as u64, ext - 1, "write clipped");
        let events = journal.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, HealAction::Prevented);
    }

    #[test]
    fn unmeasurable_preconditions_reject_gracefully() {
        let (h, journal) = hook(SubstFamily::Strcpy);
        let mut p = libc_proc();
        let dst = heap::malloc(&mut p, 8).unwrap();
        // NULL source: no measurable string.
        let act = call(&h, &mut p, "strcpy", vec![CVal::Ptr(dst), CVal::NULL]);
        assert_eq!(act, HookAction::ShortCircuit(CVal::NULL));
        assert_eq!(p.errno(), simproc::errno::EINVAL);
        // Wild destination: no extent.
        let src = p.alloc_cstr("hi");
        let act = call(
            &h,
            &mut p,
            "strcpy",
            vec![CVal::Ptr(simproc::layout::WILD_ADDR), CVal::Ptr(src)],
        );
        assert_eq!(act, HookAction::ShortCircuit(CVal::NULL));
        let events = journal.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.action == HealAction::Contained));
    }
}
