//! The context-aware failure-oblivious engine (the availability mode).
//!
//! Classic failure-oblivious computing discards invalid writes and
//! manufactures values for invalid reads. The stub version of
//! [`crate::Policy::Oblivious`] returned one containment value for every
//! violation — context-free, and indistinguishable from a graceful
//! error. This module replaces it with a *context-selected* response per
//! `(function, argument role, violation class)`:
//!
//! * **read-role violations** (C-string scans, bounded buffer reads)
//!   are answered as if the input were empty — `0` for counts, NULL (or
//!   a manufactured pointer to an empty string, when a static contract
//!   says the function tolerates NULL inputs) for pointers;
//! * **write-role violations** (string copies, bounded buffer writes,
//!   frees through bad chunks) suppress the call and report success,
//!   while the write that did *not* happen is measured and attributed to
//!   the precise object it would have corrupted via
//!   [`GuardOracle::object_region`] — the shadow-write ledger entry;
//! * anything else falls back to the classic containment value, with
//!   `errno` left untouched (obliviousness never reports an error).
//!
//! Every decision is described by an [`ObliviousOutcome`] so the hook
//! layer can journal it and feed the [`profiler::ObliviousAudit`]
//! ledgers — nothing this engine does is silent.

use std::collections::BTreeSet;

use cdecl::CType;
use guardian::GuardOracle;
use profiler::ShadowWrite;
use simproc::{CVal, Proc};
use typelattice::{peek_cstr_len, SafePred};

use crate::policy::ViolationClass;
use crate::runtime::containment_value;

/// Everything needed to select an oblivious response for one violated
/// predicate, minus the mutable process state.
#[derive(Debug)]
pub struct ObliviousCx<'a> {
    /// The wrapped function.
    pub func: &'a str,
    /// Zero-based index of the violated argument.
    pub arg: usize,
    /// The violated robust-type predicate.
    pub pred: &'a SafePred,
    /// The violation class the policy engine resolved.
    pub class: ViolationClass,
    /// The wrapped function's return type.
    pub ret: &'a CType,
    /// Functions whose static contract marks the violated input as
    /// NULL-tolerant — for these, a pointer-returning C-string scan
    /// manufactures an empty string instead of NULL.
    pub null_defaults: &'a BTreeSet<String>,
}

/// The engine's decision for one violation: what to return, how to tag
/// it, and what (if anything) goes into the shadow-write ledger.
#[derive(Debug)]
pub struct ObliviousOutcome {
    /// The value the wrapper returns instead of calling the original.
    pub ret: CVal,
    /// The argument role that selected the value (`cstr-scan`,
    /// `buf-len-read`, `contract-default`, `oob-write`, ...).
    pub role: &'static str,
    /// Human-readable account of what was absorbed.
    pub detail: String,
    /// The suppressed write, when the violated predicate guarded a
    /// write destination.
    pub write: Option<ShadowWrite>,
    /// A manufactured non-zero value to track for downstream taint
    /// consumption (a manufactured pointer; zero values are never
    /// tracked).
    pub taint: Option<u64>,
}

/// Whether `pred` guards a *write* destination — the same partition the
/// security wrapper uses to pick enforceable contracts.
fn write_role(pred: &SafePred) -> bool {
    match pred {
        SafePred::Writable(_)
        | SafePred::HoldsCStrOf { .. }
        | SafePred::WritableAtLeastArg { .. }
        | SafePred::WritableAtLeastProduct { .. }
        | SafePred::SizeFitsWritable { .. }
        | SafePred::HeapChunkOrNull => true,
        SafePred::NullOr(inner) => write_role(inner),
        _ => false,
    }
}

/// Whether `pred` guards a *read* of caller memory.
fn read_role(pred: &SafePred) -> bool {
    match pred {
        SafePred::CStr
        | SafePred::PtrToCStrOrNull
        | SafePred::Readable(_)
        | SafePred::ReadableAtLeastArg { .. }
        | SafePred::ReadableAtLeastProduct { .. }
        | SafePred::SizeFitsReadable { .. } => true,
        SafePred::NullOr(inner) => read_role(inner),
        _ => false,
    }
}

/// Whether the read the predicate guards is a C-string scan (vs a
/// length-bounded buffer read).
fn cstr_role(pred: &SafePred) -> bool {
    match pred {
        SafePred::CStr | SafePred::PtrToCStrOrNull => true,
        SafePred::NullOr(inner) => cstr_role(inner),
        _ => false,
    }
}

/// `(destination argument index, bytes the call would have written)` for
/// a violated write-role predicate. The byte count is the *attempted*
/// extent, measured from the arguments the caller actually passed; `0`
/// when the predicate gives no way to measure it.
fn write_extent(pred: &SafePred, arg: usize, args: &[CVal], proc: &Proc) -> (usize, u64) {
    match pred {
        SafePred::HoldsCStrOf { src } => {
            let len = args
                .get(*src)
                .and_then(|v| peek_cstr_len(proc, v.as_ptr()))
                .map(|l| l + 1) // the copy includes the terminator
                .unwrap_or(0);
            (arg, len)
        }
        SafePred::Writable(n) => (arg, *n),
        SafePred::WritableAtLeastArg { size, elem } => {
            (arg, args.get(*size).map(|v| v.as_usize()).unwrap_or(0).saturating_mul(*elem))
        }
        SafePred::WritableAtLeastProduct { a, b } => {
            let a = args.get(*a).map(|v| v.as_usize()).unwrap_or(0);
            let b = args.get(*b).map(|v| v.as_usize()).unwrap_or(0);
            (arg, a.saturating_mul(b))
        }
        SafePred::SizeFitsWritable { ptr, elem } => {
            // The violated argument is the *size*; the destination is the
            // pointer argument the relation names.
            (*ptr, args.get(arg).map(|v| v.as_usize()).unwrap_or(0).saturating_mul(*elem))
        }
        SafePred::NullOr(inner) => write_extent(inner, arg, args, proc),
        // A write through a non-chunk (double free, stale pointer): the
        // write is metadata-sized and unmeasurable from the arguments.
        _ => (arg, 0),
    }
}

/// The as-if-empty value for a manufactured read: the result the
/// function would produce on an empty input.
fn empty_value(ret: &CType) -> CVal {
    match ret {
        CType::Void => CVal::Void,
        CType::Ptr { .. } | CType::FuncPtr { .. } | CType::Array { .. } => CVal::NULL,
        CType::Float | CType::Double => CVal::F64(0.0),
        _ => CVal::Int(0),
    }
}

/// The value an oblivious wrapper substitutes when the *original* (not a
/// check) faults mid-call: report the call complete with an as-if-empty
/// result, `errno` untouched.
pub fn oblivious_fault_value(ret: &CType) -> CVal {
    empty_value(ret)
}

/// Selects the context-aware oblivious response for one violated
/// predicate. Needs the process mutably only to manufacture storage for
/// contract-derived default values (an empty string a NULL-tolerant
/// C-string scan can safely consume).
pub fn oblivious_outcome(
    cx: &ObliviousCx<'_>,
    proc: &mut Proc,
    oracle: &GuardOracle,
    args: &[CVal],
) -> ObliviousOutcome {
    let pred = cx.pred;
    if write_role(pred) {
        let (dest_idx, attempted) = write_extent(pred, cx.arg, args, proc);
        let dest = args.get(dest_idx).copied().unwrap_or(CVal::NULL).as_ptr();
        let region = oracle.object_region(proc, dest);
        let (base, extent) = region.map(|(b, e)| (b.get(), e)).unwrap_or((0, 0));
        let addr = dest.get();
        let avail = if addr >= base && addr < base.saturating_add(extent) {
            base.saturating_add(extent) - addr
        } else {
            0
        };
        let clipped = attempted.saturating_sub(avail);
        let detail = format!(
            "oblivious write suppression: {attempted} byte(s) to {addr:#x} \
             discarded ({clipped} outside the {extent}-byte object at {base:#x})"
        );
        // Report success: a pointer-returning writer hands back the
        // caller's own destination, counts report zero bytes written.
        let ret = match cx.ret {
            CType::Ptr { .. } if !dest.is_null() => CVal::Ptr(dest),
            other => empty_value(other),
        };
        return ObliviousOutcome {
            ret,
            role: "oob-write",
            detail: detail.clone(),
            write: Some(ShadowWrite {
                func: cx.func.to_string(),
                arg: Some(dest_idx),
                addr,
                object_base: base,
                object_extent: extent,
                attempted,
                clipped,
                detail,
            }),
            taint: None,
        };
    }
    if read_role(pred) {
        if cstr_role(pred) {
            // NUL byte for C-string scans: the violated string reads as
            // empty. Pointer-returning scanners whose static contract
            // marks the input NULL-tolerant get a *manufactured* empty
            // string (a real NUL byte, so downstream scans of the result
            // stay in bounds) — and that pointer is tainted.
            if matches!(cx.ret, CType::Ptr { .. }) && cx.null_defaults.contains(cx.func) {
                let fabricated = proc.alloc_cstr("");
                return ObliviousOutcome {
                    ret: CVal::Ptr(fabricated),
                    role: "contract-default",
                    detail: format!(
                        "contract-derived default: manufactured empty string at {:#x} \
                         for a NULL-tolerant scan",
                        fabricated.get()
                    ),
                    write: None,
                    taint: Some(fabricated.get()),
                };
            }
            return ObliviousOutcome {
                ret: empty_value(cx.ret),
                role: "cstr-scan",
                detail: "oblivious read: unterminated/invalid string scanned as empty"
                    .to_string(),
                write: None,
                taint: None,
            };
        }
        return ObliviousOutcome {
            ret: empty_value(cx.ret),
            role: "buf-len-read",
            detail: "oblivious read: out-of-bounds buffer read answered as zero-length"
                .to_string(),
            write: None,
            taint: None,
        };
    }
    // No memory role (bad FILE*, integer domain, wild function pointer):
    // nothing to manufacture from context — classic containment value,
    // but errno stays untouched (oblivious never reports an error).
    ObliviousOutcome {
        ret: containment_value(cx.ret),
        role: "containment-fallback",
        detail: format!("no oblivious context for {} violation, contained", cx.class.tag()),
        write: None,
        taint: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use guardian::CanaryRegistry;
    use simlibc::testutil::libc_proc;
    use std::sync::Arc;

    fn ret_of(proto: &str) -> CType {
        parse_prototype(proto, &TypedefTable::with_builtins()).unwrap().ret
    }

    fn oracle() -> GuardOracle {
        GuardOracle::new(Arc::new(CanaryRegistry::new()))
    }

    #[test]
    fn cstr_scan_reads_as_empty() {
        let mut p = libc_proc();
        let defaults = BTreeSet::new();
        let cx = ObliviousCx {
            func: "strlen",
            arg: 0,
            pred: &SafePred::CStr,
            class: ViolationClass::NullPointer,
            ret: &ret_of("size_t strlen(const char *s);"),
            null_defaults: &defaults,
        };
        let out = oblivious_outcome(&cx, &mut p, &oracle(), &[CVal::NULL]);
        assert_eq!(out.ret, CVal::Int(0), "strlen of a manufactured empty string");
        assert_eq!(out.role, "cstr-scan");
        assert!(out.write.is_none());
    }

    #[test]
    fn contract_default_manufactures_a_real_empty_string() {
        let mut p = libc_proc();
        let defaults: BTreeSet<String> = ["strstr".to_string()].into();
        let cx = ObliviousCx {
            func: "strstr",
            arg: 0,
            pred: &SafePred::CStr,
            class: ViolationClass::NullPointer,
            ret: &ret_of("char *strstr(const char *h, const char *n);"),
            null_defaults: &defaults,
        };
        let out = oblivious_outcome(&cx, &mut p, &oracle(), &[CVal::NULL, CVal::NULL]);
        let fabricated = out.ret.as_ptr();
        assert!(!fabricated.is_null(), "a real pointer, not NULL");
        assert_eq!(p.read_cstr_lossy(fabricated), "", "points at a NUL byte");
        assert_eq!(out.taint, Some(fabricated.get()), "manufactured pointers are tainted");
        assert_eq!(out.role, "contract-default");
    }

    #[test]
    fn oob_write_is_suppressed_measured_and_attributed() {
        let mut p = libc_proc();
        let dest = simlibc::heap::malloc(&mut p, 8).unwrap();
        let src = p.alloc_cstr(&"A".repeat(40));
        let defaults = BTreeSet::new();
        let pred = SafePred::HoldsCStrOf { src: 1 };
        let cx = ObliviousCx {
            func: "strcpy",
            arg: 0,
            pred: &pred,
            class: ViolationClass::BufferOverflow,
            ret: &ret_of("char *strcpy(char *dest, const char *src);"),
            null_defaults: &defaults,
        };
        let out =
            oblivious_outcome(&cx, &mut p, &oracle(), &[CVal::Ptr(dest), CVal::Ptr(src)]);
        assert_eq!(out.ret, CVal::Ptr(dest), "reports success with the caller's pointer");
        let w = out.write.expect("a shadow-write entry");
        assert_eq!(w.attempted, 41, "40 bytes + terminator");
        assert_eq!(w.addr, dest.get());
        assert!(w.object_extent >= 8, "attributed to the heap chunk");
        assert_eq!(w.clipped, 41 - w.object_extent, "bytes beyond the object");
        assert!(out.taint.is_none(), "the caller's own pointer is not tainted");
        // The destination was truly untouched.
        assert_eq!(p.read_cstr_lossy(dest), "");
    }

    #[test]
    fn null_dest_write_clips_everything() {
        let mut p = libc_proc();
        let src = p.alloc_cstr("xyz");
        let defaults = BTreeSet::new();
        let pred = SafePred::HoldsCStrOf { src: 1 };
        let cx = ObliviousCx {
            func: "strcpy",
            arg: 0,
            pred: &pred,
            class: ViolationClass::NullPointer,
            ret: &ret_of("char *strcpy(char *dest, const char *src);"),
            null_defaults: &defaults,
        };
        let out = oblivious_outcome(&cx, &mut p, &oracle(), &[CVal::NULL, CVal::Ptr(src)]);
        assert_eq!(out.ret, CVal::NULL, "no destination to hand back");
        let w = out.write.expect("shadow write");
        assert_eq!(w.object_extent, 0, "NULL resolves to no object");
        assert_eq!(w.clipped, w.attempted, "every byte would have corrupted");
    }

    #[test]
    fn non_memory_violations_fall_back_to_containment() {
        let mut p = libc_proc();
        let defaults = BTreeSet::new();
        let cx = ObliviousCx {
            func: "fclose",
            arg: 0,
            pred: &SafePred::ValidFilePtr,
            class: ViolationClass::ResourceHandle,
            ret: &ret_of("int fclose(FILE *stream);"),
            null_defaults: &defaults,
        };
        let out = oblivious_outcome(&cx, &mut p, &oracle(), &[CVal::NULL]);
        assert_eq!(out.ret, CVal::Int(-1));
        assert_eq!(out.role, "containment-fallback");
    }

    #[test]
    fn fault_values_are_as_if_empty() {
        assert_eq!(oblivious_fault_value(&ret_of("size_t f(void);")), CVal::Int(0));
        assert_eq!(oblivious_fault_value(&ret_of("char *f(void);")), CVal::NULL);
        assert_eq!(oblivious_fault_value(&ret_of("void f(void);")), CVal::Void);
    }
}
