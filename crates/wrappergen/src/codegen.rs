//! The micro-generator *code* side (paper §2.3, Figure 3).
//!
//! "Each micro-generator generates a fragment of the prefix and postfix
//! code of a function. The micro-generators can be combined in a variety
//! of ways to generate new wrapper types." The generated C text is what a
//! real HEALERS deployment would compile into the wrapper `.so`; here it
//! is emitted verbatim (and golden-tested against the shape of Figure 3)
//! while the behaviourally equivalent hooks in [`crate::hooks`] execute
//! in the simulation.

use cdecl::{CType, Prototype};
use typelattice::SafePred;

/// Context handed to each micro-generator.
#[derive(Debug, Clone)]
pub struct CodegenCx<'a> {
    /// The function being wrapped.
    pub proto: &'a Prototype,
    /// The function's index in the wrapper library (the paper's generated
    /// code indexes per-function arrays with it, e.g. `[1206]`).
    pub func_index: usize,
    /// Robust argument types, when the wrapper checks arguments.
    pub preds: &'a [SafePred],
}

impl CodegenCx<'_> {
    fn ret_is_void(&self) -> bool {
        self.proto.ret == CType::Void
    }

    fn arg_list(&self) -> String {
        self.proto
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| p.display_name(i))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn param_decls(&self) -> String {
        if self.proto.params.is_empty() && !self.proto.variadic {
            return "void".to_string();
        }
        let mut parts: Vec<String> = self
            .proto
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{} {}", p.ty, p.display_name(i)))
            .collect();
        if self.proto.variadic {
            parts.push("...".into());
        }
        parts.join(", ")
    }
}

/// A code-generating micro-generator: prefix and postfix C fragments.
pub trait MicroGen {
    /// The micro-generator's name as it appears in generated comments
    /// (e.g. `"prototype"`, `"function exectime"`).
    fn name(&self) -> &'static str;

    /// Lines emitted before the call to the original function.
    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String>;

    /// Lines emitted after the call (emission order is reversed across
    /// micro-generators, exactly as in Figure 3).
    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String>;
}

/// `prototype`: the wrapper signature, the `ret` declaration and the
/// final `return`.
#[derive(Debug, Clone, Copy)]
pub struct PrototypeGen;

impl MicroGen for PrototypeGen {
    fn name(&self) -> &'static str {
        "prototype"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out =
            vec![format!("{} {}({})", cx.proto.ret, cx.proto.name, cx.param_decls())];
        out.push("{".into());
        if !cx.ret_is_void() {
            out.push(format!("  {} ret;", cx.proto.ret));
        }
        out
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out = Vec::new();
        if !cx.ret_is_void() {
            out.push("  return ret;".into());
        }
        out.push("}".into());
        out
    }
}

/// `caller`: the call to the original function through the resolved
/// symbol address.
#[derive(Debug, Clone, Copy)]
pub struct CallerGen;

impl MicroGen for CallerGen {
    fn name(&self) -> &'static str {
        "caller"
    }

    fn prefix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let call = format!("(*addr_{})({})", cx.proto.name, cx.arg_list());
        if cx.ret_is_void() {
            vec![format!("  {call};")]
        } else {
            vec![format!("  ret = {call};")]
        }
    }
}

/// `function exectime`: rdtsc sampling around the call.
#[derive(Debug, Clone, Copy)]
pub struct ExectimeGen;

impl MicroGen for ExectimeGen {
    fn name(&self) -> &'static str {
        "function exectime"
    }

    fn prefix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        vec![
            "  unsigned long long exectime_start;".into(),
            "  unsigned long long exectime_end;".into(),
            "  rdtsc(exectime_start);".into(),
        ]
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        vec![
            "  rdtsc(exectime_end);".into(),
            format!("  exectime[{}] += exectime_end - exectime_start;", cx.func_index),
        ]
    }
}

/// `collect errors`: process-wide errno histogram.
#[derive(Debug, Clone, Copy)]
pub struct CollectErrorsGen;

impl MicroGen for CollectErrorsGen {
    fn name(&self) -> &'static str {
        "collect errors"
    }

    fn prefix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        vec!["  int collect_errors_err = errno;".into()]
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        vec![
            "  if (collect_errors_err != errno)".into(),
            "    if (errno < 0 || errno >= MAX_ERRNO)".into(),
            "      ++collect_errors_cnter[MAX_ERRNO];".into(),
            "    else".into(),
            "      ++collect_errors_cnter[errno];".into(),
        ]
    }
}

/// `func errors`: per-function errno histogram.
#[derive(Debug, Clone, Copy)]
pub struct FuncErrorsGen;

impl MicroGen for FuncErrorsGen {
    fn name(&self) -> &'static str {
        "func error"
    }

    fn prefix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        vec!["  int func_error_err = errno;".into()]
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        vec![
            "  if (func_error_err != errno)".into(),
            "    if (errno < 0 || errno >= MAX_ERRNO)".into(),
            format!("      ++func_error_cnter[{}][MAX_ERRNO];", cx.func_index),
            "    else".into(),
            format!("      ++func_error_cnter[{}][errno];", cx.func_index),
        ]
    }
}

/// `call counter`.
#[derive(Debug, Clone, Copy)]
pub struct CallCounterGen;

impl MicroGen for CallCounterGen {
    fn name(&self) -> &'static str {
        "call counter"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        vec![format!("  ++call_counter_num_calls[{}];", cx.func_index)]
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }
}

/// `arg check`: the robustness wrapper's precondition tests, one per
/// parameter with a non-trivial robust type; violations return an error
/// value with `errno = EINVAL` instead of calling the C library.
#[derive(Debug, Clone, Copy)]
pub struct ArgCheckGen;

fn error_return(proto: &Prototype) -> String {
    match proto.ret {
        CType::Void => "return;".into(),
        CType::Ptr { .. } | CType::FuncPtr { .. } => "return NULL;".into(),
        CType::Float | CType::Double => "return 0.0;".into(),
        _ => "return -1;".into(),
    }
}

impl MicroGen for ArgCheckGen {
    fn name(&self) -> &'static str {
        "arg check"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out = Vec::new();
        for (i, pred) in cx.preds.iter().enumerate() {
            if *pred == SafePred::Always {
                continue;
            }
            let name = cx
                .proto
                .params
                .get(i)
                .map(|p| p.display_name(i))
                .unwrap_or_else(|| format!("a{}", i + 1));
            out.push(format!(
                "  if (!healers_check({name}, \"{pred}\")) {{ errno = EINVAL; {} }}",
                error_return(cx.proto)
            ));
        }
        out
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }
}

/// `heal args`: the healing wrapper's precondition tests — a violated
/// robust type is *repaired* before the call (`healers_heal` rewrites the
/// argument per the violated predicate's repair hint); only when no safe
/// repair exists does the fragment fall back to the robustness wrapper's
/// rejection.
#[derive(Debug, Clone, Copy)]
pub struct HealArgsGen;

impl MicroGen for HealArgsGen {
    fn name(&self) -> &'static str {
        "heal args"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out = Vec::new();
        for (i, pred) in cx.preds.iter().enumerate() {
            if *pred == SafePred::Always {
                continue;
            }
            let name = cx
                .proto
                .params
                .get(i)
                .map(|p| p.display_name(i))
                .unwrap_or_else(|| format!("a{}", i + 1));
            out.push(format!("  if (!healers_check({name}, \"{pred}\"))"));
            out.push(format!(
                "    if (!healers_heal(&{name}, \"{pred}\")) {{ errno = EINVAL; {} }}",
                error_return(cx.proto)
            ));
        }
        out
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }
}

/// `retry`: the healing wrapper's fault backstop — when the original
/// faults despite the argument repairs, re-sanitize the arguments and
/// re-invoke it a bounded number of times before containing the fault.
#[derive(Debug, Clone, Copy)]
pub struct RetryGen;

impl MicroGen for RetryGen {
    fn name(&self) -> &'static str {
        "retry"
    }

    fn prefix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        vec!["  int healing_attempt = 0;".into(), "retry_call:".into()]
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        let mut out = vec![
            "  if (healers_faulted()) {".into(),
            "    if (healing_attempt++ < HEAL_MAX_RETRIES) {".into(),
            "      healers_resanitize();".into(),
            "      goto retry_call;".into(),
            "    }".into(),
            "    errno = EINVAL;".into(),
        ];
        if !cx.ret_is_void() {
            out.push(format!("    ret = {};", containment_literal(&cx.proto.ret)));
        }
        out.push("  }".into());
        out
    }
}

fn containment_literal(ret: &CType) -> &'static str {
    match ret {
        CType::Ptr { .. } | CType::FuncPtr { .. } | CType::Array { .. } => "NULL",
        CType::Float | CType::Double => "0.0",
        _ => "-1",
    }
}

/// `canary check`: the security wrapper's fragments — over-allocation
/// plus guard-word verification on the allocator family, bounded writes
/// elsewhere; violations terminate the process.
#[derive(Debug, Clone, Copy)]
pub struct CanaryCheckGen;

impl MicroGen for CanaryCheckGen {
    fn name(&self) -> &'static str {
        "canary check"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        match cx.proto.name.as_str() {
            "malloc" => vec!["  size += CANARY_LEN; /* reserve guard word */".into()],
            "free" | "realloc" => vec![
                "  if (!healers_canary_ok(ptr)) healers_terminate(\"heap smashing detected\");"
                    .into(),
            ],
            _ => {
                let mut out = Vec::new();
                for (i, pred) in cx.preds.iter().enumerate() {
                    if *pred == SafePred::Always {
                        continue;
                    }
                    let name = cx
                        .proto
                        .params
                        .get(i)
                        .map(|p| p.display_name(i))
                        .unwrap_or_else(|| format!("a{}", i + 1));
                    out.push(format!(
                        "  if (!healers_check({name}, \"{pred}\")) healers_terminate(\"buffer overflow prevented\");"
                    ));
                }
                out
            }
        }
    }

    fn postfix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        match cx.proto.name.as_str() {
            "malloc" | "realloc" => {
                vec!["  if (ret) healers_write_canary(ret, size - CANARY_LEN);".into()]
            }
            _ => Vec::new(),
        }
    }
}

/// `log call`: a simple call trace.
#[derive(Debug, Clone, Copy)]
pub struct LogCallGen;

impl MicroGen for LogCallGen {
    fn name(&self) -> &'static str {
        "log call"
    }

    fn prefix(&self, cx: &CodegenCx<'_>) -> Vec<String> {
        vec![format!("  healers_log(\"{}({})\");", cx.proto.name, cx.arg_list())]
    }

    fn postfix(&self, _cx: &CodegenCx<'_>) -> Vec<String> {
        Vec::new()
    }
}

/// Composes micro-generators into the wrapper source for one function:
/// prefix fragments in order, postfix fragments in *reverse* order, each
/// annotated `/* Prefix|Postfix code by micro-gen NAME */` — Figure 3's
/// exact structure.
pub fn generate_function(gens: &[&dyn MicroGen], cx: &CodegenCx<'_>) -> String {
    let mut out = String::new();
    for g in gens {
        let lines = g.prefix(cx);
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("/* Prefix code by micro-gen {} */\n", g.name()));
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
    }
    for g in gens.iter().rev() {
        let lines = g.postfix(cx);
        if lines.is_empty() {
            continue;
        }
        out.push_str(&format!("/* Postfix code by micro-gen {} */\n", g.name()));
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn wctrans_proto() -> Prototype {
        let t = TypedefTable::with_builtins();
        parse_prototype("wctrans_t wctrans(const char* a1);", &t).unwrap()
    }

    /// The six micro-generators of Figure 3, in the paper's order.
    fn figure3_gens() -> Vec<Box<dyn MicroGen>> {
        vec![
            Box::new(PrototypeGen),
            Box::new(ExectimeGen),
            Box::new(CollectErrorsGen),
            Box::new(FuncErrorsGen),
            Box::new(CallCounterGen),
            Box::new(CallerGen),
        ]
    }

    #[test]
    fn figure3_structure_is_reproduced() {
        let proto = wctrans_proto();
        let cx = CodegenCx { proto: &proto, func_index: 1206, preds: &[] };
        let gens = figure3_gens();
        let refs: Vec<&dyn MicroGen> = gens.iter().map(|g| g.as_ref()).collect();
        let code = generate_function(&refs, &cx);

        // Every annotation of Figure 3, in its order.
        let landmarks = [
            "/* Prefix code by micro-gen prototype */",
            "long wctrans(const char* a1)",
            "  long ret;",
            "/* Prefix code by micro-gen function exectime */",
            "  rdtsc(exectime_start);",
            "/* Prefix code by micro-gen collect errors */",
            "  int collect_errors_err = errno;",
            "/* Prefix code by micro-gen func error */",
            "  int func_error_err = errno;",
            "/* Prefix code by micro-gen call counter */",
            "  ++call_counter_num_calls[1206];",
            "/* Postfix code by micro-gen caller */",
            "  ret = (*addr_wctrans)(a1);",
            "/* Postfix code by micro-gen func error */",
            "      ++func_error_cnter[1206][errno];",
            "/* Postfix code by micro-gen collect errors */",
            "      ++collect_errors_cnter[errno];",
            "/* Postfix code by micro-gen function exectime */",
            "  exectime[1206] += exectime_end - exectime_start;",
            "/* Postfix code by micro-gen prototype */",
            "  return ret;",
        ];
        let mut pos = 0;
        for l in landmarks {
            let found = code[pos..]
                .find(l)
                .unwrap_or_else(|| panic!("missing or out of order: {l}\n---\n{code}"));
            pos += found + l.len();
        }
    }

    #[test]
    fn void_functions_have_no_ret() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("void srand(unsigned int seed);", &t).unwrap();
        let cx = CodegenCx { proto: &proto, func_index: 7, preds: &[] };
        let code = generate_function(&[&PrototypeGen, &CallerGen], &cx);
        assert!(!code.contains("ret;"), "{code}");
        assert!(code.contains("(*addr_srand)(seed);"));
        assert!(!code.contains("return ret"));
    }

    #[test]
    fn arg_check_emits_one_test_per_nontrivial_pred() {
        let t = TypedefTable::with_builtins();
        let proto =
            parse_prototype("char *strcpy(char *dest, const char *src);", &t).unwrap();
        let preds = vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr];
        let cx = CodegenCx { proto: &proto, func_index: 1, preds: &preds };
        let code = generate_function(&[&PrototypeGen, &ArgCheckGen, &CallerGen], &cx);
        assert_eq!(code.matches("healers_check").count(), 2, "{code}");
        assert!(code.contains("errno = EINVAL; return NULL;"), "{code}");
        assert!(code.contains("writable buffer >= strlen(arg2)+1"));
    }

    #[test]
    fn canary_fragments_specialise_by_function() {
        let t = TypedefTable::with_builtins();
        let malloc = parse_prototype("void *malloc(size_t size);", &t).unwrap();
        let cx = CodegenCx { proto: &malloc, func_index: 0, preds: &[] };
        let code = generate_function(&[&PrototypeGen, &CanaryCheckGen, &CallerGen], &cx);
        assert!(code.contains("size += CANARY_LEN"), "{code}");
        assert!(code.contains("healers_write_canary"), "{code}");

        let free = parse_prototype("void free(void *ptr);", &t).unwrap();
        let cx = CodegenCx { proto: &free, func_index: 1, preds: &[] };
        let code = generate_function(&[&PrototypeGen, &CanaryCheckGen, &CallerGen], &cx);
        assert!(code.contains("healers_canary_ok(ptr)"), "{code}");
        assert!(code.contains("heap smashing detected"));
    }

    #[test]
    fn healing_structure_mirrors_figure3() {
        // The healing wrapper's landmark sequence: check-then-heal
        // prefixes in order, retry scaffolding around the call, fault
        // backstop in reverse postfix order — Figure 3's discipline with
        // the new micro-generators slotted in.
        let t = TypedefTable::with_builtins();
        let proto =
            parse_prototype("char *strcpy(char *dest, const char *src);", &t).unwrap();
        let preds = vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr];
        let cx = CodegenCx { proto: &proto, func_index: 42, preds: &preds };
        let code =
            generate_function(&[&PrototypeGen, &HealArgsGen, &RetryGen, &CallerGen], &cx);

        let landmarks = [
            "/* Prefix code by micro-gen prototype */",
            "char* strcpy(char* dest, const char* src)",
            "  char* ret;",
            "/* Prefix code by micro-gen heal args */",
            "  if (!healers_check(dest, \"writable buffer >= strlen(arg2)+1\"))",
            "    if (!healers_heal(&dest, \"writable buffer >= strlen(arg2)+1\")) { errno = EINVAL; return NULL; }",
            "  if (!healers_check(src, ",
            "    if (!healers_heal(&src, ",
            "/* Prefix code by micro-gen retry */",
            "  int healing_attempt = 0;",
            "retry_call:",
            "/* Postfix code by micro-gen caller */",
            "  ret = (*addr_strcpy)(dest, src);",
            "/* Postfix code by micro-gen retry */",
            "  if (healers_faulted()) {",
            "    if (healing_attempt++ < HEAL_MAX_RETRIES) {",
            "      healers_resanitize();",
            "      goto retry_call;",
            "    ret = NULL;",
            "/* Postfix code by micro-gen prototype */",
            "  return ret;",
        ];
        let mut pos = 0;
        for l in landmarks {
            let found = code[pos..]
                .find(l)
                .unwrap_or_else(|| panic!("missing or out of order: {l}\n---\n{code}"));
            pos += found + l.len();
        }
    }

    #[test]
    fn retry_fragment_handles_void_returns() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("void free(void *ptr);", &t).unwrap();
        let preds = vec![SafePred::HeapChunkOrNull];
        let cx = CodegenCx { proto: &proto, func_index: 3, preds: &preds };
        let code =
            generate_function(&[&PrototypeGen, &HealArgsGen, &RetryGen, &CallerGen], &cx);
        assert!(code.contains("healers_heal(&ptr"), "{code}");
        assert!(code.contains("errno = EINVAL; return;"), "{code}");
        assert!(!code.contains("ret ="), "void function has no ret: {code}");
    }

    #[test]
    fn variadic_signature() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("int printf(const char *format, ...);", &t).unwrap();
        let cx = CodegenCx { proto: &proto, func_index: 0, preds: &[] };
        let code = generate_function(&[&PrototypeGen], &cx);
        assert!(code.contains("int printf(const char* format, ...)"), "{code}");
    }

    #[test]
    fn log_call_mentions_args() {
        let proto = wctrans_proto();
        let cx = CodegenCx { proto: &proto, func_index: 0, preds: &[] };
        let code = generate_function(&[&LogCallGen], &cx);
        assert!(code.contains("healers_log(\"wctrans(a1)\")"), "{code}");
    }
}
