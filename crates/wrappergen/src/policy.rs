//! The graceful-degradation policy engine: *what* a wrapper does about a
//! contract violation, resolved per function and per violation class.
//!
//! The paper's wrappers know two responses — contain (robustness wrapper)
//! and terminate (security wrapper, §3.4). This module generalises that
//! binary choice into a policy lattice and adds the self-healing
//! responses on top: repair the offending argument in place before the
//! call ([`Policy::Heal`]), re-invoke the original after re-sanitizing
//! ([`Policy::Retry`]), or skip the call entirely and manufacture a
//! benign return ([`Policy::Oblivious`], the failure-oblivious response
//! of Rigger et al.).
//!
//! [`apply_repair`] is the executor for the [`typelattice::repair_hint`]
//! suggestions: it rewrites the argument vector using the guardian's
//! extent knowledge and reports a human-readable description of what it
//! did — the healing wrapper journals every such description.

use std::collections::BTreeMap;

use guardian::{nul_terminate_in_extent, truncate_cstr, GuardOracle};
use simproc::{CVal, ExtentOracle, Proc, VirtAddr};
use typelattice::{peek_cstr_len, repair_hint, RepairHint, SafePred};

/// How a wrapper responds to a violation (or, for the fault path, to a
/// fault escaping the original function).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Run the checks and journal violations, but let the call through
    /// unchanged — the fleet's baseline posture, where crashes stay
    /// visible so the remediation director has a signal to act on.
    Observe,
    /// Reject the call: `errno = EINVAL`, containment value returned.
    /// The classic robustness wrapper.
    Contain,
    /// Terminate the process. The security wrapper.
    Terminate,
    /// Repair the offending arguments in place before the call; fall
    /// back to containment when no safe repair exists.
    Heal,
    /// Heal, and additionally re-invoke the original (re-sanitizing
    /// in between) when it faults anyway — at most `max_attempts` times.
    Retry {
        /// Upper bound on re-invocations of the original.
        max_attempts: u32,
    },
    /// Failure-oblivious availability mode (Rigger et al., context-aware
    /// variant): violating *reads* are answered with a value manufactured
    /// per (function, argument role, violation class); violating *writes*
    /// are suppressed and recorded in the shadow-write ledger. `errno`
    /// stays untouched and every absorption is journaled and audited.
    Oblivious,
}

/// The class of contract violation, derived from the violated
/// [`SafePred`]. Policies can be keyed on this: terminate on buffer
/// overflows but heal unterminated strings, say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationClass {
    /// A NULL pointer where an object is required.
    NullPointer,
    /// A pointer outside any known object.
    WildPointer,
    /// A string buffer with no terminator in reach.
    UnterminatedString,
    /// An operation that would write or read past its buffer's extent.
    BufferOverflow,
    /// An integer outside its safe domain.
    IntDomain,
    /// An invalid handle-like value (stream, function pointer,
    /// heap chunk, out-parameter cell).
    ResourceHandle,
}

impl ViolationClass {
    /// The class of a violation of `pred` by the value `val`.
    pub fn of(pred: &SafePred, val: CVal) -> ViolationClass {
        // NULL where any object is required is its own class, whatever
        // the predicate demanded of the object.
        let wants_object = !matches!(
            pred,
            SafePred::NullOr(_) | SafePred::HeapChunkOrNull | SafePred::PtrToCStrOrNull
        );
        if wants_object
            && !matches!(pred, SafePred::IntNonZero | SafePred::IntInRange { .. })
        {
            if let CVal::Ptr(p) = val {
                if p.is_null() {
                    return ViolationClass::NullPointer;
                }
            }
        }
        match pred {
            SafePred::Always => ViolationClass::WildPointer, // unreachable: never violated
            SafePred::NonNull => ViolationClass::NullPointer,
            SafePred::Readable(_) | SafePred::Writable(_) => ViolationClass::WildPointer,
            SafePred::CStr => ViolationClass::UnterminatedString,
            SafePred::HoldsCStrOf { .. }
            | SafePred::WritableAtLeastArg { .. }
            | SafePred::ReadableAtLeastArg { .. }
            | SafePred::WritableAtLeastProduct { .. }
            | SafePred::ReadableAtLeastProduct { .. }
            | SafePred::SizeFitsWritable { .. }
            | SafePred::SizeFitsReadable { .. }
            | SafePred::SizeBelow(_) => ViolationClass::BufferOverflow,
            SafePred::IntNonZero | SafePred::IntInRange { .. } => ViolationClass::IntDomain,
            SafePred::PtrToCStrOrNull
            | SafePred::ValidFuncPtr
            | SafePred::ValidFilePtr
            | SafePred::HeapChunkOrNull => ViolationClass::ResourceHandle,
            SafePred::NullOr(inner) => ViolationClass::of(inner, val),
        }
    }

    /// Stable tag used in journals and XML documents.
    pub fn tag(self) -> &'static str {
        match self {
            ViolationClass::NullPointer => "null-pointer",
            ViolationClass::WildPointer => "wild-pointer",
            ViolationClass::UnterminatedString => "unterminated-string",
            ViolationClass::BufferOverflow => "buffer-overflow",
            ViolationClass::IntDomain => "int-domain",
            ViolationClass::ResourceHandle => "resource-handle",
        }
    }
}

/// A shared, runtime-swappable table of per-function policy overrides —
/// the knob the fleet's remediation director turns. Wrappers holding a
/// clone consult it on every resolution, so a policy change applies to
/// the *next* call with no rebuild and no restart.
#[derive(Debug, Clone, Default)]
pub struct PolicyOverrides {
    table: std::sync::Arc<parking_lot::Mutex<BTreeMap<String, Policy>>>,
}

impl PolicyOverrides {
    /// An empty override table.
    pub fn new() -> Self {
        PolicyOverrides::default()
    }

    /// Sets (or replaces) the override for `func`.
    pub fn set(&self, func: impl Into<String>, policy: Policy) {
        self.table.lock().insert(func.into(), policy);
    }

    /// Removes the override for `func`, falling back to the engine's
    /// static resolution.
    pub fn clear(&self, func: &str) {
        self.table.lock().remove(func);
    }

    /// The current override for `func`, if any.
    pub fn get(&self, func: &str) -> Option<Policy> {
        self.table.lock().get(func).copied()
    }

    /// A sorted snapshot of the current overrides.
    pub fn snapshot(&self) -> BTreeMap<String, Policy> {
        self.table.lock().clone()
    }
}

/// Per-function, per-violation-class policy resolution.
///
/// Resolution order, most specific wins: runtime override for the
/// function, then function + class, then function, then class, then
/// the default.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    default: Policy,
    by_class: BTreeMap<ViolationClass, Policy>,
    by_func: BTreeMap<String, Policy>,
    by_func_class: BTreeMap<(String, ViolationClass), Policy>,
    overrides: Option<PolicyOverrides>,
}

impl PolicyEngine {
    /// An engine answering `default` for everything.
    pub fn new(default: Policy) -> Self {
        PolicyEngine {
            default,
            by_class: BTreeMap::new(),
            by_func: BTreeMap::new(),
            by_func_class: BTreeMap::new(),
            overrides: None,
        }
    }

    /// The classic robustness wrapper: contain everything.
    pub fn containment() -> Self {
        PolicyEngine::new(Policy::Contain)
    }

    /// The security wrapper: terminate on everything.
    pub fn terminating() -> Self {
        PolicyEngine::new(Policy::Terminate)
    }

    /// The healing wrapper's default: repair arguments before the call
    /// and retry the original (once re-sanitized) when it faults anyway.
    pub fn healing() -> Self {
        PolicyEngine::new(Policy::Retry { max_attempts: 2 })
    }

    /// Overrides the policy for one violation class.
    pub fn with_class(mut self, class: ViolationClass, policy: Policy) -> Self {
        self.by_class.insert(class, policy);
        self
    }

    /// Overrides the policy for one function.
    pub fn with_func(mut self, func: impl Into<String>, policy: Policy) -> Self {
        self.by_func.insert(func.into(), policy);
        self
    }

    /// Overrides the policy for one function and violation class.
    pub fn with_func_class(
        mut self,
        func: impl Into<String>,
        class: ViolationClass,
        policy: Policy,
    ) -> Self {
        self.by_func_class.insert((func.into(), class), policy);
        self
    }

    /// Attaches a shared runtime override table. Overrides win over
    /// every static rule, and attaching the table disables the
    /// compiled fast path ([`PolicyEngine::uniform`] returns `None`):
    /// a plan frozen at build time cannot honour a policy that may
    /// change between calls.
    pub fn with_overrides(mut self, overrides: PolicyOverrides) -> Self {
        self.overrides = Some(overrides);
        self
    }

    /// The policy for a violation of `class` inside `func`.
    pub fn resolve(&self, func: &str, class: ViolationClass) -> Policy {
        if let Some(ov) = &self.overrides {
            if let Some(p) = ov.get(func) {
                return p;
            }
        }
        if !self.by_func_class.is_empty() {
            if let Some(p) = self.by_func_class.get(&(func.to_string(), class)) {
                return *p;
            }
        }
        if let Some(p) = self.by_func.get(func) {
            return *p;
        }
        if let Some(p) = self.by_class.get(&class) {
            return *p;
        }
        self.default
    }

    /// `Some(policy)` when every resolution — any function, any class —
    /// yields the same policy (no overrides configured). This is what
    /// lets the call-plan compiler prove a check failure is equivalent
    /// to a plain rejection.
    pub fn uniform(&self) -> Option<Policy> {
        if self.overrides.is_some() {
            return None;
        }
        if self.by_class.is_empty()
            && self.by_func.is_empty()
            && self.by_func_class.is_empty()
        {
            Some(self.default)
        } else {
            None
        }
    }

    /// Whether any resolution of this engine can ever answer
    /// [`Policy::Oblivious`]: the default is Oblivious, some static rule
    /// maps to it, or a runtime override table is attached (the director
    /// may set Oblivious at any moment). Builders use this to decide
    /// whether a wrapper needs the oblivious audit ledger at all.
    pub fn may_go_oblivious(&self) -> bool {
        self.overrides.is_some()
            || self.default == Policy::Oblivious
            || self.by_class.values().any(|p| *p == Policy::Oblivious)
            || self.by_func.values().any(|p| *p == Policy::Oblivious)
            || self.by_func_class.values().any(|p| *p == Policy::Oblivious)
    }

    /// The policy consulted when the original function faults despite
    /// the argument checks (no violation class to key on).
    pub fn fault_policy(&self, func: &str) -> Policy {
        if let Some(ov) = &self.overrides {
            if let Some(p) = ov.get(func) {
                return p;
            }
        }
        *self.by_func.get(func).unwrap_or(&self.default)
    }
}

/// Cap on the size of buffers the healer manufactures as substitutes —
/// large enough for every libc-shaped operation worth saving, small
/// enough that a hostile length argument cannot empty the heap.
pub const SUBSTITUTE_CAP: u64 = 64 * 1024;

fn fresh_buffer(proc: &mut Proc, size: u64) -> Option<VirtAddr> {
    let size = size.clamp(1, SUBSTITUTE_CAP);
    let ptr = simlibc::heap::malloc(proc, size).ok()?;
    if ptr.is_null() {
        return None;
    }
    proc.mem.write_bytes(ptr, &vec![0u8; size as usize]).ok()?;
    Some(ptr)
}

fn extent_of(proc: &Proc, oracle: &GuardOracle, addr: VirtAddr, writable: bool) -> u64 {
    let ext = if writable {
        oracle.writable_extent(proc, addr)
    } else {
        oracle.readable_extent(proc, addr)
    };
    ext.unwrap_or(0)
}

/// Executes the repair suggested for the violated `pred` on argument `i`
/// of `args`, using the guardian's extent knowledge. Returns a
/// description of the applied repair for the audit journal, or `None`
/// when no safe repair exists (the caller contains instead).
///
/// A repair is *one step* toward the contract: the caller re-checks all
/// predicates afterwards and re-invokes the executor while progress is
/// being made (a copy that is too long may need a substituted
/// destination first and a truncated source second).
pub fn apply_repair(
    proc: &mut Proc,
    oracle: &GuardOracle,
    args: &mut [CVal],
    pred: &SafePred,
    i: usize,
) -> Option<String> {
    match repair_hint(pred) {
        RepairHint::MakeCStr => {
            let addr = args[i].as_ptr();
            if !addr.is_null() {
                if let Some(at) = nul_terminate_in_extent(proc, oracle, addr) {
                    return Some(format!("NUL-terminated in place at offset {at}"));
                }
            }
            let empty = fresh_buffer(proc, 1)?;
            args[i] = CVal::Ptr(empty);
            Some("substituted empty string".into())
        }
        RepairHint::SubstituteBuffer { min } => {
            let buf = fresh_buffer(proc, min)?;
            args[i] = CVal::Ptr(buf);
            Some(format!("substituted fresh {}-byte buffer", min.clamp(1, SUBSTITUTE_CAP)))
        }
        RepairHint::FitDestToSrc { src } => {
            let src_ptr = args.get(src)?.as_ptr();
            let Some(len) = peek_cstr_len(proc, src_ptr) else {
                // The source is not a string at all: give the copy an
                // empty one and let the recheck sort the rest out.
                let empty = fresh_buffer(proc, 1)?;
                args[src] = CVal::Ptr(empty);
                return Some("substituted empty source string".into());
            };
            let dest = args[i].as_ptr();
            let w = extent_of(proc, oracle, dest, true);
            if w == 0 {
                let buf = fresh_buffer(proc, len + 1)?;
                args[i] = CVal::Ptr(buf);
                return Some(format!(
                    "substituted {}-byte destination",
                    (len + 1).clamp(1, SUBSTITUTE_CAP)
                ));
            }
            if len + 1 > w {
                if truncate_cstr(proc, src_ptr, w - 1) {
                    return Some(format!("truncated source to {} bytes", w - 1));
                }
                // Read-only source: copy a truncated prefix instead.
                let keep = (w - 1).min(SUBSTITUTE_CAP - 1);
                let prefix = proc.mem.peek_bytes(src_ptr, keep)?;
                let buf = fresh_buffer(proc, keep + 1)?;
                if !proc.mem.poke_bytes(buf, &prefix) {
                    return None;
                }
                args[src] = CVal::Ptr(buf);
                return Some(format!("substituted {keep}-byte truncated copy of source"));
            }
            // Extent suffices yet the check failed: the destination must
            // be unusable in some other way — replace it.
            let buf = fresh_buffer(proc, len + 1)?;
            args[i] = CVal::Ptr(buf);
            Some(format!(
                "substituted {}-byte destination",
                (len + 1).clamp(1, SUBSTITUTE_CAP)
            ))
        }
        RepairHint::ClampCountToExtent { count, elem, writable } => {
            let addr = args[i].as_ptr();
            let extent = extent_of(proc, oracle, addr, writable);
            if extent == 0 {
                let need = args
                    .get(count)?
                    .as_usize()
                    .saturating_mul(elem.max(1))
                    .clamp(1, SUBSTITUTE_CAP);
                let buf = fresh_buffer(proc, need)?;
                args[i] = CVal::Ptr(buf);
                return Some(format!("substituted {need}-byte buffer"));
            }
            let clamped = guardian::clamp_count(extent, elem);
            args[count] = CVal::Int(clamped as i64);
            Some(format!("clamped count (arg {}) to {clamped}", count + 1))
        }
        RepairHint::ClampProductToExtent { a, b, writable } => {
            let addr = args[i].as_ptr();
            let extent = extent_of(proc, oracle, addr, writable);
            if extent == 0 {
                let need = args
                    .get(a)?
                    .as_usize()
                    .saturating_mul(args.get(b)?.as_usize())
                    .clamp(1, SUBSTITUTE_CAP);
                let buf = fresh_buffer(proc, need)?;
                args[i] = CVal::Ptr(buf);
                return Some(format!("substituted {need}-byte buffer"));
            }
            let av = args.get(a)?.as_usize();
            let clamped = extent.checked_div(av).unwrap_or(0);
            args[b] = CVal::Int(clamped as i64);
            Some(format!("clamped factor (arg {}) to {clamped}", b + 1))
        }
        RepairHint::ClampSelfToExtentOf { ptr, elem, writable } => {
            let addr = args.get(ptr)?.as_ptr();
            let extent = extent_of(proc, oracle, addr, writable);
            let clamped = guardian::clamp_count(extent, elem);
            args[i] = CVal::Int(clamped as i64);
            Some(format!("clamped size to {clamped}"))
        }
        RepairHint::ClampSelfBelow(n) => {
            let v = n.saturating_sub(1);
            args[i] = CVal::Int(v as i64);
            Some(format!("clamped size below {n}"))
        }
        RepairHint::ClampSelfRange { min, max } => {
            let v = args[i].as_int().clamp(min, max);
            args[i] = CVal::Int(v);
            Some(format!("clamped into [{min}, {max}]"))
        }
        RepairHint::SubstituteInt(v) => {
            args[i] = CVal::Int(v);
            Some(format!("substituted {v}"))
        }
        RepairHint::MakePtrCell => {
            let cell = args[i].as_ptr();
            if !cell.is_null()
                && extent_of(proc, oracle, cell, true) >= 8
                && proc.mem.write_ptr(cell, VirtAddr::NULL).is_ok()
            {
                return Some("cleared out-parameter cell".into());
            }
            let buf = fresh_buffer(proc, 8)?;
            args[i] = CVal::Ptr(buf);
            Some("substituted fresh out-parameter cell".into())
        }
        RepairHint::SubstituteNull => {
            args[i] = CVal::NULL;
            Some("substituted NULL".into())
        }
        RepairHint::Unfixable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardian::CanaryRegistry;
    use simlibc::testutil::libc_proc;
    use std::sync::Arc;

    fn oracle() -> GuardOracle {
        GuardOracle::new(Arc::new(CanaryRegistry::new()))
    }

    #[test]
    fn resolution_order_most_specific_wins() {
        let e = PolicyEngine::healing()
            .with_class(ViolationClass::BufferOverflow, Policy::Terminate)
            .with_func("free", Policy::Contain)
            .with_func_class("strcpy", ViolationClass::BufferOverflow, Policy::Oblivious);
        assert_eq!(
            e.resolve("strcpy", ViolationClass::BufferOverflow),
            Policy::Oblivious,
            "func+class beats class"
        );
        assert_eq!(
            e.resolve("memcpy", ViolationClass::BufferOverflow),
            Policy::Terminate,
            "class beats default"
        );
        assert_eq!(
            e.resolve("free", ViolationClass::NullPointer),
            Policy::Contain,
            "func beats class default"
        );
        assert_eq!(
            e.resolve("strlen", ViolationClass::NullPointer),
            Policy::Retry { max_attempts: 2 },
            "default"
        );
        assert_eq!(e.fault_policy("free"), Policy::Contain);
        assert_eq!(e.fault_policy("strlen"), Policy::Retry { max_attempts: 2 });
    }

    #[test]
    fn may_go_oblivious_names_every_route_to_the_policy() {
        assert!(!PolicyEngine::healing().may_go_oblivious());
        assert!(!PolicyEngine::containment().may_go_oblivious());
        assert!(PolicyEngine::new(Policy::Oblivious).may_go_oblivious());
        assert!(PolicyEngine::healing()
            .with_class(ViolationClass::BufferOverflow, Policy::Oblivious)
            .may_go_oblivious());
        assert!(PolicyEngine::healing()
            .with_func("strcpy", Policy::Oblivious)
            .may_go_oblivious());
        assert!(PolicyEngine::healing()
            .with_func_class("strcpy", ViolationClass::NullPointer, Policy::Oblivious)
            .may_go_oblivious());
        // A runtime override table can turn Oblivious on at any moment.
        assert!(PolicyEngine::healing()
            .with_overrides(PolicyOverrides::new())
            .may_go_oblivious());
    }

    #[test]
    fn violation_classes_follow_the_predicate() {
        assert_eq!(
            ViolationClass::of(&SafePred::CStr, CVal::NULL),
            ViolationClass::NullPointer,
            "NULL dominates the predicate's own class"
        );
        assert_eq!(
            ViolationClass::of(&SafePred::CStr, CVal::Ptr(VirtAddr::new(0x1000))),
            ViolationClass::UnterminatedString
        );
        assert_eq!(
            ViolationClass::of(
                &SafePred::HoldsCStrOf { src: 1 },
                CVal::Ptr(VirtAddr::new(8))
            ),
            ViolationClass::BufferOverflow
        );
        assert_eq!(
            ViolationClass::of(&SafePred::IntNonZero, CVal::Int(0)),
            ViolationClass::IntDomain
        );
        assert_eq!(
            ViolationClass::of(&SafePred::HeapChunkOrNull, CVal::Ptr(VirtAddr::new(64))),
            ViolationClass::ResourceHandle
        );
        assert_eq!(
            ViolationClass::of(
                &SafePred::NullOr(Box::new(SafePred::CStr)),
                CVal::Ptr(VirtAddr::new(0x1000))
            ),
            ViolationClass::UnterminatedString,
            "NullOr delegates to the inner predicate"
        );
        // Tags are stable identifiers.
        assert_eq!(ViolationClass::BufferOverflow.tag(), "buffer-overflow");
        assert_eq!(ViolationClass::ResourceHandle.tag(), "resource-handle");
    }

    #[test]
    fn repairs_reestablish_the_predicate() {
        let mut p = libc_proc();
        let o = oracle();

        // A run of non-NUL bytes at the very end of the data segment has no
        // terminator before unmapped memory — healing writes one in place at
        // the last writable byte.
        let buf = simproc::layout::DATA_BASE.add(simproc::layout::DATA_SIZE).sub(4);
        p.mem.poke_bytes(buf, &[1, 1, 1, 1]);
        let mut args = vec![CVal::Ptr(buf)];
        assert!(!SafePred::CStr.check(&p, &o, &args, 0));
        let desc = apply_repair(&mut p, &o, &mut args, &SafePred::CStr, 0).unwrap();
        assert!(desc.contains("in place"), "{desc}");
        assert!(SafePred::CStr.check(&p, &o, &args, 0));

        // NULL source gets a substituted empty string.
        let mut args = vec![CVal::NULL];
        apply_repair(&mut p, &o, &mut args, &SafePred::CStr, 0).unwrap();
        assert!(SafePred::CStr.check(&p, &o, &args, 0));
        assert_ne!(args[0], CVal::NULL);

        // A wild free() pointer becomes free(NULL).
        let mut args = vec![CVal::Ptr(VirtAddr::new(0x40))];
        assert!(!SafePred::HeapChunkOrNull.check(&p, &o, &args, 0));
        apply_repair(&mut p, &o, &mut args, &SafePred::HeapChunkOrNull, 0).unwrap();
        assert!(SafePred::HeapChunkOrNull.check(&p, &o, &args, 0));
        assert!(args[0].is_null());

        // An out-of-domain int is clamped into range.
        let mut args = vec![CVal::Int(999)];
        let pred = SafePred::IntInRange { min: 0, max: 255 };
        apply_repair(&mut p, &o, &mut args, &pred, 0).unwrap();
        assert_eq!(args[0], CVal::Int(255));
    }

    #[test]
    fn oversized_copy_is_truncated_to_the_destination() {
        let mut p = libc_proc();
        let o = oracle();
        let dest = simlibc::heap::malloc(&mut p, 4).unwrap();
        let dest_ext = o.writable_extent(&p, dest).unwrap();
        let src = p.alloc_cstr(&"A".repeat(200));
        let pred = SafePred::HoldsCStrOf { src: 1 };
        let mut args = vec![CVal::Ptr(dest), CVal::Ptr(src)];
        assert!(!pred.check(&p, &o, &args, 0));
        let desc = apply_repair(&mut p, &o, &mut args, &pred, 0).unwrap();
        assert!(desc.contains("truncated source"), "{desc}");
        assert!(pred.check(&p, &o, &args, 0), "copy now fits");
        let len = peek_cstr_len(&p, src).unwrap();
        assert_eq!(len, dest_ext - 1);
    }

    #[test]
    fn read_only_source_is_copied_not_written() {
        let mut p = libc_proc();
        let o = oracle();
        let dest = simlibc::heap::malloc(&mut p, 4).unwrap();
        let src = p.alloc_cstr_literal(&"B".repeat(200));
        let pred = SafePred::HoldsCStrOf { src: 1 };
        let mut args = vec![CVal::Ptr(dest), CVal::Ptr(src)];
        let desc = apply_repair(&mut p, &o, &mut args, &pred, 0).unwrap();
        assert!(desc.contains("copy of source"), "{desc}");
        assert!(pred.check(&p, &o, &args, 0));
        // The literal itself is untouched.
        assert_eq!(peek_cstr_len(&p, src), Some(200));
        assert_ne!(args[1].as_ptr(), src);
    }

    #[test]
    fn count_clamps_respect_the_extent() {
        let mut p = libc_proc();
        let o = oracle();
        let buf = simlibc::heap::malloc(&mut p, 16).unwrap();
        let ext = o.writable_extent(&p, buf).unwrap();
        let pred = SafePred::WritableAtLeastArg { size: 1, elem: 1 };
        let mut args = vec![CVal::Ptr(buf), CVal::Int(1 << 20)];
        assert!(!pred.check(&p, &o, &args, 0));
        apply_repair(&mut p, &o, &mut args, &pred, 0).unwrap();
        assert_eq!(args[1], CVal::Int(ext as i64));
        assert!(pred.check(&p, &o, &args, 0));
    }

    #[test]
    fn unfixable_predicates_yield_no_repair() {
        let mut p = libc_proc();
        let o = oracle();
        let mut args = vec![CVal::Ptr(VirtAddr::new(0x5000))];
        assert_eq!(apply_repair(&mut p, &o, &mut args, &SafePred::ValidFilePtr, 0), None);
        assert_eq!(apply_repair(&mut p, &o, &mut args, &SafePred::ValidFuncPtr, 0), None);
    }
}
