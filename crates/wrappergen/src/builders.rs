//! Assembling whole wrapper libraries — "a flexible framework for a wide
//! variety of wrapper types ... the micro-generators can be combined in a
//! variety of ways to generate new wrapper types" (§2.3). The three
//! wrapper types of Figure 1 (security / robustness / profiling) are
//! built here from the same micro-generator parts.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use guardian::{CanaryRegistry, GuardOracle};
use parking_lot::Mutex;
use profiler::{Collector, FlightRecorder, HealingJournal, ObliviousAudit, Stats};
use simproc::HostFn;
use typelattice::{RobustApi, SafePred, SubstitutionPlan};

use crate::codegen::{
    generate_function, ArgCheckGen, CallCounterGen, CallerGen, CanaryCheckGen, CodegenCx,
    CollectErrorsGen, ExectimeGen, FuncErrorsGen, HealArgsGen, MicroGen, PrototypeGen,
    RetryGen,
};
use crate::hooks::{
    ArgCheckHook, CallCounterHook, CanaryHook, CollectErrorsHook, ExectimeHook,
    ExitReportHook, FuncErrorsHook,
};
use crate::policy::PolicyEngine;
use crate::runtime::{CallLog, Hook, WrappedFn};
use crate::substitute::{SubstituteGen, SubstituteHook};

/// The wrapper types of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperKind {
    /// Prevents a large class of failures (crashes, hangs, aborts) by
    /// rejecting out-of-contract arguments with a graceful error.
    Robustness,
    /// Prevents buffer-overflow attacks; violations terminate the
    /// process.
    Security,
    /// Gathers call counts, execution time and errno statistics, shipped
    /// as XML at termination.
    Profiling,
    /// Logs every intercepted call with its arguments — the simplest
    /// wrapper the micro-generator architecture composes ("it is easy to
    /// introduce new functionalities into the existing system").
    Tracing,
    /// Repairs out-of-contract arguments in place before the call and
    /// retries faulting calls with sanitized arguments, journaling every
    /// action — graceful degradation instead of rejection.
    Healing,
    /// Reroutes fragile calls (`strcpy`/`strcat`/`sprintf`) to bounded
    /// safer variants clipped to the oracle's exact extent — only where
    /// the analyzer's flow-sensitive substitution analysis proved the
    /// rewrite sound ([`WrapperConfig::substitutions`]). Overflows are
    /// *prevented* outright instead of canary-detected after the fact.
    Substitute,
    /// A hand-composed wrapper built with [`WrapperBuilder`].
    Custom,
}

impl WrapperKind {
    /// soname of the generated wrapper library.
    pub fn soname(self) -> &'static str {
        match self {
            WrapperKind::Robustness => "libhealers_robust.so.1",
            WrapperKind::Security => "libhealers_secure.so.1",
            WrapperKind::Profiling => "libhealers_profile.so.1",
            WrapperKind::Tracing => "libhealers_trace.so.1",
            WrapperKind::Healing => "libhealers_heal.so.1",
            WrapperKind::Substitute => "libhealers_subst.so.1",
            WrapperKind::Custom => "libhealers_custom.so.1",
        }
    }

    /// Wrapper-type tag used in shipped documents.
    pub fn tag(self) -> &'static str {
        match self {
            WrapperKind::Robustness => "robustness",
            WrapperKind::Security => "security",
            WrapperKind::Profiling => "profiling",
            WrapperKind::Tracing => "tracing",
            WrapperKind::Healing => "healing",
            WrapperKind::Substitute => "substitute",
            WrapperKind::Custom => "custom",
        }
    }
}

/// A generated wrapper library: runnable wrapped functions plus the
/// generated C source a real deployment would compile.
#[derive(Debug)]
pub struct WrapperLibrary {
    /// soname (what `LD_PRELOAD` would name).
    pub soname: String,
    /// Wrapper type.
    pub kind: WrapperKind,
    /// Generated C source for every wrapped function.
    pub source: String,
    fns: BTreeMap<String, WrappedFn>,
    /// Shared statistics (populated by profiling wrappers).
    pub stats: Arc<Stats>,
    /// Shared canary registry (populated by security wrappers).
    pub registry: Arc<CanaryRegistry>,
    /// Shared call log.
    pub log: CallLog,
    /// Healing audit journal (populated by healing wrappers).
    pub journal: Arc<HealingJournal>,
    /// Oblivious-execution audit ledger — present only when the policy
    /// engine can resolve to [`crate::Policy::Oblivious`] somewhere
    /// (default, per-function/class rule, or live overrides), so plain
    /// healing wrappers keep their compiled fast paths.
    pub oblivious: Option<ObliviousAudit>,
    /// Flight recorder ring shared by every wrapped function — present
    /// only when [`WrapperConfig::flight_recorder`] asked for one.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Human-readable warnings raised during generation — e.g. contracts
    /// derived by a budget-cut campaign that this wrapper enforces (or
    /// refused to enforce) despite their low confidence.
    pub warnings: Vec<String>,
}

impl WrapperLibrary {
    /// The wrapped function for `name`, if this wrapper interposes it.
    pub fn get(&self, name: &str) -> Option<&WrappedFn> {
        self.fns.get(name)
    }

    /// Names of all interposed functions.
    pub fn wrapped_names(&self) -> Vec<&str> {
        self.fns.keys().map(|s| s.as_str()).collect()
    }

    /// Iterates the wrapped functions.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &WrappedFn)> {
        self.fns.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of interposed functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// `true` if nothing is interposed.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

/// What contract-enforcing wrappers do with a function whose robust
/// contract is not a measurement (the campaign's circuit breaker tripped
/// or its budget expired before the function was fully probed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LowConfidence {
    /// Enforce the conservative contract anyway, recording a warning in
    /// [`WrapperLibrary::warnings`].
    #[default]
    Warn,
    /// Leave the function unwrapped (and record a warning): better no
    /// interposition than graceful errors driven by a guessed contract.
    Skip,
}

/// Options for wrapper generation.
#[derive(Debug, Clone, Default)]
pub struct WrapperConfig {
    /// Application name stamped into shipped documents.
    pub app_name: String,
    /// Where profiling and healing wrappers ship their document at
    /// `exit`.
    pub collector: Option<Collector>,
    /// Fleet-service sink: profiling and healing wrappers additionally
    /// (or instead) ship the fleet document variant — stamped with the
    /// process's fleet identity — to this back-pressured service at
    /// `exit`.
    pub fleet: Option<profiler::FleetCollector>,
    /// Policy engine for healing wrappers; defaults to
    /// [`PolicyEngine::healing`].
    pub policy: Option<PolicyEngine>,
    /// How contract-enforcing wrapper kinds treat functions whose
    /// contract is a conservative guess rather than a measurement.
    pub low_confidence: LowConfidence,
    /// Record per-function log2 latency histograms (`call` stage for
    /// every wrapper kind; `check`/`heal` stages for healing wrappers).
    /// Off by default: extra per-call recording. The `call`-stage sample
    /// is compiled into the wrapper's epilogue and so costs no fast
    /// path; healing's per-stage histograms still keep that (already
    /// dynamic) pipeline dynamic.
    pub latency_histograms: bool,
    /// Keep a flight recorder of the last N calls through the wrapper
    /// (`Some(n)`). Off by default — it records on every call. Recording
    /// is compiled into the wrapper's epilogue, so compiled call plans
    /// survive. The ring is shared library-wide and surfaces via
    /// [`WrapperLibrary::recorder`] and the exit document.
    pub flight_recorder: Option<usize>,
    /// Functions whose static contract (analyzer `NullOk` facts) marks
    /// string inputs as NULL-tolerant: under [`crate::Policy::Oblivious`]
    /// their pointer returns are manufactured empty strings instead of
    /// NULL — contract-derived defaults.
    pub oblivious_null_defaults: Vec<String>,
    /// Proven-sound rewrite plans for [`WrapperKind::Substitute`]: only
    /// functions with a plan here are interposed, each by the safer
    /// variant its plan names. Produced by the analyzer's substitution
    /// analysis — never hand-written, so every entry carries a
    /// discharged proof.
    pub substitutions: Vec<SubstitutionPlan>,
}

/// Whether a predicate guards *writes* (what the security wrapper
/// enforces; read-side contracts stay with the robustness wrapper).
fn security_relevant(pred: &SafePred) -> bool {
    match pred {
        SafePred::Writable(_)
        | SafePred::HoldsCStrOf { .. }
        | SafePred::WritableAtLeastArg { .. }
        | SafePred::WritableAtLeastProduct { .. }
        | SafePred::SizeFitsWritable { .. }
        | SafePred::HeapChunkOrNull => true,
        SafePred::NullOr(inner) => security_relevant(inner),
        _ => false,
    }
}

/// The functions the canary micro-generator interposes.
const CANARY_FUNCS: &[&str] = &["malloc", "calloc", "free", "realloc", "exit"];

fn lookup_impl(name: &str) -> Option<HostFn> {
    simlibc::find_symbol(name).map(|s| s.imp).or_else(|| {
        simlibc::math::math_symbols().into_iter().find(|s| s.name == name).map(|s| s.imp)
    })
}

/// Builds one of the standard wrapper libraries from a robust API,
/// binding the simulated system libraries' implementations.
pub fn build_wrapper(
    kind: WrapperKind,
    api: &RobustApi,
    config: &WrapperConfig,
) -> WrapperLibrary {
    build_wrapper_with_impls(kind, api, config, &lookup_impl)
}

/// [`build_wrapper`] with an explicit implementation lookup — for
/// wrapping a *new release* of a library whose symbols resolve to
/// different code than the stock simulated one.
pub fn build_wrapper_with_impls(
    kind: WrapperKind,
    api: &RobustApi,
    config: &WrapperConfig,
    lookup: &dyn Fn(&str) -> Option<HostFn>,
) -> WrapperLibrary {
    let stats = Arc::new(Stats::new());
    let registry = Arc::new(CanaryRegistry::new());
    let log: CallLog = Arc::new(Mutex::new(Vec::new()));
    let journal = Arc::new(HealingJournal::new());
    let oracle = GuardOracle::new(Arc::clone(&registry));
    let engine = config.policy.clone().unwrap_or_else(PolicyEngine::healing);
    let recorder = config.flight_recorder.map(|cap| Arc::new(FlightRecorder::new(cap)));
    // The audit (and the dynamic pipeline it forces) is paid for only
    // when some route through the engine can actually go oblivious.
    let oblivious = (kind == WrapperKind::Healing && engine.may_go_oblivious())
        .then(ObliviousAudit::new);
    let contract_defaults: Arc<BTreeSet<String>> =
        Arc::new(config.oblivious_null_defaults.iter().cloned().collect());

    let mut fns = BTreeMap::new();
    let mut warnings = Vec::new();
    let mut source = String::new();
    source.push_str(&format!(
        "/* {} — generated by HEALERS from the robust API of {} */\n\n",
        kind.soname(),
        api.library
    ));

    for (index, f) in api.functions.iter().enumerate() {
        let name = f.proto.name.clone();
        let Some(imp) = lookup(&name) else { continue };

        // A contract that is a conservative guess (breaker tripped,
        // budget expired) is dangerous to *enforce*: it may reject
        // arguments the library handles fine. Observational kinds
        // (profiling, tracing) are unaffected.
        let enforces_contract = matches!(
            kind,
            WrapperKind::Robustness | WrapperKind::Security | WrapperKind::Healing
        );
        if enforces_contract && !f.skipped && !f.is_measured() {
            let action = match config.low_confidence {
                LowConfidence::Warn => "enforcing conservative contract",
                LowConfidence::Skip => "left unwrapped",
            };
            warnings.push(format!(
                "{name}: contract confidence is {} (coverage {:.0}%) — {action}",
                f.confidence,
                f.coverage * 100.0
            ));
            if config.low_confidence == LowConfidence::Skip {
                continue;
            }
        }

        let mut hooks: Vec<Arc<dyn Hook>> = Vec::new();
        let mut gens: Vec<Box<dyn MicroGen>> = vec![Box::new(PrototypeGen)];
        let mut preds_for_codegen: Vec<SafePred> = Vec::new();

        match kind {
            WrapperKind::Custom => {
                // Hand-composed wrappers come from `WrapperBuilder`.
                continue;
            }
            WrapperKind::Robustness => {
                if f.skipped || !f.has_checks() {
                    continue; // pay only for the protection you need
                }
                preds_for_codegen = f.preds.clone();
                hooks.push(Arc::new(ArgCheckHook::new(
                    f.preds.clone(),
                    f.proto.ret.clone(),
                    oracle.clone(),
                    PolicyEngine::containment(),
                )));
                gens.push(Box::new(ArgCheckGen));
            }
            WrapperKind::Security => {
                let sec_preds: Vec<SafePred> = f
                    .preds
                    .iter()
                    .map(
                        |p| if security_relevant(p) { p.clone() } else { SafePred::Always },
                    )
                    .collect();
                let has_sec = sec_preds.iter().any(|p| *p != SafePred::Always);
                let is_canary = CANARY_FUNCS.contains(&name.as_str());
                if !has_sec && !is_canary {
                    continue;
                }
                // Where the canary hook rewrites size arguments
                // (guard-word inflation: malloc/calloc/realloc), checks
                // must precede it — a check running after would validate
                // the inflated size instead of the caller's, the exact
                // ordering defect the wrapper-soundness lint flags as
                // check-after-mutation. For `free` the canary op only
                // *verifies*, so it runs first: a smashed guard word is
                // reported as the canary detection it is, not as a
                // robust-type violation.
                let canary_mutates =
                    is_canary && matches!(name.as_str(), "malloc" | "calloc" | "realloc");
                if is_canary && !canary_mutates {
                    hooks.push(Arc::new(CanaryHook::new(Arc::clone(&registry))));
                }
                if has_sec {
                    preds_for_codegen = sec_preds.clone();
                    hooks.push(Arc::new(ArgCheckHook::new(
                        sec_preds,
                        f.proto.ret.clone(),
                        oracle.clone(),
                        PolicyEngine::terminating(),
                    )));
                }
                if canary_mutates {
                    hooks.push(Arc::new(CanaryHook::new(Arc::clone(&registry))));
                }
                gens.push(Box::new(CanaryCheckGen));
            }
            WrapperKind::Tracing => {
                hooks.push(Arc::new(crate::hooks::LogCallHook::new(Arc::clone(&log))));
                gens.push(Box::new(crate::codegen::LogCallGen));
            }
            WrapperKind::Substitute => {
                // Only functions the analyzer proved a rewrite for are
                // interposed: no plan, no interception, no overhead.
                let Some(plan) = config.substitutions.iter().find(|pl| pl.func == name)
                else {
                    continue;
                };
                hooks.push(Arc::new(SubstituteHook::new(
                    plan.clone(),
                    oracle.clone(),
                    Arc::clone(&journal),
                    f.proto.ret.clone(),
                )));
                gens.push(Box::new(SubstituteGen { plan: plan.clone() }));
            }
            WrapperKind::Healing => {
                // Statistics ride along so the exit document carries the
                // call profile next to the healing journal.
                let exectime = if config.latency_histograms {
                    ExectimeHook::with_latency(Arc::clone(&stats))
                } else {
                    ExectimeHook::new(Arc::clone(&stats))
                };
                hooks.push(Arc::new(exectime));
                hooks.push(Arc::new(CollectErrorsHook::new(Arc::clone(&stats))));
                hooks.push(Arc::new(FuncErrorsHook::new(Arc::clone(&stats))));
                hooks.push(Arc::new(CallCounterHook::new(Arc::clone(&stats))));
                if name == "exit" {
                    if config.collector.is_some() || config.fleet.is_some() {
                        let mut report = match &config.collector {
                            Some(collector) => ExitReportHook::with_journal(
                                Arc::clone(&stats),
                                config.app_name.clone(),
                                kind.tag(),
                                collector.clone(),
                                Arc::clone(&journal),
                            ),
                            None => ExitReportHook::fleet_only(
                                Arc::clone(&stats),
                                config.app_name.clone(),
                                kind.tag(),
                                config.fleet.clone().expect("fleet sink present"),
                                Some(Arc::clone(&journal)),
                            ),
                        };
                        if config.collector.is_some() {
                            if let Some(fleet) = &config.fleet {
                                report = report.with_fleet(fleet.clone());
                            }
                        }
                        if let Some(rec) = &recorder {
                            report = report.with_flight(Arc::clone(rec));
                        }
                        if let Some(audit) = &oblivious {
                            report = report.with_oblivious(audit.clone());
                        }
                        hooks.push(Arc::new(report));
                    }
                } else {
                    if f.skipped || !f.has_checks() {
                        continue; // nothing to heal, nothing to pay for
                    }
                    preds_for_codegen = f.preds.clone();
                    let mut check = ArgCheckHook::with_journal(
                        f.preds.clone(),
                        f.proto.ret.clone(),
                        oracle.clone(),
                        engine.clone(),
                        Arc::clone(&journal),
                    );
                    if let Some(audit) = &oblivious {
                        check = check
                            .with_oblivious(audit.clone())
                            .with_contract_defaults(Arc::clone(&contract_defaults));
                    }
                    if config.latency_histograms {
                        // The healing pipeline is dynamic anyway (the
                        // journal forbids compiled plans), so stage
                        // latency costs no fast path here.
                        check = check.with_stats(Arc::clone(&stats));
                    }
                    hooks.push(Arc::new(check));
                    gens.push(Box::new(HealArgsGen));
                    gens.push(Box::new(RetryGen));
                }
            }
            WrapperKind::Profiling => {
                let exectime = if config.latency_histograms {
                    ExectimeHook::with_latency(Arc::clone(&stats))
                } else {
                    ExectimeHook::new(Arc::clone(&stats))
                };
                hooks.push(Arc::new(exectime));
                hooks.push(Arc::new(CollectErrorsHook::new(Arc::clone(&stats))));
                hooks.push(Arc::new(FuncErrorsHook::new(Arc::clone(&stats))));
                hooks.push(Arc::new(CallCounterHook::new(Arc::clone(&stats))));
                if name == "exit" && (config.collector.is_some() || config.fleet.is_some())
                {
                    let mut report = match &config.collector {
                        Some(collector) => ExitReportHook::new(
                            Arc::clone(&stats),
                            config.app_name.clone(),
                            kind.tag(),
                            collector.clone(),
                        ),
                        None => ExitReportHook::fleet_only(
                            Arc::clone(&stats),
                            config.app_name.clone(),
                            kind.tag(),
                            config.fleet.clone().expect("fleet sink present"),
                            None,
                        ),
                    };
                    if config.collector.is_some() {
                        if let Some(fleet) = &config.fleet {
                            report = report.with_fleet(fleet.clone());
                        }
                    }
                    if let Some(rec) = &recorder {
                        report = report.with_flight(Arc::clone(rec));
                    }
                    hooks.push(Arc::new(report));
                }
                gens.push(Box::new(ExectimeGen));
                gens.push(Box::new(CollectErrorsGen));
                gens.push(Box::new(FuncErrorsGen));
                gens.push(Box::new(CallCounterGen));
            }
        }

        gens.push(Box::new(CallerGen));
        let cx =
            CodegenCx { proto: &f.proto, func_index: index, preds: &preds_for_codegen };
        let gen_refs: Vec<&dyn MicroGen> = gens.iter().map(|g| g.as_ref()).collect();
        source.push_str(&generate_function(&gen_refs, &cx));
        source.push('\n');

        // Telemetry is compiled into the wrapper's epilogue rather than
        // riding as hooks: it records after every other hook settled the
        // verdict (the position a first-inserted recorder hook's `after`
        // occupied) without forcing the dynamic pipeline. The `call`
        // latency sample attaches only to kinds without an exectime
        // hook — profiling/healing record it through
        // `ExectimeHook::with_latency` already.
        let latency = (config.latency_histograms
            && matches!(kind, WrapperKind::Robustness | WrapperKind::Security))
        .then(|| Arc::clone(&stats));
        let flight = recorder.as_ref().map(Arc::clone);
        fns.insert(
            name,
            WrappedFn::new_with_telemetry(f.proto.clone(), imp, hooks, latency, flight),
        );
    }

    WrapperLibrary {
        soname: kind.soname().to_string(),
        kind,
        source,
        fns,
        stats,
        registry,
        log,
        journal,
        oblivious,
        recorder,
        warnings,
    }
}

/// Hand-rolled composition for custom wrapper types: "such an
/// architecture facilitates code reuse and makes it easy to introduce new
/// functionalities".
#[derive(Debug, Default)]
pub struct WrapperBuilder {
    soname: String,
    entries: BTreeMap<String, Vec<Arc<dyn Hook>>>,
}

impl std::fmt::Debug for dyn Hook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hook({})", self.name())
    }
}

impl WrapperBuilder {
    /// Starts a custom wrapper library.
    pub fn new(soname: impl Into<String>) -> Self {
        WrapperBuilder { soname: soname.into(), entries: BTreeMap::new() }
    }

    /// Adds a hook to the pipeline for `func` (wrapping it if new).
    pub fn hook(&mut self, func: &str, hook: Arc<dyn Hook>) -> &mut Self {
        self.entries.entry(func.to_string()).or_default().push(hook);
        self
    }

    /// Builds the library; functions unknown to the simulated libraries
    /// are skipped.
    pub fn build(&self) -> WrapperLibrary {
        let protos = simlibc::prototypes();
        let mut fns = BTreeMap::new();
        for (name, hooks) in &self.entries {
            let Some(imp) = lookup_impl(name) else { continue };
            let Some(proto) = protos.iter().find(|p| &p.name == name).cloned() else {
                continue;
            };
            fns.insert(name.clone(), WrappedFn::new(proto, imp, hooks.clone()));
        }
        WrapperLibrary {
            soname: self.soname.clone(),
            kind: WrapperKind::Custom,
            source: format!(
                "/* {} — hand-composed wrapper ({} functions) */\n",
                self.soname,
                fns.len()
            ),
            fns,
            stats: Arc::new(Stats::new()),
            registry: Arc::new(CanaryRegistry::new()),
            log: Arc::new(Mutex::new(Vec::new())),
            journal: Arc::new(HealingJournal::new()),
            oblivious: None,
            recorder: None,
            warnings: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use simlibc::testutil::libc_proc;
    use simproc::{CVal, Fault};
    use typelattice::RobustFunction;

    fn tiny_api() -> RobustApi {
        let t = TypedefTable::with_builtins();
        let mk = |proto: &str, preds: Vec<SafePred>| {
            RobustFunction::new(parse_prototype(proto, &t).unwrap(), preds, true)
        };
        RobustApi {
            library: "libsimc.so.1".into(),
            functions: vec![
                mk(
                    "char *strcpy(char *dest, const char *src);",
                    vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
                ),
                mk("size_t strlen(const char *s);", vec![SafePred::CStr]),
                mk("int abs(int j);", vec![SafePred::Always]),
                mk("void *malloc(size_t size);", vec![SafePred::Always]),
                mk("void free(void *ptr);", vec![SafePred::HeapChunkOrNull]),
                mk("void exit(int status);", vec![SafePred::Always]),
            ],
        }
    }

    #[test]
    fn robustness_wrapper_wraps_only_checked_functions() {
        let lib =
            build_wrapper(WrapperKind::Robustness, &tiny_api(), &WrapperConfig::default());
        assert_eq!(lib.wrapped_names(), vec!["free", "strcpy", "strlen"]);
        assert!(lib.get("abs").is_none(), "no checks, no overhead");
        assert!(lib.source.contains("healers_check"));
        assert!(lib.source.contains("micro-gen arg check"));
    }

    #[test]
    fn robustness_wrapper_contains_crashes() {
        let lib =
            build_wrapper(WrapperKind::Robustness, &tiny_api(), &WrapperConfig::default());
        let strlen = lib.get("strlen").unwrap();
        let mut p = libc_proc();
        let r = strlen.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1));
        assert_eq!(p.errno(), simproc::errno::EINVAL);
    }

    #[test]
    fn security_wrapper_wraps_allocators_and_writers() {
        let lib =
            build_wrapper(WrapperKind::Security, &tiny_api(), &WrapperConfig::default());
        let names = lib.wrapped_names();
        assert!(names.contains(&"malloc"));
        assert!(names.contains(&"free"));
        assert!(names.contains(&"exit"));
        assert!(names.contains(&"strcpy"), "write function");
        assert!(!names.contains(&"strlen"), "read-only contract is not security relevant");
        assert!(lib.source.contains("CANARY_LEN"));
    }

    #[test]
    fn security_wrapper_terminates_overflowing_strcpy() {
        let lib =
            build_wrapper(WrapperKind::Security, &tiny_api(), &WrapperConfig::default());
        let mut p = libc_proc();
        let malloc = lib.get("malloc").unwrap();
        let strcpy = lib.get("strcpy").unwrap();
        let buf = malloc.call(&mut p, &[CVal::Int(8)]).unwrap().as_ptr();
        let attack = p.alloc_cstr(&"X".repeat(64));
        let err = strcpy.call(&mut p, &[CVal::Ptr(buf), CVal::Ptr(attack)]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
        // An in-bounds copy is untouched.
        let ok = p.alloc_cstr("ok");
        strcpy.call(&mut p, &[CVal::Ptr(buf), CVal::Ptr(ok)]).unwrap();
        assert_eq!(p.read_cstr_lossy(buf), "ok");
    }

    #[test]
    fn profiling_wrapper_wraps_everything_and_reports() {
        let server = profiler::CollectionServer::start();
        let config = WrapperConfig {
            app_name: "demo".into(),
            collector: Some(server.collector()),
            policy: None,
            ..WrapperConfig::default()
        };
        let lib = build_wrapper(WrapperKind::Profiling, &tiny_api(), &config);
        assert_eq!(lib.len(), 6, "profiling wraps every function");
        let mut p = libc_proc();
        let s = p.alloc_cstr("abcd");
        lib.get("strlen").unwrap().call(&mut p, &[CVal::Ptr(s)]).unwrap();
        lib.get("abs").unwrap().call(&mut p, &[CVal::Int(-2)]).unwrap();
        let err = lib.get("exit").unwrap().call(&mut p, &[CVal::Int(0)]).unwrap_err();
        assert_eq!(err, Fault::Exit(0));
        let snap = lib.stats.snapshot();
        assert_eq!(snap.per_func["strlen"].calls, 1);
        assert_eq!(snap.per_func["abs"].calls, 1);
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        assert_eq!(collected.submissions[0].wrapper, "profiling");
        assert!(lib.source.contains("micro-gen call counter"));
    }

    #[test]
    fn healing_wrapper_repairs_and_journals() {
        let server = profiler::CollectionServer::start();
        let config = WrapperConfig {
            app_name: "healdemo".into(),
            collector: Some(server.collector()),
            policy: None, // defaults to PolicyEngine::healing()
            ..WrapperConfig::default()
        };
        let lib = build_wrapper(WrapperKind::Healing, &tiny_api(), &config);
        assert_eq!(lib.kind, WrapperKind::Healing);
        let names = lib.wrapped_names();
        assert!(names.contains(&"strcpy") && names.contains(&"exit"), "{names:?}");
        assert!(!names.contains(&"abs"), "nothing to heal, nothing to pay for");
        assert!(lib.source.contains("micro-gen heal args"), "{}", lib.source);
        assert!(lib.source.contains("micro-gen retry"));

        let mut p = libc_proc();
        // strlen(NULL) heals to 0 instead of EINVAL/-1.
        let r = lib.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(0));
        // A wild free() becomes free(NULL).
        lib.get("free")
            .unwrap()
            .call(&mut p, &[CVal::Ptr(simproc::VirtAddr::new(0x40))])
            .unwrap();
        assert_eq!(lib.journal.len(), 2, "{:?}", lib.journal.snapshot());

        // The exit document ships the journal.
        let err = lib.get("exit").unwrap().call(&mut p, &[CVal::Int(0)]).unwrap_err();
        assert_eq!(err, Fault::Exit(0));
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        assert_eq!(collected.submissions[0].wrapper, "healing");
        assert!(collected.submissions[0].document.contains("<healing events=\"2\">"));
    }

    #[test]
    fn custom_builder_composes_hooks() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(Stats::new());
        let mut b = WrapperBuilder::new("libcustom.so");
        b.hook("strlen", Arc::new(crate::hooks::LogCallHook::new(Arc::clone(&log))));
        b.hook("strlen", Arc::new(CallCounterHook::new(Arc::clone(&stats))));
        let lib = b.build();
        assert_eq!(lib.kind, WrapperKind::Custom);
        assert!(lib.source.contains("hand-composed"));
        let mut p = libc_proc();
        let s = p.alloc_cstr("hi");
        lib.get("strlen").unwrap().call(&mut p, &[CVal::Ptr(s)]).unwrap();
        assert_eq!(log.lock().len(), 1);
        assert_eq!(stats.snapshot().per_func["strlen"].calls, 1);
    }

    #[test]
    fn low_confidence_contracts_warn_or_skip() {
        use typelattice::Confidence;
        let mut api = tiny_api();
        let i = api.functions.iter().position(|f| f.proto.name == "strlen").unwrap();
        api.functions[i].confidence = Confidence::Partial;
        api.functions[i].coverage = 0.4;
        api.functions[i].fully_robust = false;

        let warn = build_wrapper(WrapperKind::Robustness, &api, &WrapperConfig::default());
        assert!(warn.get("strlen").is_some(), "Warn still enforces");
        assert_eq!(warn.warnings.len(), 1, "{:?}", warn.warnings);
        assert!(warn.warnings[0].contains("strlen"), "{:?}", warn.warnings);
        assert!(warn.warnings[0].contains("partial"), "{:?}", warn.warnings);

        let config = WrapperConfig {
            low_confidence: LowConfidence::Skip,
            ..WrapperConfig::default()
        };
        let skip = build_wrapper(WrapperKind::Robustness, &api, &config);
        assert!(skip.get("strlen").is_none(), "Skip refuses guessed contracts");
        assert!(skip.get("strcpy").is_some(), "measured contracts unaffected");
        assert_eq!(skip.warnings.len(), 1, "{:?}", skip.warnings);

        let profiling =
            build_wrapper(WrapperKind::Profiling, &api, &WrapperConfig::default());
        assert!(profiling.warnings.is_empty(), "observational kinds never warn");
        assert!(profiling.get("strlen").is_some());
    }

    #[test]
    fn flight_recorder_rides_every_wrapped_function() {
        let config = WrapperConfig { flight_recorder: Some(4), ..WrapperConfig::default() };
        let lib = build_wrapper(WrapperKind::Security, &tiny_api(), &config);
        let recorder = lib.recorder.as_ref().expect("configured recorder");
        let mut p = libc_proc();
        let malloc = lib.get("malloc").unwrap();
        let strcpy = lib.get("strcpy").unwrap();
        let buf = malloc.call(&mut p, &[CVal::Int(8)]).unwrap().as_ptr();
        let attack = p.alloc_cstr(&"X".repeat(64));
        let err = strcpy.call(&mut p, &[CVal::Ptr(buf), CVal::Ptr(attack)]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
        let tail = recorder.tail();
        assert_eq!(tail.len(), 2, "{tail:?}");
        assert_eq!(tail[0].func, "malloc");
        assert_eq!(tail[0].verdict, "ok");
        assert_eq!(tail[1].func, "strcpy");
        assert_eq!(tail[1].verdict, err.to_string());

        // Off by default: no recorder, and compiled plans survive.
        let plain =
            build_wrapper(WrapperKind::Robustness, &tiny_api(), &WrapperConfig::default());
        assert!(plain.recorder.is_none());
        assert!(plain.get("strlen").unwrap().has_plan(), "fast path intact");
        // Recording is compiled into the epilogue: the plan survives and
        // the ring still fills.
        let recorded = build_wrapper(WrapperKind::Robustness, &tiny_api(), &config);
        assert!(
            recorded.get("strlen").unwrap().has_plan(),
            "recording rides the fast path"
        );
        let mut p = libc_proc();
        let s = p.alloc_cstr("xyz");
        recorded.get("strlen").unwrap().call(&mut p, &[CVal::Ptr(s)]).unwrap();
        let tail = recorded.recorder.as_ref().unwrap().tail();
        assert_eq!(tail.len(), 1, "{tail:?}");
        assert_eq!(tail[0].func, "strlen");
        assert_eq!(tail[0].verdict, "ok");
    }

    #[test]
    fn exit_document_carries_latency_and_flight_sections() {
        let server = profiler::CollectionServer::start();
        let config = WrapperConfig {
            app_name: "telemetry-demo".into(),
            collector: Some(server.collector()),
            latency_histograms: true,
            flight_recorder: Some(8),
            ..WrapperConfig::default()
        };
        let lib = build_wrapper(WrapperKind::Profiling, &tiny_api(), &config);
        let mut p = libc_proc();
        let s = p.alloc_cstr("abcd");
        lib.get("strlen").unwrap().call(&mut p, &[CVal::Ptr(s)]).unwrap();
        let err = lib.get("exit").unwrap().call(&mut p, &[CVal::Int(0)]).unwrap_err();
        assert_eq!(err, Fault::Exit(0));
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        let doc = &collected.submissions[0].document;
        assert!(doc.contains("name=\"latency-histogram\""), "{doc}");
        assert!(doc.contains("<latency stage=\"call\""), "{doc}");
        assert!(doc.contains("<flight-recorder entries="), "{doc}");
        assert!(doc.contains("function=\"strlen\""), "{doc}");
    }

    #[test]
    fn different_wrappers_from_same_api_differ() {
        let api = tiny_api();
        let r = build_wrapper(WrapperKind::Robustness, &api, &WrapperConfig::default());
        let s = build_wrapper(WrapperKind::Security, &api, &WrapperConfig::default());
        let p = build_wrapper(WrapperKind::Profiling, &api, &WrapperConfig::default());
        assert_ne!(r.wrapped_names(), s.wrapped_names());
        assert_eq!(p.len(), api.functions.len());
        assert_ne!(r.source, p.source);
    }
}
