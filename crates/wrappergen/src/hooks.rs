//! The concrete runtime hooks: one per micro-generator family.

use std::collections::BTreeSet;
use std::sync::Arc;

use cdecl::CType;
use guardian::{CanaryRegistry, GuardOracle, CANARY_LEN};
use profiler::{
    Collector, FlightRecorder, HealAction, HealEvent, HealingJournal, ManufacturedRead,
    ObliviousAudit, Stats, TaintedUse,
};
use simproc::{errno, CVal, Fault, VirtAddr};
use typelattice::SafePred;

use crate::oblivious::{oblivious_fault_value, oblivious_outcome, ObliviousCx};
use crate::policy::{apply_repair, Policy, PolicyEngine, ViolationClass};
use crate::runtime::{
    containment_value, reject, CallCx, CallLog, FailAction, FaultDecision, Hook,
    HookAction, HookOp, Lowered, PlannedCheck,
};

/// `arg check` / `heal args`: evaluates the robust argument types derived
/// by the fault injector before every call and responds to violations
/// according to the wrapper's [`PolicyEngine`] — contain, terminate,
/// repair in place, or skip the call obliviously. Healing actions are
/// recorded in the attached [`HealingJournal`].
pub struct ArgCheckHook {
    preds: Vec<SafePred>,
    ret: CType,
    oracle: GuardOracle,
    engine: PolicyEngine,
    journal: Option<Arc<HealingJournal>>,
    /// When set, the hook records `check` / `heal` stage latency
    /// histograms. Forces the dynamic pipeline — only wire it into
    /// wrappers that are dynamic anyway (healing), never robustness.
    stats: Option<Arc<Stats>>,
    /// Where the predicates came from (`"campaign"` unless overridden
    /// with [`ArgCheckHook::with_provenance`]).
    provenance: &'static str,
    /// When set, every oblivious absorption (manufactured read,
    /// suppressed write) and every downstream consumption of a tainted
    /// manufactured value is ledgered here. Forces the dynamic pipeline:
    /// taint tracking is a per-call side effect.
    oblivious: Option<ObliviousAudit>,
    /// Functions whose static contract marks violated string inputs as
    /// NULL-tolerant — the oblivious engine manufactures a real empty
    /// string for their pointer returns instead of NULL.
    contract_defaults: Arc<BTreeSet<String>>,
}

impl std::fmt::Debug for ArgCheckHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArgCheckHook({:?})", self.engine)
    }
}

impl ArgCheckHook {
    /// Builds the hook for one function.
    pub fn new(
        preds: Vec<SafePred>,
        ret: CType,
        oracle: GuardOracle,
        engine: PolicyEngine,
    ) -> Self {
        ArgCheckHook {
            preds,
            ret,
            oracle,
            engine,
            journal: None,
            stats: None,
            provenance: "campaign",
            oblivious: None,
            contract_defaults: Arc::default(),
        }
    }

    /// Builds the hook with a healing audit journal attached.
    pub fn with_journal(
        preds: Vec<SafePred>,
        ret: CType,
        oracle: GuardOracle,
        engine: PolicyEngine,
        journal: Arc<HealingJournal>,
    ) -> Self {
        ArgCheckHook {
            preds,
            ret,
            oracle,
            engine,
            journal: Some(journal),
            stats: None,
            provenance: "campaign",
            oblivious: None,
            contract_defaults: Arc::default(),
        }
    }

    /// Attaches the oblivious-execution audit: every manufactured read,
    /// suppressed write and downstream tainted-value consumption is
    /// ledgered. Keeps the hook on the dynamic pipeline (taint tracking
    /// observes every call).
    #[must_use]
    pub fn with_oblivious(mut self, audit: ObliviousAudit) -> Self {
        self.oblivious = Some(audit);
        self
    }

    /// Names the functions whose static contract tolerates NULL string
    /// inputs — for these, the oblivious engine's pointer returns are
    /// manufactured empty strings rather than NULL.
    #[must_use]
    pub fn with_contract_defaults(mut self, names: Arc<BTreeSet<String>>) -> Self {
        self.contract_defaults = names;
        self
    }

    /// Attaches a statistics table: the hook then records `check` (the
    /// whole before-call validation) and `heal` (each repair) stage
    /// latencies into per-function log2 histograms. This keeps the hook
    /// on the dynamic pipeline, so only wire it into wrapper kinds that
    /// are dynamic anyway.
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<Stats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Tags the hook's checks with where they came from — `"contract"`
    /// for checks seeded by static contract inference rather than a
    /// fault-injection campaign. The tag surfaces in [`crate::CallModel`]
    /// ops and lint findings.
    #[must_use]
    pub fn with_provenance(mut self, tag: &'static str) -> Self {
        self.provenance = tag;
        self
    }

    fn journal(
        &self,
        func: &str,
        arg: Option<usize>,
        pred: Option<&SafePred>,
        class: Option<ViolationClass>,
        action: HealAction,
        detail: impl Into<String>,
    ) {
        if let Some(j) = &self.journal {
            j.record(HealEvent {
                func: func.to_string(),
                arg,
                violation: pred.map(|p| p.to_string()).unwrap_or_default(),
                class: class.map(|c| c.tag().to_string()).unwrap_or_default(),
                action,
                detail: detail.into(),
            });
        }
    }

    /// One healing pass: repairs every currently-violated healable
    /// predicate once. Returns the number of repairs applied, or `None`
    /// when a violation had no safe repair.
    fn heal_pass(&self, cx: &mut CallCx<'_>) -> Option<usize> {
        let mut repaired = 0;
        for (i, pred) in self.preds.iter().enumerate() {
            if *pred == SafePred::Always {
                continue;
            }
            if pred.check(cx.proc, &self.oracle, &cx.args, i) {
                continue;
            }
            let class = ViolationClass::of(pred, cx.args[i]);
            match apply_repair(cx.proc, &self.oracle, &mut cx.args, pred, i) {
                Some(desc) => {
                    self.journal(
                        cx.func,
                        Some(i),
                        Some(pred),
                        Some(class),
                        HealAction::Repaired,
                        desc,
                    );
                    repaired += 1;
                }
                None => return None,
            }
        }
        Some(repaired)
    }

    /// Propagation audit: any pointer argument equal to a value the
    /// oblivious engine previously manufactured marks this call as a
    /// downstream consumer of tainted data.
    fn record_tainted_uses(&self, cx: &CallCx<'_>) {
        if let Some(audit) = &self.oblivious {
            for (i, v) in cx.args.iter().enumerate() {
                if let CVal::Ptr(p) = v {
                    if audit.is_tainted(p.get()) {
                        audit.record_use(TaintedUse {
                            func: cx.func.to_string(),
                            arg: i,
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
    }

    /// The full before-call validation loop; see [`Hook::before`] for
    /// why it re-checks from the top after every repair.
    fn check_and_heal(&self, cx: &mut CallCx<'_>) -> HookAction {
        self.record_tainted_uses(cx);
        // Repairs can shift which predicate is violated (a substituted
        // destination makes the copy fit; a clamped count makes the
        // buffer large enough), so healing re-checks from the top after
        // every repair. The pass budget guarantees convergence: each
        // pass either repairs at least one argument or exits.
        let budget = 2 * self.preds.len() + 4;
        let mut passes = 0;
        'recheck: loop {
            for (i, pred) in self.preds.iter().enumerate() {
                if *pred == SafePred::Always {
                    continue;
                }
                if pred.check(cx.proc, &self.oracle, &cx.args, i) {
                    continue;
                }
                let class = ViolationClass::of(pred, cx.args[i]);
                match self.engine.resolve(cx.func, class) {
                    Policy::Observe => {
                        self.journal(
                            cx.func,
                            Some(i),
                            Some(pred),
                            Some(class),
                            HealAction::Observed,
                            "violation observed, call passed through",
                        );
                        continue;
                    }
                    Policy::Contain => {
                        self.journal(
                            cx.func,
                            Some(i),
                            Some(pred),
                            Some(class),
                            HealAction::Contained,
                            "rejected with EINVAL",
                        );
                        return reject(cx.proc, &self.ret);
                    }
                    Policy::Terminate => {
                        self.journal(
                            cx.func,
                            Some(i),
                            Some(pred),
                            Some(class),
                            HealAction::Terminated,
                            "process terminated",
                        );
                        return HookAction::Deny(Fault::security(format!(
                            "{}: argument {} violates robust type `{pred}`",
                            cx.func,
                            i + 1
                        )));
                    }
                    Policy::Oblivious => {
                        let ocx = ObliviousCx {
                            func: cx.func,
                            arg: i,
                            pred,
                            class,
                            ret: &self.ret,
                            null_defaults: &self.contract_defaults,
                        };
                        let args = cx.args.clone();
                        let out = oblivious_outcome(&ocx, cx.proc, &self.oracle, &args);
                        if let Some(audit) = &self.oblivious {
                            match &out.write {
                                Some(w) => audit.record_write(w.clone()),
                                None => audit.record_read(
                                    ManufacturedRead {
                                        func: cx.func.to_string(),
                                        arg: Some(i),
                                        class: class.tag().to_string(),
                                        role: out.role.to_string(),
                                        value: out.ret.to_string(),
                                        detail: out.detail.clone(),
                                    },
                                    out.taint,
                                ),
                            }
                        }
                        self.journal(
                            cx.func,
                            Some(i),
                            Some(pred),
                            Some(class),
                            HealAction::Obliviated,
                            out.detail,
                        );
                        return HookAction::ShortCircuit(out.ret);
                    }
                    Policy::Heal | Policy::Retry { .. } => {
                        passes += 1;
                        if passes > budget {
                            self.journal(
                                cx.func,
                                Some(i),
                                Some(pred),
                                Some(class),
                                HealAction::Contained,
                                "healing did not converge",
                            );
                            return reject(cx.proc, &self.ret);
                        }
                        let heal_start = cx.proc.cycles();
                        match apply_repair(cx.proc, &self.oracle, &mut cx.args, pred, i) {
                            Some(desc) => {
                                if let Some(stats) = &self.stats {
                                    stats.record_latency(
                                        cx.func,
                                        "heal",
                                        cx.proc.cycles().saturating_sub(heal_start),
                                    );
                                }
                                self.journal(
                                    cx.func,
                                    Some(i),
                                    Some(pred),
                                    Some(class),
                                    HealAction::Repaired,
                                    desc,
                                );
                                continue 'recheck;
                            }
                            None => {
                                self.journal(
                                    cx.func,
                                    Some(i),
                                    Some(pred),
                                    Some(class),
                                    HealAction::Contained,
                                    "no safe repair exists",
                                );
                                return reject(cx.proc, &self.ret);
                            }
                        }
                    }
                }
            }
            return HookAction::Continue;
        }
    }
}

impl Hook for ArgCheckHook {
    fn name(&self) -> &'static str {
        "arg check"
    }

    fn lower(&self, _proto: &cdecl::Prototype) -> Lowered {
        // The accept path of `before` — every non-`Always` predicate
        // passes — is pure: no journal entry, no argument rewrite, no
        // scratch, regardless of policy. So it lowers for *every* engine.
        // The on-fail response is precomputable only for the uniform
        // containment engine with no journal: then the dynamic path is
        // exactly `reject` whatever predicate fired; anything else
        // (healing, termination, per-class overrides, journaling) falls
        // back to the dynamic pipeline to replay policy faithfully.
        // Stage-latency recording is a per-call side effect `before`
        // must observe on every call, accept path included — it keeps
        // the whole pipeline dynamic.
        // The oblivious audit is a per-call side effect too: taint
        // propagation has to observe every call's arguments, accept path
        // included.
        if self.stats.is_some() || self.oblivious.is_some() {
            return Lowered::Dynamic;
        }
        let on_fail = match self.engine.uniform() {
            Some(Policy::Contain) if self.journal.is_none() => FailAction::Reject,
            _ => FailAction::Fallback,
        };
        let checks = self
            .preds
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != SafePred::Always)
            .map(|(i, p)| {
                let pred = p.clone();
                let oracle = self.oracle.clone();
                PlannedCheck {
                    check: Box::new(move |proc: &simproc::Proc, args: &[CVal]| {
                        pred.check(proc, &oracle, args, i)
                    }),
                    on_fail,
                    arg: Some(i),
                    pred: Some(p.clone()),
                    oracle: Some(Arc::new(self.oracle.clone())),
                }
            })
            .collect();
        Lowered::Checks(checks)
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        // Every `SafePred::check` evaluator tests for NULL before any
        // memory scan (`peek_cstr_len` returns `None` on NULL), so the
        // checks are null-guarded by construction.
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != SafePred::Always)
            .map(|(i, p)| HookOp::Check {
                arg: i,
                pred: Some(p.clone()),
                label: p.to_string(),
                null_guarded: true,
                // The hook cannot know whether the plan compiler will
                // memoize; when it does, the kernel see-through model
                // replaces this description.
                memoized: false,
            })
            .collect()
    }

    fn provenance(&self) -> &str {
        self.provenance
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        match &self.stats {
            None => self.check_and_heal(cx),
            Some(stats) => {
                let start = cx.proc.cycles();
                let action = self.check_and_heal(cx);
                stats.record_latency(
                    cx.func,
                    "check",
                    cx.proc.cycles().saturating_sub(start),
                );
                action
            }
        }
    }

    fn on_fault(&self, cx: &mut CallCx<'_>, fault: &Fault, attempt: u32) -> FaultDecision {
        match self.engine.fault_policy(cx.func) {
            // The classic wrappers let residual faults propagate — the
            // caller (or the fault injector's outcome scale) sees them.
            // Observe does too, by definition: the fleet's baseline
            // posture keeps crashes visible so the remediation director
            // has a signal to escalate on.
            Policy::Observe | Policy::Contain | Policy::Terminate => {
                FaultDecision::Propagate
            }
            Policy::Oblivious => {
                // The check passed but the original still faulted (a
                // check-evading violation): absorb it as a manufactured
                // as-if-empty completion, errno untouched.
                let value = oblivious_fault_value(&self.ret);
                let detail = format!("fault absorbed obliviously: {fault}");
                if let Some(audit) = &self.oblivious {
                    audit.record_read(
                        ManufacturedRead {
                            func: cx.func.to_string(),
                            arg: None,
                            class: fault.tag().to_string(),
                            role: "fault-absorb".to_string(),
                            value: value.to_string(),
                            detail: detail.clone(),
                        },
                        None,
                    );
                }
                self.journal(cx.func, None, None, None, HealAction::Obliviated, detail);
                FaultDecision::Substitute(value)
            }
            Policy::Heal => {
                self.journal(
                    cx.func,
                    None,
                    None,
                    None,
                    HealAction::Substituted,
                    format!("fault contained: {fault}"),
                );
                cx.proc.set_errno(errno::EINVAL);
                FaultDecision::Substitute(containment_value(&self.ret))
            }
            Policy::Retry { max_attempts } => {
                // A hang means the call's fuel is already spent; running
                // it again can only hang again.
                let retryable = !matches!(fault, Fault::Hang);
                if retryable && attempt < max_attempts {
                    if let Some(repaired) = self.heal_pass(cx) {
                        if repaired > 0 {
                            self.journal(
                                cx.func,
                                None,
                                None,
                                None,
                                HealAction::Retried,
                                format!("retry {} after {fault}", attempt + 1),
                            );
                            return FaultDecision::Retry;
                        }
                    }
                }
                self.journal(
                    cx.func,
                    None,
                    None,
                    None,
                    HealAction::Substituted,
                    format!("fault contained: {fault}"),
                );
                cx.proc.set_errno(errno::EINVAL);
                FaultDecision::Substitute(containment_value(&self.ret))
            }
        }
    }
}

/// `canary check` on the allocator family: over-allocate, write guard
/// words, verify before `free`/`realloc` touch metadata.
#[derive(Debug)]
pub struct CanaryHook {
    registry: Arc<CanaryRegistry>,
}

impl CanaryHook {
    /// Builds the hook over a shared registry.
    pub fn new(registry: Arc<CanaryRegistry>) -> Self {
        CanaryHook { registry }
    }

    fn verify_or_deny(&self, cx: &mut CallCx<'_>, ptr: VirtAddr) -> HookAction {
        match self.registry.verify(cx.proc, ptr) {
            Ok(_) => HookAction::Continue,
            Err(violation) => HookAction::Deny(violation.fault()),
        }
    }
}

impl Hook for CanaryHook {
    fn name(&self) -> &'static str {
        "canary check"
    }

    fn lower(&self, proto: &cdecl::Prototype) -> Lowered {
        // Outside the allocator family both `before` and `after` fall
        // through to no-ops, so the hook contributes no checks at all.
        // For the family itself (bookkeeping side effects) stay dynamic.
        match proto.name.as_str() {
            "malloc" | "calloc" | "free" | "realloc" | "exit" => Lowered::Dynamic,
            _ => Lowered::Checks(Vec::new()),
        }
    }

    fn describe(&self, proto: &cdecl::Prototype) -> Vec<HookOp> {
        let mutate = |arg: usize| HookOp::Mutate {
            arg,
            label: "inflate allocation size by the guard word".to_string(),
        };
        let verify = |arg: usize| HookOp::Check {
            arg,
            pred: None,
            label: "verify heap canary".to_string(),
            null_guarded: true, // `before` tests the pointer for NULL first
            memoized: false,
        };
        match proto.name.as_str() {
            "malloc" => vec![mutate(0)],
            "calloc" => vec![mutate(0), mutate(1)],
            "free" => vec![verify(0)],
            "realloc" => vec![verify(0), mutate(1)],
            "exit" => vec![HookOp::Observe], // terminal heap sweep
            _ => Vec::new(),
        }
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        match cx.func {
            "malloc" => {
                let requested = cx.args.first().copied().unwrap_or(CVal::Int(0)).as_usize();
                // A request so large that adding the guard word wraps can
                // only fail anyway: leave it to the original (it returns
                // NULL) rather than shrink it into a bogus success.
                let Some(inflated) = requested.checked_add(CANARY_LEN) else {
                    cx.scratch.push(u64::MAX);
                    return HookAction::Continue;
                };
                cx.scratch.push(requested);
                cx.args[0] = CVal::Int(inflated as i64);
                HookAction::Continue
            }
            "calloc" => {
                let nmemb = cx.args.first().copied().unwrap_or(CVal::Int(0)).as_usize();
                let size = cx.args.get(1).copied().unwrap_or(CVal::Int(0)).as_usize();
                let total = match nmemb.checked_mul(size) {
                    Some(t) if t.checked_add(CANARY_LEN).is_some() => t,
                    _ => {
                        // Leave the overflow to the original (returns NULL).
                        cx.scratch.push(u64::MAX);
                        return HookAction::Continue;
                    }
                };
                cx.scratch.push(total);
                cx.args = vec![CVal::Int(1), CVal::Int((total + CANARY_LEN) as i64)];
                HookAction::Continue
            }
            "free" => {
                let ptr = cx.args.first().copied().unwrap_or(CVal::NULL).as_ptr();
                if ptr.is_null() {
                    return HookAction::Continue;
                }
                let action = self.verify_or_deny(cx, ptr);
                if action == HookAction::Continue {
                    self.registry.release(ptr);
                }
                action
            }
            "realloc" => {
                let ptr = cx.args.first().copied().unwrap_or(CVal::NULL).as_ptr();
                let requested = cx.args.get(1).copied().unwrap_or(CVal::Int(0)).as_usize();
                if !ptr.is_null() {
                    let action = self.verify_or_deny(cx, ptr);
                    if action != HookAction::Continue {
                        return action;
                    }
                }
                match requested.checked_add(CANARY_LEN) {
                    Some(inflated) => {
                        cx.scratch.push(requested);
                        if requested > 0 {
                            cx.args[1] = CVal::Int(inflated as i64);
                        }
                    }
                    None => cx.scratch.push(u64::MAX), // let the original fail
                }
                HookAction::Continue
            }
            "exit" => {
                // Final sweep before atexit handlers run — the last
                // chance to catch a smashed heap before hijack.
                match self.registry.sweep(cx.proc) {
                    Ok(()) => HookAction::Continue,
                    Err(violation) => HookAction::Deny(violation.fault()),
                }
            }
            _ => HookAction::Continue,
        }
    }

    fn after(&self, cx: &mut CallCx<'_>, result: &mut Result<CVal, Fault>) {
        match cx.func {
            "malloc" | "calloc" => {
                let requested = cx.scratch.pop().unwrap_or(0);
                if requested == u64::MAX {
                    return; // overflow case, nothing allocated
                }
                if let Ok(v) = result {
                    let ptr = v.as_ptr();
                    if !ptr.is_null() {
                        if let Err(f) = self.registry.protect(cx.proc, ptr, requested) {
                            *result = Err(f);
                        }
                    }
                }
            }
            "realloc" => {
                let requested = cx.scratch.pop().unwrap_or(0);
                if requested == u64::MAX {
                    return; // overflow case, left to the original
                }
                let old = cx.args.first().copied().unwrap_or(CVal::NULL).as_ptr();
                if let Ok(v) = result {
                    let new_ptr = v.as_ptr();
                    if requested == 0 {
                        // realloc(p, 0) freed it.
                        self.registry.release(old);
                    } else if !new_ptr.is_null() {
                        self.registry.release(old);
                        if let Err(f) = self.registry.protect(cx.proc, new_ptr, requested) {
                            *result = Err(f);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// `call counter`.
#[derive(Debug)]
pub struct CallCounterHook {
    stats: Arc<Stats>,
}

impl CallCounterHook {
    /// Builds the hook over shared statistics.
    pub fn new(stats: Arc<Stats>) -> Self {
        CallCounterHook { stats }
    }
}

impl Hook for CallCounterHook {
    fn name(&self) -> &'static str {
        "call counter"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        self.stats.record_count(cx.func);
        HookAction::Continue
    }
}

/// `function exectime`: the rdtsc pair, via the deterministic cycle
/// counter.
#[derive(Debug)]
pub struct ExectimeHook {
    stats: Arc<Stats>,
    latency: bool,
}

impl ExectimeHook {
    /// Builds the hook over shared statistics.
    pub fn new(stats: Arc<Stats>) -> Self {
        ExectimeHook { stats, latency: false }
    }

    /// Builds the hook so every measured call also feeds the `call`
    /// stage log2 latency histogram of its function.
    pub fn with_latency(stats: Arc<Stats>) -> Self {
        ExectimeHook { stats, latency: true }
    }
}

impl Hook for ExectimeHook {
    fn name(&self) -> &'static str {
        "function exectime"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        cx.scratch.push(cx.proc.cycles());
        HookAction::Continue
    }

    fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
        let start = cx.scratch.pop().unwrap_or(cx.entry_cycles);
        let end = cx.proc.cycles();
        let delta = end.saturating_sub(start);
        self.stats.record_cycles(cx.func, delta);
        if self.latency {
            self.stats.record_latency(cx.func, "call", delta);
        }
    }
}

/// `func errors`: per-function errno histogram.
#[derive(Debug)]
pub struct FuncErrorsHook {
    stats: Arc<Stats>,
}

impl FuncErrorsHook {
    /// Builds the hook over shared statistics.
    pub fn new(stats: Arc<Stats>) -> Self {
        FuncErrorsHook { stats }
    }
}

impl Hook for FuncErrorsHook {
    fn name(&self) -> &'static str {
        "func error"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        cx.scratch.push(cx.proc.errno() as u64);
        HookAction::Continue
    }

    fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
        let before = cx.scratch.pop().unwrap_or(0) as i32;
        let now = cx.proc.errno();
        if now != before {
            self.stats.record_func_errno(cx.func, now);
        }
    }
}

/// `collect errors`: process-wide errno histogram.
#[derive(Debug)]
pub struct CollectErrorsHook {
    stats: Arc<Stats>,
}

impl CollectErrorsHook {
    /// Builds the hook over shared statistics.
    pub fn new(stats: Arc<Stats>) -> Self {
        CollectErrorsHook { stats }
    }
}

impl Hook for CollectErrorsHook {
    fn name(&self) -> &'static str {
        "collect errors"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        cx.scratch.push(cx.proc.errno() as u64);
        HookAction::Continue
    }

    fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
        let before = cx.scratch.pop().unwrap_or(0) as i32;
        let now = cx.proc.errno();
        if now != before {
            self.stats.record_global_errno(now);
        }
    }
}

/// `log call`: appends `func(arg, ...)` to a shared log.
#[derive(Debug)]
pub struct LogCallHook {
    log: CallLog,
}

impl LogCallHook {
    /// Builds the hook over a shared log.
    pub fn new(log: CallLog) -> Self {
        LogCallHook { log }
    }
}

impl Hook for LogCallHook {
    fn name(&self) -> &'static str {
        "log call"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        let args = cx.args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ");
        self.log.lock().push(format!("{}({args})", cx.func));
        HookAction::Continue
    }
}

/// Flight recorder: appends every call — function, rendered arguments,
/// final verdict, cycles spent — to a bounded ring shared by the whole
/// wrapper library. Installed *first* in the pipeline so its `after`
/// runs last and observes the final result, including faults raised and
/// substitutions made by every other hook. Per-call recording is a side
/// effect, so the hook keeps its pipeline dynamic — it is opt-in via
/// [`crate::WrapperConfig::flight_recorder`], never on by default.
#[derive(Debug)]
pub struct FlightRecorderHook {
    recorder: Arc<FlightRecorder>,
}

impl FlightRecorderHook {
    /// Builds the hook over a shared ring.
    pub fn new(recorder: Arc<FlightRecorder>) -> Self {
        FlightRecorderHook { recorder }
    }
}

impl Hook for FlightRecorderHook {
    fn name(&self) -> &'static str {
        "flight recorder"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn after(&self, cx: &mut CallCx<'_>, result: &mut Result<CVal, Fault>) {
        let args = format!(
            "({})",
            cx.args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
        );
        let verdict = match result {
            Ok(_) => "ok".to_string(),
            Err(f) => f.to_string(),
        };
        let cycles = cx.proc.cycles().saturating_sub(cx.entry_cycles);
        self.recorder.record(cx.func, &args, &verdict, cycles);
    }
}

/// At-termination reporting: "Just before the application terminates,
/// the collection code is called to send the gathered information to a
/// central server" (§2.3). Hooked onto `exit`.
#[derive(Debug)]
pub struct ExitReportHook {
    stats: Arc<Stats>,
    app: String,
    wrapper: &'static str,
    collector: Option<Collector>,
    fleet: Option<profiler::FleetCollector>,
    journal: Option<Arc<HealingJournal>>,
    flight: Option<Arc<FlightRecorder>>,
    oblivious: Option<ObliviousAudit>,
}

impl ExitReportHook {
    /// Builds the hook.
    pub fn new(
        stats: Arc<Stats>,
        app: impl Into<String>,
        wrapper: &'static str,
        collector: Collector,
    ) -> Self {
        ExitReportHook {
            stats,
            app: app.into(),
            wrapper,
            collector: Some(collector),
            fleet: None,
            journal: None,
            flight: None,
            oblivious: None,
        }
    }

    /// Builds the hook with a healing audit journal: the shipped document
    /// carries the `<healing>` event stream next to the call statistics.
    pub fn with_journal(
        stats: Arc<Stats>,
        app: impl Into<String>,
        wrapper: &'static str,
        collector: Collector,
        journal: Arc<HealingJournal>,
    ) -> Self {
        ExitReportHook {
            stats,
            app: app.into(),
            wrapper,
            collector: Some(collector),
            fleet: None,
            journal: Some(journal),
            flight: None,
            oblivious: None,
        }
    }

    /// Builds the hook shipping to a fleet service only: the document is
    /// the fleet variant, stamped with the process's fleet identity, and
    /// submitted with the service's back-pressure resolved (retry hints
    /// honoured until the document is accepted or definitively shed).
    pub fn fleet_only(
        stats: Arc<Stats>,
        app: impl Into<String>,
        wrapper: &'static str,
        fleet: profiler::FleetCollector,
        journal: Option<Arc<HealingJournal>>,
    ) -> Self {
        ExitReportHook {
            stats,
            app: app.into(),
            wrapper,
            collector: None,
            fleet: Some(fleet),
            journal,
            flight: None,
            oblivious: None,
        }
    }

    /// Attaches a fleet collector next to the central-server collector:
    /// the hook then ships to both sinks at `exit`.
    #[must_use]
    pub fn with_fleet(mut self, fleet: profiler::FleetCollector) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Attaches a flight recorder: the shipped document then carries the
    /// `<flight-recorder>` tail of last-N calls next to the statistics.
    #[must_use]
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Attaches the oblivious-execution audit: when the audit is
    /// non-empty at exit, the shipped document carries the `<oblivious>`
    /// section (manufactured reads, suppressed writes, tainted-value
    /// consumptions) next to the healing journal.
    #[must_use]
    pub fn with_oblivious(mut self, audit: ObliviousAudit) -> Self {
        self.oblivious = Some(audit);
        self
    }
}

impl Hook for ExitReportHook {
    fn name(&self) -> &'static str {
        "collect"
    }

    fn describe(&self, _proto: &cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Observe]
    }

    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        if cx.func == "exit" {
            let snap = self.stats.snapshot();
            let events = self.journal.as_ref().map(|j| j.snapshot());
            // An empty audit contributes no section (the document stays
            // byte-identical to the audit-free form), so the oblivious
            // path is only taken when something was actually absorbed.
            let oblivious =
                self.oblivious.as_ref().map(|a| a.snapshot()).filter(|s| !s.is_empty());
            if let Some(collector) = &self.collector {
                let tail = self.flight.as_ref().map(|f| f.tail()).unwrap_or_default();
                let doc = if let Some(osnap) = &oblivious {
                    profiler::to_xml_with_oblivious(
                        &self.app,
                        self.wrapper,
                        None,
                        &snap,
                        events.as_deref(),
                        &tail,
                        osnap,
                    )
                } else if !tail.is_empty() {
                    profiler::to_xml_with_flight(
                        &self.app,
                        self.wrapper,
                        &snap,
                        events.as_deref(),
                        &tail,
                    )
                } else {
                    match &events {
                        Some(ev) => profiler::to_xml_with_healing(
                            &self.app,
                            self.wrapper,
                            &snap,
                            ev,
                        ),
                        None => profiler::to_xml(&self.app, self.wrapper, &snap),
                    }
                };
                collector.submit(doc);
            }
            if let Some(fleet) = &self.fleet {
                let (instance, window, _seed) =
                    cx.proc.fleet_identity().unwrap_or((0, 0, 0));
                let meta =
                    profiler::FleetMeta { instance, window, crashed_in: None, fault: None };
                let doc = if let Some(osnap) = &oblivious {
                    profiler::to_xml_with_oblivious(
                        &self.app,
                        self.wrapper,
                        Some(&meta),
                        &snap,
                        events.as_deref(),
                        &[],
                        osnap,
                    )
                } else {
                    profiler::to_xml_for_fleet(
                        &self.app,
                        self.wrapper,
                        &meta,
                        &snap,
                        events.as_deref(),
                    )
                };
                fleet.submit_until_accepted(&doc);
            }
        }
        HookAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::WrappedFn;
    use cdecl::{parse_prototype, TypedefTable};
    use simlibc::testutil::libc_proc;
    use simproc::errno::EINVAL;

    fn proto(s: &str) -> cdecl::Prototype {
        parse_prototype(s, &TypedefTable::with_builtins()).unwrap()
    }

    fn oracle() -> GuardOracle {
        GuardOracle::new(Arc::new(CanaryRegistry::new()))
    }

    #[test]
    fn arg_check_contains_a_null_strlen() {
        let p = proto("size_t strlen(const char *s);");
        let hook = ArgCheckHook::new(
            vec![SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::containment(),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        let r = f.call(&mut proc, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1));
        assert_eq!(proc.errno(), EINVAL);
        // Valid calls pass through untouched.
        let s = proc.alloc_cstr("ok");
        assert_eq!(f.call(&mut proc, &[CVal::Ptr(s)]).unwrap(), CVal::Int(2));
    }

    #[test]
    fn arg_check_terminate_mode_denies() {
        let p = proto("char *strcpy(char *dest, const char *src);");
        let hook = ArgCheckHook::new(
            vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::terminating(),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strcpy").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        let small = simlibc::heap::malloc(&mut proc, 4).unwrap();
        let big = proc.alloc_cstr(&"A".repeat(100));
        let err = f.call(&mut proc, &[CVal::Ptr(small), CVal::Ptr(big)]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }), "{err}");
    }

    #[test]
    fn heal_policy_repairs_an_oversized_strcpy() {
        let p = proto("char *strcpy(char *dest, const char *src);");
        let journal = Arc::new(HealingJournal::new());
        let o = oracle();
        let hook = ArgCheckHook::with_journal(
            vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
            p.ret.clone(),
            o.clone(),
            PolicyEngine::healing(),
            Arc::clone(&journal),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strcpy").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        let small = simlibc::heap::malloc(&mut proc, 4).unwrap();
        use simproc::ExtentOracle as _;
        let ext = o.writable_extent(&proc, small).unwrap();
        let big = proc.alloc_cstr(&"A".repeat(100));
        // The overflow becomes a truncated, in-bounds copy.
        let r = f.call(&mut proc, &[CVal::Ptr(small), CVal::Ptr(big)]).unwrap();
        assert_eq!(r, CVal::Ptr(small));
        assert_eq!(proc.read_cstr_lossy(small), "A".repeat(ext as usize - 1));
        assert_eq!(
            journal.count(profiler::HealAction::Repaired),
            1,
            "{:?}",
            journal.snapshot()
        );
    }

    #[test]
    fn heal_policy_substitutes_for_a_null_strlen() {
        let p = proto("size_t strlen(const char *s);");
        let journal = Arc::new(HealingJournal::new());
        let hook = ArgCheckHook::with_journal(
            vec![SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::healing(),
            Arc::clone(&journal),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        // strlen(NULL) heals to strlen("") == 0 instead of crashing or
        // being rejected.
        let r = f.call(&mut proc, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(0));
        assert!(!journal.is_empty());
        let ev = &journal.snapshot()[0];
        assert_eq!(ev.class, "null-pointer");
        assert_eq!(ev.action, profiler::HealAction::Repaired);
    }

    #[test]
    fn oblivious_policy_skips_the_call_without_errno() {
        let p = proto("size_t strlen(const char *s);");
        let hook = ArgCheckHook::new(
            vec![SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::new(crate::policy::Policy::Oblivious),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        let errno_before = proc.errno();
        let r = f.call(&mut proc, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(0), "NULL scans as a manufactured empty string");
        assert_eq!(proc.errno(), errno_before, "errno untouched");
    }

    #[test]
    fn oblivious_audit_ledgers_reads_writes_and_tainted_uses() {
        let audit = ObliviousAudit::new();
        let defaults: Arc<BTreeSet<String>> =
            Arc::new(["strstr".to_string()].into_iter().collect());
        let engine = PolicyEngine::new(crate::policy::Policy::Oblivious);
        let o = oracle();
        let mk = |sig: &str, name: &str, preds: Vec<SafePred>| {
            let p = proto(sig);
            let hook = ArgCheckHook::new(preds, p.ret.clone(), o.clone(), engine.clone())
                .with_oblivious(audit.clone())
                .with_contract_defaults(Arc::clone(&defaults));
            let f = WrappedFn::new(
                p,
                simlibc::find_symbol(name).unwrap().imp,
                vec![Arc::new(hook)],
            );
            assert!(!f.has_plan(), "the audit must force the dynamic pipeline");
            f
        };
        let strcpy = mk(
            "char *strcpy(char *dest, const char *src);",
            "strcpy",
            vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
        );
        let strstr = mk(
            "char *strstr(const char *haystack, const char *needle);",
            "strstr",
            vec![SafePred::CStr, SafePred::CStr],
        );
        let strlen = mk("size_t strlen(const char *s);", "strlen", vec![SafePred::CStr]);

        let mut proc = libc_proc();
        // A suppressed overflow: the destination is untouched, the write
        // is measured and attributed.
        let dest = simlibc::heap::malloc(&mut proc, 8).unwrap();
        let big = proc.alloc_cstr(&"A".repeat(60));
        let r = strcpy.call(&mut proc, &[CVal::Ptr(dest), CVal::Ptr(big)]).unwrap();
        assert_eq!(r, CVal::Ptr(dest), "reports success");
        assert_eq!(proc.read_cstr_lossy(dest), "", "nothing was written");

        // A contract-derived manufactured pointer, then a downstream
        // consumer of it: the taint propagates into the audit.
        let needle = proc.alloc_cstr("x");
        let fabricated =
            strstr.call(&mut proc, &[CVal::NULL, CVal::Ptr(needle)]).unwrap().as_ptr();
        assert!(!fabricated.is_null());
        let n = strlen.call(&mut proc, &[CVal::Ptr(fabricated)]).unwrap();
        assert_eq!(n, CVal::Int(0), "the manufactured empty string scans clean");

        let snap = audit.snapshot();
        assert_eq!(snap.writes.len(), 1, "{snap:?}");
        assert_eq!(snap.writes[0].func, "strcpy");
        assert_eq!(snap.writes[0].attempted, 61);
        assert!(snap.writes[0].clipped > 0);
        assert!(
            snap.reads.iter().any(|r| r.func == "strstr" && r.role == "contract-default"),
            "{snap:?}"
        );
        assert!(
            snap.uses.iter().any(|u| u.func == "strlen" && u.arg == 0),
            "downstream consumption must be audited: {snap:?}"
        );
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn unfixable_violation_falls_back_to_containment() {
        let p = proto("int fclose(FILE *stream);");
        let journal = Arc::new(HealingJournal::new());
        let hook = ArgCheckHook::with_journal(
            vec![SafePred::ValidFilePtr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::healing(),
            Arc::clone(&journal),
        );
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("fclose").unwrap().imp,
            vec![Arc::new(hook)],
        );
        let mut proc = libc_proc();
        let bogus = proc.alloc_data_zeroed(16);
        let r = f.call(&mut proc, &[CVal::Ptr(bogus)]).unwrap();
        assert_eq!(r, CVal::Int(-1));
        assert_eq!(proc.errno(), EINVAL);
        assert_eq!(journal.count(profiler::HealAction::Contained), 1);
    }

    fn canary_wrapped(name: &str, registry: &Arc<CanaryRegistry>) -> WrappedFn {
        let sym = simlibc::find_symbol(name).unwrap();
        let p = simlibc::prototypes().into_iter().find(|p| p.name == name).unwrap();
        WrappedFn::new(p, sym.imp, vec![Arc::new(CanaryHook::new(Arc::clone(registry)))])
    }

    #[test]
    fn canary_hook_protects_malloc_and_checks_free() {
        let registry = Arc::new(CanaryRegistry::new());
        let malloc = canary_wrapped("malloc", &registry);
        let free = canary_wrapped("free", &registry);
        let mut p = libc_proc();
        let buf = malloc.call(&mut p, &[CVal::Int(16)]).unwrap().as_ptr();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.extent_within(buf), Some(16));
        // Clean free passes and releases.
        free.call(&mut p, &[CVal::Ptr(buf)]).unwrap();
        assert!(registry.is_empty());

        // Overflow then free: denied.
        let buf = malloc.call(&mut p, &[CVal::Int(8)]).unwrap().as_ptr();
        p.mem.write_bytes(buf, &[0x41; 9]).unwrap(); // one byte too many
        let err = free.call(&mut p, &[CVal::Ptr(buf)]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
    }

    #[test]
    fn canary_hook_calloc_and_realloc() {
        let registry = Arc::new(CanaryRegistry::new());
        let calloc = canary_wrapped("calloc", &registry);
        let realloc = canary_wrapped("realloc", &registry);
        let mut p = libc_proc();
        let buf = calloc.call(&mut p, &[CVal::Int(4), CVal::Int(8)]).unwrap().as_ptr();
        assert_eq!(registry.extent_within(buf), Some(32));
        assert_eq!(p.read_bytes(buf, 32).unwrap(), vec![0u8; 32]);

        let grown =
            realloc.call(&mut p, &[CVal::Ptr(buf), CVal::Int(64)]).unwrap().as_ptr();
        assert_eq!(registry.extent_within(grown), Some(64));
        assert_eq!(registry.len(), 1, "old registration released");

        // realloc of a corrupted block is denied.
        p.mem.write_u8(grown.add(64), 1).unwrap();
        let err = realloc.call(&mut p, &[CVal::Ptr(grown), CVal::Int(128)]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
    }

    #[test]
    fn huge_allocation_requests_fail_cleanly_not_fatally() {
        // Inflating by the guard word must never wrap: malloc(huge)
        // returns NULL through the wrapper exactly as it does bare.
        let registry = Arc::new(CanaryRegistry::new());
        let malloc = canary_wrapped("malloc", &registry);
        let calloc = canary_wrapped("calloc", &registry);
        let realloc = canary_wrapped("realloc", &registry);
        let mut p = libc_proc();
        for huge in [u64::MAX, u64::MAX - 4] {
            let r = malloc.call(&mut p, &[CVal::Int(huge as i64)]).unwrap();
            assert!(r.is_null(), "malloc({huge:#x})");
        }
        let r = calloc.call(&mut p, &[CVal::Int(1), CVal::Int(-3)]).unwrap();
        assert!(r.is_null());
        let buf = malloc.call(&mut p, &[CVal::Int(16)]).unwrap();
        let r = realloc.call(&mut p, &[buf, CVal::Int(-2)]).unwrap();
        assert!(r.is_null(), "realloc to huge fails cleanly");
        // The original block survives the failed realloc, still guarded.
        assert!(registry.verify(&p, buf.as_ptr()).unwrap().is_some());
        assert_eq!(p.errno(), simproc::errno::ENOMEM);
    }

    #[test]
    fn exit_sweep_catches_smashed_heap() {
        let registry = Arc::new(CanaryRegistry::new());
        let malloc = canary_wrapped("malloc", &registry);
        let exit = canary_wrapped("exit", &registry);
        let mut p = libc_proc();
        let buf = malloc.call(&mut p, &[CVal::Int(8)]).unwrap().as_ptr();
        p.mem.write_u8(buf.add(8), 0x41).unwrap();
        let err = exit.call(&mut p, &[CVal::Int(0)]).unwrap_err();
        assert!(
            matches!(err, Fault::SecurityViolation { .. }),
            "sweep must fire before atexit handlers: {err}"
        );
    }

    #[test]
    fn profiling_hooks_fill_stats() {
        let stats = Arc::new(Stats::new());
        let p5 = proto("char *fgets(char *s, int size, FILE *stream);");
        let hooks: Vec<Arc<dyn Hook>> = vec![
            Arc::new(ExectimeHook::new(Arc::clone(&stats))),
            Arc::new(CollectErrorsHook::new(Arc::clone(&stats))),
            Arc::new(FuncErrorsHook::new(Arc::clone(&stats))),
            Arc::new(CallCounterHook::new(Arc::clone(&stats))),
        ];
        let f = WrappedFn::new(p5, simlibc::find_symbol("fgets").unwrap().imp, hooks);
        let mut proc = libc_proc();
        // A call that fails gracefully (bad FILE*).
        let fake = proc.alloc_data_zeroed(16);
        let buf = proc.alloc_data_zeroed(16);
        let r =
            f.call(&mut proc, &[CVal::Ptr(buf), CVal::Int(16), CVal::Ptr(fake)]).unwrap();
        assert!(r.is_null());
        let snap = stats.snapshot();
        assert_eq!(snap.per_func["fgets"].calls, 1);
        assert!(snap.per_func["fgets"].cycles > 0);
        assert_eq!(snap.per_func["fgets"].errnos[&simproc::errno::EBADF], 1, "{snap:?}");
        assert_eq!(snap.global_errnos[&simproc::errno::EBADF], 1);
    }

    #[test]
    fn log_hook_records_calls() {
        let log: CallLog = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let p = proto("int abs(int j);");
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("abs").unwrap().imp,
            vec![Arc::new(LogCallHook::new(Arc::clone(&log)))],
        );
        let mut proc = libc_proc();
        f.call(&mut proc, &[CVal::Int(-3)]).unwrap();
        assert_eq!(*log.lock(), vec!["abs(-3)"]);
    }

    #[test]
    fn flight_recorder_captures_calls_and_verdicts() {
        let recorder = Arc::new(FlightRecorder::new(3));
        let p = proto("size_t strlen(const char *s);");
        let check = ArgCheckHook::new(
            vec![SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::terminating(),
        );
        // Recorder first: its `after` runs last and sees the verdict of
        // every downstream hook, deny included.
        let hooks: Vec<Arc<dyn Hook>> =
            vec![Arc::new(FlightRecorderHook::new(Arc::clone(&recorder))), Arc::new(check)];
        let f = WrappedFn::new(p, simlibc::find_symbol("strlen").unwrap().imp, hooks);
        let mut proc = libc_proc();
        let s = proc.alloc_cstr("hi");
        assert_eq!(f.call(&mut proc, &[CVal::Ptr(s)]).unwrap(), CVal::Int(2));
        let err = f.call(&mut proc, &[CVal::NULL]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
        let tail = recorder.tail();
        assert_eq!(tail.len(), 2, "{tail:?}");
        assert_eq!(tail[0].func, "strlen");
        assert_eq!(tail[0].verdict, "ok");
        assert_eq!(tail[1].verdict, err.to_string());
        assert!(tail[1].args.contains("NULL") || tail[1].args.contains("0x0"), "{tail:?}");
    }

    #[test]
    fn exectime_with_latency_fills_histogram() {
        let stats = Arc::new(Stats::new());
        let p = proto("size_t strlen(const char *s);");
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(ExectimeHook::with_latency(Arc::clone(&stats)))],
        );
        let mut proc = libc_proc();
        let s = proc.alloc_cstr("hello");
        f.call(&mut proc, &[CVal::Ptr(s)]).unwrap();
        f.call(&mut proc, &[CVal::Ptr(s)]).unwrap();
        let snap = stats.snapshot();
        assert!(snap.has_latency());
        assert_eq!(snap.per_func["strlen"].latency["call"].count(), 2, "{snap:?}");
        // The plain constructor records no histograms.
        let bare = Arc::new(Stats::new());
        let p = proto("size_t strlen(const char *s);");
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(ExectimeHook::new(Arc::clone(&bare)))],
        );
        f.call(&mut proc, &[CVal::Ptr(s)]).unwrap();
        assert!(!bare.snapshot().has_latency());
    }

    #[test]
    fn arg_check_with_stats_records_check_and_heal_stages() {
        let stats = Arc::new(Stats::new());
        let p = proto("size_t strlen(const char *s);");
        let hook = ArgCheckHook::with_journal(
            vec![SafePred::CStr],
            p.ret.clone(),
            oracle(),
            PolicyEngine::healing(),
            Arc::new(HealingJournal::new()),
        )
        .with_stats(Arc::clone(&stats));
        let f = WrappedFn::new(
            p,
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(hook)],
        );
        assert!(!f.has_plan(), "stage recording must force the dynamic pipeline");
        let mut proc = libc_proc();
        let s = proc.alloc_cstr("ok");
        f.call(&mut proc, &[CVal::Ptr(s)]).unwrap();
        f.call(&mut proc, &[CVal::NULL]).unwrap(); // heals NULL -> ""
        let snap = stats.snapshot();
        assert_eq!(snap.per_func["strlen"].latency["check"].count(), 2, "{snap:?}");
        assert_eq!(snap.per_func["strlen"].latency["heal"].count(), 1, "{snap:?}");
    }

    #[test]
    fn exit_report_submits_document() {
        let server = profiler::CollectionServer::start();
        let stats = Arc::new(Stats::new());
        stats.record_call("strlen", 10, None);
        let p = proto("void exit(int status);");
        let hooks: Vec<Arc<dyn Hook>> = vec![Arc::new(ExitReportHook::new(
            Arc::clone(&stats),
            "demo-app",
            "profiling",
            server.collector(),
        ))];
        let f = WrappedFn::new(p, simlibc::find_symbol("exit").unwrap().imp, hooks);
        let mut proc = libc_proc();
        let err = f.call(&mut proc, &[CVal::Int(0)]).unwrap_err();
        assert_eq!(err, Fault::Exit(0));
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        assert_eq!(collected.submissions[0].application, "demo-app");
    }
}
