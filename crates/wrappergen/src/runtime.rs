//! The micro-generator *behaviour* side: runtime hooks that execute in
//! the simulation what the generated C fragments in [`crate::codegen`]
//! express in text. A wrapped function runs its hooks' `before` parts in
//! micro-generator order, calls the original (unless a hook contained the
//! call), then runs `after` parts in reverse order — the same prefix/
//! postfix discipline as Figure 3.

use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use cdecl::{CType, Prototype};
use parking_lot::Mutex;
use profiler::{FlightRecorder, Stats};
use simproc::{errno, CVal, ExtentOracle, Fault, HostFn, Proc};
use typelattice::{classify, peek_cstr_len, trunc_int, ArgClass, SafePred};

/// What a hook's `before` decides.
#[derive(Debug, Clone, PartialEq)]
pub enum HookAction {
    /// Proceed to the next hook / the original function.
    Continue,
    /// Do not call the original; produce this value instead (fault
    /// containment — the robustness wrapper's response).
    ShortCircuit(CVal),
    /// Do not call the original; fail with this fault (the security
    /// wrapper terminating the process).
    Deny(Fault),
}

/// What a hook decides about a fault raised by the original function —
/// the healing wrapper's last line of defence. Polled in hook order; the
/// first non-[`FaultDecision::Propagate`] answer wins.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDecision {
    /// Let the fault propagate to the caller (every non-healing wrapper).
    Propagate,
    /// Re-invoke the original with the (possibly re-sanitized) arguments
    /// in `CallCx::args`.
    Retry,
    /// Swallow the fault and return this value instead.
    Substitute(CVal),
}

/// Per-call context shared by the hooks.
#[derive(Debug)]
pub struct CallCx<'a> {
    /// The wrapped function's name.
    pub func: &'a str,
    /// The simulated process.
    pub proc: &'a mut Proc,
    /// Arguments — hooks may rewrite them (the canary hook grows
    /// allocation sizes).
    pub args: Vec<CVal>,
    /// errno at entry.
    pub errno_before: i32,
    /// Cycle counter at entry (the `rdtsc(exectime_start)` sample).
    pub entry_cycles: u64,
    /// Hook-private scratch values pushed in `before`, popped in `after`.
    pub scratch: Vec<u64>,
}

/// A precompiled, pure per-call check: evaluates the same accept/deny
/// condition as a hook's `before`, against the (truncated) arguments,
/// without touching any state.
pub type CompiledCheck = Box<dyn Fn(&Proc, &[CVal]) -> bool + Send + Sync>;

/// What the compiled fast path does when a [`CompiledCheck`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Re-run the call through the full dynamic hook pipeline (which will
    /// re-discover the violation and apply policy, journaling, healing).
    Fallback,
    /// Reject directly: `errno = EINVAL`, containment value returned —
    /// only when the owning hook proved this is *exactly* what its
    /// dynamic path would do (uniform containment policy, no journal).
    Reject,
}

/// One check in a [`WrappedFn`]'s compiled call plan.
pub struct PlannedCheck {
    /// The pure predicate.
    pub check: CompiledCheck,
    /// Response when the predicate fails.
    pub on_fail: FailAction,
    /// Which argument the predicate guards, when the lowering hook can
    /// say (symbolic metadata for the wrapper-soundness lint; never read
    /// on the call path).
    pub arg: Option<usize>,
    /// The symbolic [`SafePred`] the compiled closure evaluates, when the
    /// lowering hook can say (lint metadata, never read on the call path).
    pub pred: Option<SafePred>,
    /// The extent oracle the closure consults, when the lowering hook can
    /// say. Full metadata (`arg` + `pred` + `oracle`) lets the plan
    /// compiler fuse this check into a specialized [`CheckKernel`] that
    /// dispatches on the predicate directly instead of through the boxed
    /// closure.
    pub oracle: Option<Arc<dyn ExtentOracle + Send + Sync>>,
}

impl fmt::Debug for PlannedCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlannedCheck(on_fail: {:?})", self.on_fail)
    }
}

/// The result of asking a hook to lower itself into a call plan.
pub enum Lowered {
    /// The hook has per-call side effects (profiling, canary bookkeeping,
    /// logging) and must run dynamically on every call.
    Dynamic,
    /// The hook's accept path is equivalent to all of these pure checks
    /// passing. By returning this, the hook asserts that when every check
    /// passes its `before` returns [`HookAction::Continue`] without side
    /// effects, that its `after` is a no-op, and that it pushes nothing
    /// onto the scratch stack. `on_fault` may still do real work — the
    /// fast path falls back to dynamic fault polling when the original
    /// faults.
    Checks(Vec<PlannedCheck>),
}

impl fmt::Debug for Lowered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lowered::Dynamic => write!(f, "Dynamic"),
            Lowered::Checks(c) => write!(f, "Checks({})", c.len()),
        }
    }
}

/// Shared handle to the extent oracle a kernel check consults.
type ArcOracle = Arc<dyn ExtentOracle + Send + Sync>;

/// Attribution of a fused check back to the hook that lowered it —
/// (`Hook::name`, `Hook::provenance`) captured at plan-compile time, so
/// [`CheckKernel::describe`] can rebuild attributed [`ModelOp`]s for the
/// wrapper-soundness lint after fusion erased the hook boundaries.
type CheckOrigin = (&'static str, String);

/// One directly-dispatched check inside a [`CheckKernel::Seq`]: the
/// symbolic predicate evaluated without the boxed-closure indirection of
/// [`PlannedCheck`], plus its memoization key when the predicate's answer
/// is a pure function of (pointer, memory epoch, oracle epoch).
struct KernelCheck {
    /// Argument index the predicate guards (always `< nargs`).
    arg: usize,
    /// The predicate itself.
    pred: SafePred,
    /// Extent oracle for the relational/extent predicates.
    oracle: ArcOracle,
    /// Response on failure.
    on_fail: FailAction,
    /// `Some(key)` when a passing validation of a non-null pointer may be
    /// cached in [`Proc::validation_store`] and replayed while both the
    /// address-space epoch and the oracle's auxiliary epoch hold still.
    memo_key: Option<u64>,
    /// The hook this check was lowered from.
    origin: CheckOrigin,
}

impl fmt::Debug for KernelCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KernelCheck(arg{}: {})", self.arg + 1, self.pred)
    }
}

/// The specialized check kernel a [`CallPlan`]'s check sequence fuses
/// into at wrap time: one `match` dispatches the whole sequence instead
/// of an op-by-op walk over boxed closures. The common libc shapes get
/// monomorphized bodies; everything else with full metadata runs as a
/// direct predicate sequence, and checks lowered without metadata keep
/// the legacy closure walk.
enum CheckKernel {
    /// No checks at all (profiled-robust functions, `NonNull`-free
    /// signatures).
    NoChecks,
    /// Exactly one `CStr` check — the `strlen`/`atoi` shape. Scans with
    /// [`peek_cstr_len`] directly and memoizes the validated pointer.
    CStrOnly {
        /// Argument holding the string.
        arg: usize,
        /// Memo key for the validated pointer.
        memo_key: u64,
        /// Response on failure.
        on_fail: FailAction,
        /// The hook the check was lowered from.
        origin: CheckOrigin,
    },
    /// The fused `strcpy` shape: `HoldsCStrOf { src }` on `dst` plus
    /// `CStr` on `src`, sharing one source scan — the interpreter walked
    /// the source string twice.
    BufLenPair {
        /// Destination-buffer argument.
        dst: usize,
        /// Source-string argument.
        src: usize,
        /// Oracle answering the destination's exact right extent.
        oracle: ArcOracle,
        /// Response on failure (identical for both fused checks).
        on_fail: FailAction,
        /// The hook the pair was lowered from.
        origin: CheckOrigin,
    },
    /// General shape: direct predicate dispatch in pipeline order, no
    /// closure indirection, memoized where sound.
    Seq(Vec<KernelCheck>),
    /// Legacy closure walk, for check sequences lowered without full
    /// (`arg`, `pred`, `oracle`) metadata.
    Opaque(Vec<(PlannedCheck, CheckOrigin)>),
}

impl fmt::Debug for CheckKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKernel::NoChecks => write!(f, "NoChecks"),
            CheckKernel::CStrOnly { arg, .. } => write!(f, "CStrOnly(arg{})", arg + 1),
            CheckKernel::BufLenPair { dst, src, .. } => {
                write!(f, "BufLenPair(dst=arg{}, src=arg{})", dst + 1, src + 1)
            }
            CheckKernel::Seq(seq) => f.debug_tuple("Seq").field(seq).finish(),
            CheckKernel::Opaque(checks) => write!(f, "Opaque({})", checks.len()),
        }
    }
}

impl CheckKernel {
    /// Lowers the fused kernel back into attributed symbolic ops — the
    /// see-through path that keeps kernel-fused wrappers lintable. Each
    /// shape reports exactly the checks it evaluates, in evaluation
    /// order, with the memoization the fused fast path actually applies
    /// (which no per-hook [`Hook::describe`] model can know).
    fn describe(&self) -> Vec<ModelOp> {
        let check = |origin: &CheckOrigin, arg: usize, pred: SafePred, memoized: bool| {
            ModelOp {
                hook: origin.0,
                provenance: origin.1.clone(),
                op: HookOp::Check {
                    arg,
                    label: pred.to_string(),
                    pred: Some(pred),
                    // Every `SafePred` evaluator bails out on NULL
                    // before scanning, and so do the monomorphized
                    // kernel bodies.
                    null_guarded: true,
                    memoized,
                },
            }
        };
        match self {
            CheckKernel::NoChecks => Vec::new(),
            CheckKernel::CStrOnly { arg, origin, .. } => {
                vec![check(origin, *arg, SafePred::CStr, true)]
            }
            CheckKernel::BufLenPair { dst, src, origin, .. } => vec![
                check(origin, *dst, SafePred::HoldsCStrOf { src: *src }, false),
                check(origin, *src, SafePred::CStr, false),
            ],
            CheckKernel::Seq(seq) => seq
                .iter()
                .map(|kc| check(&kc.origin, kc.arg, kc.pred.clone(), kc.memo_key.is_some()))
                .collect(),
            CheckKernel::Opaque(checks) => checks
                .iter()
                .map(|(planned, origin)| match planned.arg {
                    Some(arg) => ModelOp {
                        hook: origin.0,
                        provenance: origin.1.clone(),
                        op: HookOp::Check {
                            arg,
                            pred: planned.pred.clone(),
                            label: planned
                                .pred
                                .as_ref()
                                .map(|p| p.to_string())
                                .unwrap_or_else(|| "lowered-check".to_string()),
                            null_guarded: true,
                            memoized: false,
                        },
                    },
                    // A check that cannot even say which argument it
                    // guards stays opaque to the lint.
                    None => ModelOp {
                        hook: origin.0,
                        provenance: origin.1.clone(),
                        op: HookOp::Opaque,
                    },
                })
                .collect(),
        }
    }
}

/// Whether a passing check of `pred` on a non-null pointer may be
/// memoized: the answer must be a pure function of the pointer value,
/// the process image (covered by `AddressSpace::epoch`) and the oracle's
/// auxiliary state (covered by `ExtentOracle::validation_epoch`).
/// Excluded: relational predicates (they read *other* arguments the memo
/// key does not cover), `ValidFuncPtr` (the host function table has no
/// epoch) and the value-only predicates (cheaper than the probe).
fn memoizable(pred: &SafePred) -> bool {
    match pred {
        SafePred::CStr
        | SafePred::Readable(_)
        | SafePred::Writable(_)
        | SafePred::ValidFilePtr
        | SafePred::HeapChunkOrNull
        | SafePred::PtrToCStrOrNull => true,
        SafePred::NullOr(inner) => memoizable(inner),
        _ => false,
    }
}

/// Builds the memoization key for argument `arg_slot` of the wrapper
/// numbered `wrapper_id`. Keys must be *globally disjoint* across
/// wrappers: the memo table in [`Proc`] is shared by every wrapper that
/// calls into a process, so two distinct `(wrapper, argument)` pairs
/// mapping to one key would let one wrapper's positive verdict answer for
/// another wrapper's argument — under a different predicate. The id and
/// the slot therefore occupy disjoint 32-bit halves of the `u64`. (An
/// earlier `id << 3 | arg` packing collided as soon as a slot index
/// reached 8: wrapper 1 / slot 8 and wrapper 2 / slot 0 both encoded 16.)
pub(crate) fn validation_memo_key(wrapper_id: u32, arg_slot: usize) -> u64 {
    // Strictly below `u32::MAX`, not `<=`: keeps every legal key distinct
    // from the memo table's `u64::MAX` empty-slot sentinel even for
    // `wrapper_id == u32::MAX`.
    debug_assert!(
        arg_slot < u32::MAX as usize,
        "arg slot {arg_slot} out of memo-key range"
    );
    (u64::from(wrapper_id) << 32) | arg_slot as u64
}

/// Fuses a lowered check sequence into the tightest [`CheckKernel`]
/// shape it fits. `wrapper_id` seeds the memo keys — see
/// [`validation_memo_key`] for the disjoint encoding.
fn fuse_kernel(
    checks: Vec<(PlannedCheck, CheckOrigin)>,
    nargs: usize,
    wrapper_id: u32,
) -> CheckKernel {
    if checks.is_empty() {
        return CheckKernel::NoChecks;
    }
    let full_metadata = checks.iter().all(|(c, _)| {
        matches!((&c.arg, &c.pred, &c.oracle), (Some(a), Some(_), Some(_)) if *a < nargs)
    });
    if !full_metadata {
        return CheckKernel::Opaque(checks);
    }
    let memo_key = |arg: usize| validation_memo_key(wrapper_id, arg);
    // strlen shape: a single CStr check.
    if checks.len() == 1 {
        let (c, origin) = &checks[0];
        if c.pred == Some(SafePred::CStr) {
            let arg = c.arg.expect("full metadata");
            return CheckKernel::CStrOnly {
                arg,
                memo_key: memo_key(arg),
                on_fail: c.on_fail,
                origin: origin.clone(),
            };
        }
    }
    // strcpy shape: HoldsCStrOf{src} on dst, then CStr on src itself,
    // with one failure policy — fusable into a single source scan.
    if checks.len() == 2 {
        if let (Some(SafePred::HoldsCStrOf { src }), Some(SafePred::CStr)) =
            (&checks[0].0.pred, &checks[1].0.pred)
        {
            if checks[0].0.on_fail == checks[1].0.on_fail && checks[1].0.arg == Some(*src) {
                return CheckKernel::BufLenPair {
                    dst: checks[0].0.arg.expect("full metadata"),
                    src: *src,
                    oracle: Arc::clone(checks[0].0.oracle.as_ref().expect("full metadata")),
                    on_fail: checks[0].0.on_fail,
                    origin: checks[0].1.clone(),
                };
            }
        }
    }
    // Memoization must also stay consistent with the sequence's own
    // relational facts: a cached per-pointer verdict about an argument
    // that a relational check (in the same sequence) relates to other
    // arguments would let the memo answer for state the relational
    // check re-derives each call — the disagreement the lint's
    // memoized-relational rule flags. Suppress memo keys for every
    // argument a relational predicate is the subject of or references.
    let mut relational_args = std::collections::BTreeSet::new();
    for (c, _) in &checks {
        if let (Some(arg), Some(pred)) = (c.arg, c.pred.as_ref()) {
            if pred.is_relational() {
                relational_args.insert(arg);
                relational_args.extend(pred.referenced_args());
            }
        }
    }
    CheckKernel::Seq(
        checks
            .into_iter()
            .map(|(c, origin)| {
                let arg = c.arg.expect("full metadata");
                let pred = c.pred.expect("full metadata");
                let key = (memoizable(&pred) && !relational_args.contains(&arg))
                    .then(|| memo_key(arg));
                KernelCheck {
                    arg,
                    pred,
                    oracle: c.oracle.expect("full metadata"),
                    on_fail: c.on_fail,
                    memo_key: key,
                    origin,
                }
            })
            .collect(),
    )
}

/// One symbolic operation in a hook's per-call behaviour — the abstract
/// effect the wrapper-soundness lint reasons about, declared by
/// [`Hook::describe`]. The model deliberately says less than the code:
/// an op only appears here when the hook can vouch for it.
#[derive(Debug, Clone, PartialEq)]
pub enum HookOp {
    /// The hook evaluates an accept/deny predicate over `arg` (and, for
    /// relational predicates, the arguments the predicate references).
    Check {
        /// Argument index the predicate guards.
        arg: usize,
        /// The symbolic predicate, when the hook evaluates exactly a
        /// [`SafePred`]; `None` for bespoke checks (canary verification).
        pred: Option<SafePred>,
        /// Human-readable label for lint findings.
        label: String,
        /// Whether any memory scan the check performs is dominated by a
        /// null test — `true` for every built-in [`SafePred`], whose
        /// evaluators bail out on NULL before dereferencing.
        null_guarded: bool,
        /// Whether a passing verdict is cached per pointer and replayed
        /// across calls while the validation epochs hold still (PR 8's
        /// epoch-memoized fast path). Only the fused [`CheckKernel`]
        /// knows this — hand-written [`Hook::describe`] models say
        /// `false`, the kernel see-through reports the truth.
        memoized: bool,
    },
    /// The hook rewrites argument `arg` before the original runs (the
    /// canary hook growing an allocation size).
    Mutate {
        /// Argument index rewritten.
        arg: usize,
        /// Human-readable label for lint findings.
        label: String,
    },
    /// The hook observes the call (profiling counters, call logs,
    /// terminal heap sweeps) without rewriting any argument.
    Observe,
    /// The hook declined to describe itself; the lint must treat it as
    /// potentially anything. This is the [`Hook::describe`] default.
    Opaque,
}

/// A [`HookOp`] attributed to the hook that declared it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOp {
    /// [`Hook::name`] of the declaring hook.
    pub hook: &'static str,
    /// [`Hook::provenance`] of the declaring hook (`"campaign"`,
    /// `"contract"`, `"builtin"`).
    pub provenance: String,
    /// The declared operation.
    pub op: HookOp,
}

/// The symbolic per-call model of a [`WrappedFn`]: ABI truncations the
/// runtime applies before any hook runs, then every hook's declared ops
/// in pipeline order. Input to the analyzer's wrapper-soundness lint.
#[derive(Debug, Clone)]
pub struct CallModel {
    /// The wrapped function's name.
    pub func: String,
    /// `(index, bit width)` ABI truncation ops applied to narrow integer
    /// arguments before the first hook sees them.
    pub truncations: Vec<(usize, u64)>,
    /// Declared hook operations, in execution (pipeline) order.
    pub ops: Vec<ModelOp>,
}

/// A runtime micro-generator.
pub trait Hook: Send + Sync {
    /// Name, matching the codegen micro-generator where one exists.
    fn name(&self) -> &'static str;

    /// Lowers the hook into pure precomputed checks for the compiled
    /// call plan, if its semantics permit (see [`Lowered::Checks`]).
    /// Default: [`Lowered::Dynamic`] — correct for any hook.
    fn lower(&self, proto: &Prototype) -> Lowered {
        let _ = proto;
        Lowered::Dynamic
    }

    /// Declares the hook's per-call behaviour symbolically for the
    /// wrapper-soundness lint: which arguments it checks, which it
    /// mutates, in execution order. Default: a single [`HookOp::Opaque`],
    /// which is always sound (the lint assumes the worst).
    fn describe(&self, proto: &Prototype) -> Vec<HookOp> {
        let _ = proto;
        vec![HookOp::Opaque]
    }

    /// Where this hook's checks came from: `"campaign"` for checks
    /// derived by fault injection, `"contract"` for checks seeded by
    /// static contract inference, `"builtin"` otherwise.
    fn provenance(&self) -> &str {
        "builtin"
    }

    /// Prefix behaviour. Default: continue.
    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        let _ = cx;
        HookAction::Continue
    }

    /// Postfix behaviour; sees (and may rewrite) the result.
    fn after(&self, cx: &mut CallCx<'_>, result: &mut Result<CVal, Fault>) {
        let _ = (cx, result);
    }

    /// Consulted when the original function faults (except [`Fault::Exit`],
    /// which is the process-termination contract and always propagates).
    /// `attempt` counts prior retries of this call. Default: propagate.
    fn on_fault(&self, cx: &mut CallCx<'_>, fault: &Fault, attempt: u32) -> FaultDecision {
        let _ = (cx, fault, attempt);
        FaultDecision::Propagate
    }
}

/// A function wrapped with an ordered hook pipeline. Cheap to clone.
#[derive(Clone)]
pub struct WrappedFn {
    inner: Arc<WrappedInner>,
}

/// Maximum arity served by the compiled fast path (arguments live in a
/// stack array of this size; longer signatures run dynamically).
const MAX_FAST_ARGS: usize = 8;

/// Retained capacity of the per-thread [`CallCx`] buffer pool.
const CX_POOL_MAX: usize = 8;

thread_local! {
    /// Recycled `(args, scratch)` vector pairs for the dynamic path, so
    /// steady-state `call_dynamic` traffic stops allocating per call
    /// (the same recycling discipline as the address space's region
    /// buffers). Popped on entry so re-entrant wrapped calls from inside
    /// hooks get fresh buffers, returned cleared on exit.
    static CX_POOL: RefCell<Vec<(Vec<CVal>, Vec<u64>)>> = const { RefCell::new(Vec::new()) };

    /// Recycled render buffer for the compiled flight-recorder epilogue.
    static ARGS_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Takes a recycled `(args, scratch)` pair, or fresh empty vectors.
fn take_cx_bufs() -> (Vec<CVal>, Vec<u64>) {
    CX_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a `(args, scratch)` pair to the pool, cleared.
fn put_cx_bufs(mut args: Vec<CVal>, mut scratch: Vec<u64>) {
    args.clear();
    scratch.clear();
    CX_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < CX_POOL_MAX {
            pool.push((args, scratch));
        }
    });
}

/// The flat, precomputed per-call program: truncation ops, check ops and
/// the containment value, lowered from the hook pipeline at wrap time so
/// the accept path is a branch-predictable array walk with no per-call
/// heap allocation.
struct CallPlan {
    /// Exact arity the plan was compiled for; other arities (varargs,
    /// miscalls) take the dynamic path.
    nargs: usize,
    /// `(index, bit width)` truncation ops for narrow integer params.
    int_ops: Vec<(usize, u64)>,
    /// All hooks' checks, fused into one specialized kernel.
    kernel: CheckKernel,
    /// Precomputed `containment_value(&proto.ret)`.
    containment: CVal,
}

/// Telemetry recording compiled into the wrapper's epilogue, so the
/// latency-histogram and flight-recorder configurations no longer force
/// every call through the dynamic hook pipeline. Recording happens
/// exactly once per call, at the point the dynamic pipeline's
/// (first-positioned, hence last-run) recorder hooks fired, with the
/// same cycle arithmetic and argument rendering — byte-identical XML.
struct Telemetry {
    /// Per-function "call" latency histogram sink.
    latency: Option<Arc<Stats>>,
    /// Recent-calls ring buffer sink.
    flight: Option<Arc<FlightRecorder>>,
}

struct WrappedInner {
    name: String,
    proto: Prototype,
    original: HostFn,
    hooks: Vec<Arc<dyn Hook>>,
    /// ABI widths of integer parameters, for faithful truncation.
    int_widths: Vec<Option<u64>>,
    /// Compiled fast path; `None` when any hook requires dynamic dispatch.
    plan: Option<CallPlan>,
    /// Compiled telemetry epilogue; `None` when nothing records.
    telemetry: Option<Telemetry>,
}

/// Process-wide wrapper identity counter, seeding validation-memo keys.
static NEXT_WRAPPER_ID: AtomicU32 = AtomicU32::new(0);

impl fmt::Debug for WrappedFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WrappedFn({}, hooks=[{}])",
            self.inner.name,
            self.inner.hooks.iter().map(|h| h.name()).collect::<Vec<_>>().join(", ")
        )
    }
}

impl WrappedFn {
    /// Wraps `original` with `hooks` (micro-generator order). The hook
    /// pipeline is lowered into a compiled [`CallPlan`] here, once, when
    /// every hook can express its accept path as pure checks.
    pub fn new(proto: Prototype, original: HostFn, hooks: Vec<Arc<dyn Hook>>) -> Self {
        Self::new_with_telemetry(proto, original, hooks, None, None)
    }

    /// Like [`WrappedFn::new`], with telemetry sinks compiled into the
    /// call epilogue: the per-function `"call"` latency histogram and the
    /// flight recorder record on *every* path (fast or dynamic), exactly
    /// once per call, without forcing dynamic dispatch.
    pub fn new_with_telemetry(
        proto: Prototype,
        original: HostFn,
        hooks: Vec<Arc<dyn Hook>>,
        latency: Option<Arc<Stats>>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let int_widths: Vec<Option<u64>> = proto
            .params
            .iter()
            .map(|p| match classify(&p.ty) {
                ArgClass::Int(b) if b < 8 => Some(b),
                _ => None,
            })
            .collect();
        let id = NEXT_WRAPPER_ID.fetch_add(1, Ordering::Relaxed);
        let plan = Self::compile(&proto, &hooks, &int_widths, id);
        let telemetry = if latency.is_some() || flight.is_some() {
            Some(Telemetry { latency, flight })
        } else {
            None
        };
        WrappedFn {
            inner: Arc::new(WrappedInner {
                name: proto.name.clone(),
                proto,
                original,
                hooks,
                int_widths,
                plan,
                telemetry,
            }),
        }
    }

    /// Lowers the pipeline into a [`CallPlan`], or `None` if any hook
    /// must stay dynamic (or the arity exceeds the fast-path array).
    fn compile(
        proto: &Prototype,
        hooks: &[Arc<dyn Hook>],
        int_widths: &[Option<u64>],
        wrapper_id: u32,
    ) -> Option<CallPlan> {
        if proto.params.len() > MAX_FAST_ARGS {
            return None;
        }
        let mut checks = Vec::new();
        for hook in hooks {
            match hook.lower(proto) {
                Lowered::Dynamic => return None,
                Lowered::Checks(c) => {
                    let origin: CheckOrigin = (hook.name(), hook.provenance().to_string());
                    checks.extend(c.into_iter().map(|pc| (pc, origin.clone())));
                }
            }
        }
        let int_ops =
            int_widths.iter().enumerate().filter_map(|(i, w)| w.map(|b| (i, b))).collect();
        Some(CallPlan {
            nargs: proto.params.len(),
            int_ops,
            kernel: fuse_kernel(checks, proto.params.len(), wrapper_id),
            containment: containment_value(&proto.ret),
        })
    }

    /// Whether calls go through the compiled fast path (diagnostics).
    pub fn has_plan(&self) -> bool {
        self.inner.plan.is_some()
    }

    /// The wrapped function's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The wrapped function's prototype.
    pub fn proto(&self) -> &Prototype {
        &self.inner.proto
    }

    /// Hook names, in order (diagnostics).
    pub fn hook_names(&self) -> Vec<&'static str> {
        self.inner.hooks.iter().map(|h| h.name()).collect()
    }

    /// Builds the symbolic [`CallModel`] the wrapper-soundness lint
    /// walks.
    ///
    /// When the pipeline compiled into a [`CallPlan`], every hook proved
    /// its behaviour equals a pure check sequence and the fused
    /// [`CheckKernel`] *is* what runs per call — so the model is the
    /// kernel's own see-through lowering ([`CheckKernel::describe`]),
    /// attributed back to the lowering hooks and carrying the fast
    /// path's real memoization. Per-hook [`Hook::describe`] models
    /// cannot see fusion or memoization and went unlintable when PR 8
    /// replaced the interpreted check walk.
    ///
    /// Dynamic pipelines keep the per-hook model: each hook contributes
    /// its described ops, and a hook that kept the `Opaque` default but
    /// lowers into fully-annotated checks is modelled from the lowered
    /// checks instead (the closures evaluate exactly the recorded
    /// [`SafePred`]s, which are null-safe by construction).
    pub fn call_model(&self) -> CallModel {
        let proto = &self.inner.proto;
        let truncations = self
            .inner
            .int_widths
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|b| (i, b)))
            .collect();
        if let Some(plan) = &self.inner.plan {
            return CallModel {
                func: self.inner.name.clone(),
                truncations,
                ops: plan.kernel.describe(),
            };
        }
        let mut ops = Vec::new();
        for hook in &self.inner.hooks {
            let described = hook.describe(proto);
            let opaque_only = described.iter().all(|op| matches!(op, HookOp::Opaque));
            if opaque_only {
                if let Lowered::Checks(checks) = hook.lower(proto) {
                    if checks.iter().all(|c| c.arg.is_some()) {
                        // Fully annotated lowering — see through it.
                        for planned in &checks {
                            ops.push(ModelOp {
                                hook: hook.name(),
                                provenance: hook.provenance().to_string(),
                                op: HookOp::Check {
                                    arg: planned.arg.expect("checked above"),
                                    pred: planned.pred.clone(),
                                    label: planned
                                        .pred
                                        .as_ref()
                                        .map(|p| p.to_string())
                                        .unwrap_or_else(|| "lowered-check".to_string()),
                                    null_guarded: true,
                                    memoized: false,
                                },
                            });
                        }
                        continue;
                    }
                }
            }
            for op in described {
                ops.push(ModelOp {
                    hook: hook.name(),
                    provenance: hook.provenance().to_string(),
                    op,
                });
            }
        }
        CallModel { func: self.inner.name.clone(), truncations, ops }
    }

    /// Invokes the wrapper: prefix hooks in order, the original (unless
    /// contained), postfix hooks in reverse order.
    ///
    /// When a compiled [`CallPlan`] exists and the arity matches, the
    /// accept path runs it instead: truncation masks and check ops from
    /// flat arrays, arguments in a stack buffer, zero heap allocation.
    /// Check failures and faults fall back to the dynamic pipeline (or a
    /// precomputed rejection where the plan proved it equivalent).
    ///
    /// # Errors
    ///
    /// Faults from the original, or a [`Fault::SecurityViolation`] from a
    /// denying hook.
    pub fn call(&self, proc: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        match &self.inner.plan {
            Some(plan) if args.len() == plan.nargs => self.call_fast(plan, proc, args),
            _ => self.call_dynamic(proc, args),
        }
    }

    /// The compiled fast path. Alloc-free until something goes wrong.
    fn call_fast(
        &self,
        plan: &CallPlan,
        proc: &mut Proc,
        args: &[CVal],
    ) -> Result<CVal, Fault> {
        let errno_before = proc.errno();
        let entry_cycles = proc.cycles();
        // Stack-buffer copy only when a truncation op actually rewrites
        // an argument; untruncated signatures use the caller's slice.
        let mut buf = [CVal::Void; MAX_FAST_ARGS];
        let norm: &[CVal] = if plan.int_ops.is_empty() {
            args
        } else {
            let n = args.len();
            buf[..n].copy_from_slice(args);
            for &(i, bits) in &plan.int_ops {
                buf[i] = CVal::Int(trunc_int(buf[i].as_int(), bits));
            }
            &buf[..n]
        };
        if let Some(on_fail) = self.run_kernel(plan, proc, norm) {
            return match on_fail {
                // The dynamic pipeline re-discovers the violation and
                // applies policy/journaling; lowered hooks had no side
                // effects to replay, so re-entering from the top is
                // exact. It also records telemetry — do not record here.
                FailAction::Fallback => self.call_dynamic(proc, args),
                FailAction::Reject => {
                    proc.set_errno(errno::EINVAL);
                    let result = Ok(plan.containment);
                    self.record_telemetry(proc, norm, entry_cycles, &result);
                    result
                }
            };
        }
        match (self.inner.original)(proc, norm) {
            Ok(v) => {
                let result = Ok(v);
                self.record_telemetry(proc, norm, entry_cycles, &result);
                result
            }
            // Exit is the termination contract, not a fault to heal.
            Err(f @ Fault::Exit(_)) => {
                let result = Err(f);
                self.record_telemetry(proc, norm, entry_cycles, &result);
                result
            }
            Err(f) => self.heal_after_fast_fault(proc, norm, errno_before, entry_cycles, f),
        }
    }

    /// Runs the plan's fused check kernel over the normalized arguments.
    /// `None` means every check passed; `Some(action)` is the first
    /// failing check's response — the same answer, in the same order,
    /// as the interpreted walk the kernel was fused from.
    fn run_kernel(
        &self,
        plan: &CallPlan,
        proc: &mut Proc,
        norm: &[CVal],
    ) -> Option<FailAction> {
        match &plan.kernel {
            CheckKernel::NoChecks => None,
            CheckKernel::CStrOnly { arg, memo_key, on_fail, .. } => {
                let v = norm[*arg];
                let ptr = v.as_ptr();
                // CStr consults only process memory: auxiliary epoch 0.
                if !v.is_null() && proc.validation_hit(*memo_key, ptr, 0) {
                    return None;
                }
                if peek_cstr_len(proc, ptr).is_some() {
                    proc.validation_store(*memo_key, ptr, 0);
                    None
                } else {
                    Some(*on_fail)
                }
            }
            CheckKernel::BufLenPair { dst, src, oracle, on_fail, .. } => {
                // One source scan serves both fused checks: the
                // interpreter scanned `src` for `HoldsCStrOf` on `dst`,
                // then scanned it again for `CStr` on `src` itself. The
                // destination bound is the exact `extent_right` edge of
                // the containing object, so an accepted copy can never
                // reach the canary — the overflow is prevented, not
                // detected after the fact.
                match peek_cstr_len(proc, norm[*src].as_ptr()) {
                    Some(len)
                        if oracle.extent_right(proc, norm[*dst].as_ptr()).unwrap_or(0)
                            > len =>
                    {
                        None
                    }
                    _ => Some(*on_fail),
                }
            }
            CheckKernel::Seq(seq) => {
                for kc in seq {
                    let v = norm[kc.arg];
                    if let Some(key) = kc.memo_key {
                        if !v.is_null()
                            && proc.validation_hit(
                                key,
                                v.as_ptr(),
                                kc.oracle.validation_epoch(),
                            )
                        {
                            continue;
                        }
                    }
                    // Branch-free lowering for the scalar predicates; the
                    // rest dispatch on the predicate directly.
                    let ok = match &kc.pred {
                        SafePred::NonNull => !v.is_null(),
                        SafePred::IntNonZero => v.as_int() != 0,
                        SafePred::IntInRange { min, max } => {
                            let x = v.as_int();
                            (x >= *min) & (x <= *max)
                        }
                        SafePred::SizeBelow(n) => v.as_usize() < *n,
                        SafePred::CStr => peek_cstr_len(proc, v.as_ptr()).is_some(),
                        pred => pred.check(proc, kc.oracle.as_ref(), norm, kc.arg),
                    };
                    if !ok {
                        return Some(kc.on_fail);
                    }
                    if let Some(key) = kc.memo_key {
                        if !v.is_null() {
                            proc.validation_store(
                                key,
                                v.as_ptr(),
                                kc.oracle.validation_epoch(),
                            );
                        }
                    }
                }
                None
            }
            CheckKernel::Opaque(checks) => {
                for (planned, _) in checks {
                    if !(planned.check)(proc, norm) {
                        return Some(planned.on_fail);
                    }
                }
                None
            }
        }
    }

    /// Records the compiled telemetry epilogue, if any: the `"call"`
    /// latency histogram sample and the flight-recorder entry, with the
    /// exact cycle arithmetic and argument rendering of the dynamic
    /// recorder hooks (their XML must stay byte-identical).
    fn record_telemetry(
        &self,
        proc: &Proc,
        args: &[CVal],
        entry_cycles: u64,
        result: &Result<CVal, Fault>,
    ) {
        let Some(t) = &self.inner.telemetry else { return };
        let cycles = proc.cycles().saturating_sub(entry_cycles);
        if let Some(stats) = &t.latency {
            stats.record_latency(&self.inner.name, "call", cycles);
        }
        if let Some(recorder) = &t.flight {
            // Render into a recycled thread-local buffer: the epilogue
            // itself stays allocation-free (the recorder's ring buffer
            // copies out of it under its shard lock).
            ARGS_BUF.with(|b| {
                let mut s = b.borrow_mut();
                s.clear();
                s.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{a}");
                }
                s.push(')');
                match result {
                    Ok(_) => recorder.record(&self.inner.name, &s, "ok", cycles),
                    Err(f) => recorder.record(&self.inner.name, &s, &f.to_string(), cycles),
                }
            });
        }
    }

    /// Cold path: the original faulted after the compiled checks passed.
    /// Reconstructs the dynamic pipeline's fault handling — every hook
    /// logically "ran" (their lowered checks passed, side-effect-free) —
    /// so healing/retry/substitution decisions are identical.
    fn heal_after_fast_fault(
        &self,
        proc: &mut Proc,
        norm: &[CVal],
        errno_before: i32,
        entry_cycles: u64,
        first_fault: Fault,
    ) -> Result<CVal, Fault> {
        let (mut cx_args, cx_scratch) = take_cx_bufs();
        cx_args.extend_from_slice(norm);
        let mut cx = CallCx {
            func: &self.inner.name,
            proc,
            args: cx_args,
            errno_before,
            entry_cycles,
            scratch: cx_scratch,
        };
        let mut fault = first_fault;
        let mut attempt: u32 = 0;
        let result = loop {
            let mut decision = FaultDecision::Propagate;
            for hook in self.inner.hooks.iter() {
                match hook.on_fault(&mut cx, &fault, attempt) {
                    FaultDecision::Propagate => {}
                    d => {
                        decision = d;
                        break;
                    }
                }
            }
            match decision {
                FaultDecision::Propagate => break Err(fault),
                FaultDecision::Substitute(v) => break Ok(v),
                FaultDecision::Retry => {
                    attempt += 1;
                    match (self.inner.original)(cx.proc, &cx.args) {
                        Ok(v) => break Ok(v),
                        Err(f @ Fault::Exit(_)) => break Err(f),
                        Err(f) => fault = f,
                    }
                }
            }
        };
        self.record_telemetry(cx.proc, &cx.args, entry_cycles, &result);
        let CallCx { args, scratch, .. } = cx;
        put_cx_bufs(args, scratch);
        result
    }

    /// The fully dynamic pipeline (any hook with per-call side effects).
    fn call_dynamic(&self, proc: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        // ABI-faithful width truncation of integer arguments, into a
        // recycled buffer.
        let (mut norm, cx_scratch) = take_cx_bufs();
        norm.extend_from_slice(args);
        for (i, width) in self.inner.int_widths.iter().enumerate() {
            if let (Some(b), Some(v)) = (width, norm.get(i).copied()) {
                norm[i] = CVal::Int(trunc_int(v.as_int(), *b));
            }
        }
        let errno_before = proc.errno();
        let entry_cycles = proc.cycles();
        let mut cx = CallCx {
            func: &self.inner.name,
            proc,
            args: norm,
            errno_before,
            entry_cycles,
            scratch: cx_scratch,
        };
        let mut ran = self.inner.hooks.len();
        let mut early: Option<Result<CVal, Fault>> = None;
        for (i, hook) in self.inner.hooks.iter().enumerate() {
            match hook.before(&mut cx) {
                HookAction::Continue => {}
                HookAction::ShortCircuit(v) => {
                    ran = i + 1;
                    early = Some(Ok(v));
                    break;
                }
                HookAction::Deny(f) => {
                    ran = i + 1;
                    early = Some(Err(f));
                    break;
                }
            }
        }
        let mut result = match early {
            Some(r) => r,
            None => {
                // Call the original; on a fault, poll the hooks that ran
                // for a healing decision (bounded retries).
                let mut attempt: u32 = 0;
                loop {
                    match (self.inner.original)(cx.proc, &cx.args) {
                        Ok(v) => break Ok(v),
                        // Exit is the termination contract, not a fault to
                        // heal — the exit-report hook depends on seeing it.
                        Err(f @ Fault::Exit(_)) => break Err(f),
                        Err(f) => {
                            let mut decision = FaultDecision::Propagate;
                            for hook in self.inner.hooks[..ran].iter() {
                                match hook.on_fault(&mut cx, &f, attempt) {
                                    FaultDecision::Propagate => {}
                                    d => {
                                        decision = d;
                                        break;
                                    }
                                }
                            }
                            match decision {
                                FaultDecision::Propagate => break Err(f),
                                FaultDecision::Retry => {
                                    attempt += 1;
                                    continue;
                                }
                                FaultDecision::Substitute(v) => break Ok(v),
                            }
                        }
                    }
                }
            }
        };
        for hook in self.inner.hooks[..ran].iter().rev() {
            hook.after(&mut cx, &mut result);
        }
        // Compiled telemetry records after every after-hook ran — the
        // position the (first-inserted, hence last-run) dynamic recorder
        // hooks occupied.
        self.record_telemetry(cx.proc, &cx.args, entry_cycles, &result);
        let CallCx { args: pooled_args, scratch: pooled_scratch, .. } = cx;
        put_cx_bufs(pooled_args, pooled_scratch);
        result
    }
}

/// The value a containing wrapper returns for a rejected call, by return
/// type (`NULL`, `-1`, `0.0`, or nothing).
pub fn containment_value(ret: &CType) -> CVal {
    match ret {
        CType::Void => CVal::Void,
        CType::Ptr { .. } | CType::FuncPtr { .. } | CType::Array { .. } => CVal::NULL,
        CType::Float | CType::Double => CVal::F64(0.0),
        _ => CVal::Int(-1),
    }
}

/// A shared, in-memory call log (the `log call` micro-generator's sink).
pub type CallLog = Arc<Mutex<Vec<String>>>;

/// Sets `errno = EINVAL` and short-circuits with the containment value —
/// the robustness wrapper's standard rejection.
pub fn reject(proc: &mut Proc, ret: &CType) -> HookAction {
    proc.set_errno(errno::EINVAL);
    HookAction::ShortCircuit(containment_value(ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use simlibc::testutil::libc_proc;

    fn strlen_proto() -> Prototype {
        parse_prototype("size_t strlen(const char *s);", &TypedefTable::with_builtins())
            .unwrap()
    }

    struct Tracer {
        log: CallLog,
        tag: &'static str,
        action: HookAction,
    }

    impl Hook for Tracer {
        fn name(&self) -> &'static str {
            "tracer"
        }
        fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
            self.log.lock().push(format!("{}:before:{}", self.tag, cx.func));
            self.action.clone()
        }
        fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
            self.log.lock().push(format!("{}:after:{}", self.tag, cx.func));
        }
    }

    fn tracer(log: &CallLog, tag: &'static str, action: HookAction) -> Arc<dyn Hook> {
        Arc::new(Tracer { log: Arc::clone(log), tag, action })
    }

    #[test]
    fn hooks_run_prefix_order_postfix_reversed() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![
                tracer(&log, "a", HookAction::Continue),
                tracer(&log, "b", HookAction::Continue),
            ],
        );
        let mut p = libc_proc();
        let s = p.alloc_cstr("xyz");
        let r = f.call(&mut p, &[CVal::Ptr(s)]).unwrap();
        assert_eq!(r, CVal::Int(3));
        assert_eq!(
            *log.lock(),
            vec!["a:before:strlen", "b:before:strlen", "b:after:strlen", "a:after:strlen"]
        );
    }

    #[test]
    fn short_circuit_skips_original_and_later_hooks() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![
                tracer(&log, "a", HookAction::Continue),
                tracer(&log, "b", HookAction::ShortCircuit(CVal::Int(-1))),
                tracer(&log, "c", HookAction::Continue),
            ],
        );
        let mut p = libc_proc();
        // NULL would crash the original — the short circuit saves it.
        let r = f.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1));
        let entries = log.lock().clone();
        assert!(!entries.iter().any(|e| e.starts_with("c:")), "{entries:?}");
        // After hooks of the hooks that ran still fire (a and b).
        assert_eq!(entries.last().unwrap(), "a:after:strlen");
    }

    #[test]
    fn deny_returns_the_fault() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![tracer(&log, "sec", HookAction::Deny(Fault::security("test")))],
        );
        let mut p = libc_proc();
        let err = f.call(&mut p, &[CVal::NULL]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
    }

    #[test]
    fn integer_args_are_truncated_to_abi_width() {
        struct Probe;
        impl Hook for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
                // int c: (1<<40) + 65 truncates to 65.
                assert_eq!(cx.args[0], CVal::Int(65));
                HookAction::Continue
            }
        }
        let proto =
            parse_prototype("int isalpha(int c);", &TypedefTable::with_builtins()).unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("isalpha").unwrap().imp,
            vec![Arc::new(Probe)],
        );
        let mut p = libc_proc();
        let r = f.call(&mut p, &[CVal::Int((1i64 << 40) + 65)]).unwrap();
        assert_eq!(r, CVal::Int(1), "'A' is alphabetic");
    }

    #[test]
    fn fault_hooks_can_substitute_and_retry() {
        struct Healer {
            fix: simproc::VirtAddr,
        }
        impl Hook for Healer {
            fn name(&self) -> &'static str {
                "healer"
            }
            fn on_fault(
                &self,
                cx: &mut CallCx<'_>,
                _fault: &Fault,
                attempt: u32,
            ) -> FaultDecision {
                if attempt == 0 {
                    cx.args[0] = CVal::Ptr(self.fix);
                    FaultDecision::Retry
                } else {
                    FaultDecision::Substitute(CVal::Int(-7))
                }
            }
        }
        let mut p = libc_proc();
        let good = p.alloc_cstr("heal");
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(Healer { fix: good })],
        );
        // NULL faults once, the hook swaps in a valid string, the retry
        // succeeds with the repaired argument.
        let r = f.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(4));
    }

    #[test]
    fn exit_fault_is_never_healed() {
        struct Swallow;
        impl Hook for Swallow {
            fn name(&self) -> &'static str {
                "swallow"
            }
            fn on_fault(&self, _cx: &mut CallCx<'_>, _f: &Fault, _a: u32) -> FaultDecision {
                FaultDecision::Substitute(CVal::Void)
            }
        }
        let proto =
            parse_prototype("void exit(int status);", &TypedefTable::with_builtins())
                .unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("exit").unwrap().imp,
            vec![Arc::new(Swallow)],
        );
        let mut p = libc_proc();
        let err = f.call(&mut p, &[CVal::Int(3)]).unwrap_err();
        assert_eq!(err, Fault::Exit(3), "exit is a contract, not a fault");
    }

    #[test]
    fn containment_values_by_return_type() {
        let t = TypedefTable::with_builtins();
        let cases = [
            ("char *f(void);", CVal::NULL),
            ("int f(void);", CVal::Int(-1)),
            ("void f(void);", CVal::Void),
            ("double f(void);", CVal::F64(0.0)),
            ("size_t f(void);", CVal::Int(-1)),
        ];
        for (proto, expect) in cases {
            let p = parse_prototype(proto, &t).unwrap();
            assert_eq!(containment_value(&p.ret), expect, "{proto}");
        }
    }

    /// Lowers into fully-annotated pure checks while keeping the
    /// `describe` default — the shape that fuses into a [`CheckKernel`]
    /// the per-hook symbolic model knows nothing about.
    struct LoweredOnly {
        preds: Vec<(usize, SafePred)>,
    }

    impl Hook for LoweredOnly {
        fn name(&self) -> &'static str {
            "lowered only"
        }
        fn provenance(&self) -> &str {
            "campaign"
        }
        fn lower(&self, _proto: &Prototype) -> Lowered {
            Lowered::Checks(
                self.preds
                    .iter()
                    .cloned()
                    .map(|(i, pred)| {
                        let p = pred.clone();
                        PlannedCheck {
                            check: Box::new(move |proc: &Proc, args: &[CVal]| {
                                p.check(proc, &simproc::RegionOracle::new(), args, i)
                            }),
                            on_fail: FailAction::Fallback,
                            arg: Some(i),
                            pred: Some(pred),
                            oracle: Some(Arc::new(simproc::RegionOracle::new())),
                        }
                    })
                    .collect(),
            )
        }
    }

    #[test]
    fn call_model_sees_through_the_fused_cstr_kernel() {
        // Regression for the PR 8 fusion gap: the fast path memoizes the
        // CStrOnly verdict per pointer, and only the kernel see-through
        // (`CheckKernel::describe`) can say so — a per-hook `describe`
        // model reports `memoized: false` because hooks cannot know what
        // the plan compiler fused. Pre-fix, this model came from the
        // unfused per-hook lowering and this assertion fails.
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(LoweredOnly { preds: vec![(0, SafePred::CStr)] })],
        );
        assert!(f.has_plan(), "single CStr check must compile to CStrOnly");
        let model = f.call_model();
        assert_eq!(model.ops.len(), 1, "{model:?}");
        assert_eq!(model.ops[0].hook, "lowered only");
        assert_eq!(model.ops[0].provenance, "campaign");
        match &model.ops[0].op {
            HookOp::Check { arg, pred, null_guarded, memoized, .. } => {
                assert_eq!(*arg, 0);
                assert_eq!(pred.as_ref(), Some(&SafePred::CStr));
                assert!(*null_guarded);
                assert!(
                    *memoized,
                    "the fused CStrOnly kernel memoizes its verdict; the model must say so"
                );
            }
            other => panic!("expected a Check op, got {other:?}"),
        }
    }

    #[test]
    fn call_model_sees_through_the_fused_buflen_pair() {
        let proto = parse_prototype(
            "char *strcpy(char *dst, const char *src);",
            &TypedefTable::with_builtins(),
        )
        .unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("strcpy").unwrap().imp,
            vec![Arc::new(LoweredOnly {
                preds: vec![(0, SafePred::HoldsCStrOf { src: 1 }), (1, SafePred::CStr)],
            })],
        );
        assert!(f.has_plan());
        let model = f.call_model();
        // Both fused checks stay visible and unmemoized (the pair shares
        // one source scan but caches nothing across calls).
        let got: Vec<_> = model
            .ops
            .iter()
            .map(|op| match &op.op {
                HookOp::Check { arg, pred, memoized, .. } => {
                    (*arg, pred.clone(), *memoized)
                }
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (0, Some(SafePred::HoldsCStrOf { src: 1 }), false),
                (1, Some(SafePred::CStr), false),
            ],
            "{model:?}"
        );
    }

    #[test]
    fn relational_sequences_suppress_memo_keys() {
        // A memoizable Writable verdict on an argument that a relational
        // check in the same sequence references must not be memoized —
        // the model (and hence the memoized-relational lint rule) would
        // flag the disagreement otherwise.
        let proto = parse_prototype(
            "void *memset(void *s, int c, size_t n);",
            &TypedefTable::with_builtins(),
        )
        .unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("memset").unwrap().imp,
            vec![Arc::new(LoweredOnly {
                preds: vec![
                    (0, SafePred::Writable(1)),
                    (2, SafePred::SizeFitsWritable { ptr: 0, elem: 1 }),
                ],
            })],
        );
        assert!(f.has_plan());
        for op in &f.call_model().ops {
            if let HookOp::Check { memoized, .. } = &op.op {
                assert!(!memoized, "relational sequence must not memoize: {op:?}");
            }
        }
    }

    #[test]
    fn memo_keys_are_disjoint_across_wrappers_and_slots() {
        // The regression pair: under the pre-fix `(id << 3) | arg` packing
        // both of these encoded 16, so wrapper 1's cached verdict about
        // its argument slot 8 answered for wrapper 2's argument slot 0.
        assert_ne!(validation_memo_key(1, 8), validation_memo_key(2, 0));
        // Disjointness over a grid much wider than MAX_FAST_ARGS — the
        // encoding must stay collision-free even if the fast path ever
        // admits wider signatures.
        let mut seen = std::collections::HashSet::new();
        for id in 0..64u32 {
            for slot in 0..64usize {
                assert!(
                    seen.insert(validation_memo_key(id, slot)),
                    "memo key collision at wrapper {id}, slot {slot}"
                );
            }
        }
        // No legal key may alias the memo table's empty-slot sentinel.
        assert!(!seen.contains(&u64::MAX));
        assert_ne!(validation_memo_key(u32::MAX, 0), u64::MAX);
    }

    #[test]
    fn wrapped_fn_debug_lists_hooks() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![tracer(&log, "a", HookAction::Continue)],
        );
        assert!(format!("{f:?}").contains("tracer"));
        assert_eq!(f.name(), "strlen");
        assert_eq!(f.hook_names(), vec!["tracer"]);
    }
}
