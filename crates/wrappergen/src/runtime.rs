//! The micro-generator *behaviour* side: runtime hooks that execute in
//! the simulation what the generated C fragments in [`crate::codegen`]
//! express in text. A wrapped function runs its hooks' `before` parts in
//! micro-generator order, calls the original (unless a hook contained the
//! call), then runs `after` parts in reverse order — the same prefix/
//! postfix discipline as Figure 3.

use std::fmt;
use std::sync::Arc;

use cdecl::{CType, Prototype};
use parking_lot::Mutex;
use simproc::{errno, CVal, Fault, HostFn, Proc};
use typelattice::{classify, trunc_int, ArgClass, SafePred};

/// What a hook's `before` decides.
#[derive(Debug, Clone, PartialEq)]
pub enum HookAction {
    /// Proceed to the next hook / the original function.
    Continue,
    /// Do not call the original; produce this value instead (fault
    /// containment — the robustness wrapper's response).
    ShortCircuit(CVal),
    /// Do not call the original; fail with this fault (the security
    /// wrapper terminating the process).
    Deny(Fault),
}

/// What a hook decides about a fault raised by the original function —
/// the healing wrapper's last line of defence. Polled in hook order; the
/// first non-[`FaultDecision::Propagate`] answer wins.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDecision {
    /// Let the fault propagate to the caller (every non-healing wrapper).
    Propagate,
    /// Re-invoke the original with the (possibly re-sanitized) arguments
    /// in `CallCx::args`.
    Retry,
    /// Swallow the fault and return this value instead.
    Substitute(CVal),
}

/// Per-call context shared by the hooks.
#[derive(Debug)]
pub struct CallCx<'a> {
    /// The wrapped function's name.
    pub func: &'a str,
    /// The simulated process.
    pub proc: &'a mut Proc,
    /// Arguments — hooks may rewrite them (the canary hook grows
    /// allocation sizes).
    pub args: Vec<CVal>,
    /// errno at entry.
    pub errno_before: i32,
    /// Cycle counter at entry (the `rdtsc(exectime_start)` sample).
    pub entry_cycles: u64,
    /// Hook-private scratch values pushed in `before`, popped in `after`.
    pub scratch: Vec<u64>,
}

/// A precompiled, pure per-call check: evaluates the same accept/deny
/// condition as a hook's `before`, against the (truncated) arguments,
/// without touching any state.
pub type CompiledCheck = Box<dyn Fn(&Proc, &[CVal]) -> bool + Send + Sync>;

/// What the compiled fast path does when a [`CompiledCheck`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Re-run the call through the full dynamic hook pipeline (which will
    /// re-discover the violation and apply policy, journaling, healing).
    Fallback,
    /// Reject directly: `errno = EINVAL`, containment value returned —
    /// only when the owning hook proved this is *exactly* what its
    /// dynamic path would do (uniform containment policy, no journal).
    Reject,
}

/// One check in a [`WrappedFn`]'s compiled call plan.
pub struct PlannedCheck {
    /// The pure predicate.
    pub check: CompiledCheck,
    /// Response when the predicate fails.
    pub on_fail: FailAction,
    /// Which argument the predicate guards, when the lowering hook can
    /// say (symbolic metadata for the wrapper-soundness lint; never read
    /// on the call path).
    pub arg: Option<usize>,
    /// The symbolic [`SafePred`] the compiled closure evaluates, when the
    /// lowering hook can say (lint metadata, never read on the call path).
    pub pred: Option<SafePred>,
}

impl fmt::Debug for PlannedCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlannedCheck(on_fail: {:?})", self.on_fail)
    }
}

/// The result of asking a hook to lower itself into a call plan.
pub enum Lowered {
    /// The hook has per-call side effects (profiling, canary bookkeeping,
    /// logging) and must run dynamically on every call.
    Dynamic,
    /// The hook's accept path is equivalent to all of these pure checks
    /// passing. By returning this, the hook asserts that when every check
    /// passes its `before` returns [`HookAction::Continue`] without side
    /// effects, that its `after` is a no-op, and that it pushes nothing
    /// onto the scratch stack. `on_fault` may still do real work — the
    /// fast path falls back to dynamic fault polling when the original
    /// faults.
    Checks(Vec<PlannedCheck>),
}

impl fmt::Debug for Lowered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lowered::Dynamic => write!(f, "Dynamic"),
            Lowered::Checks(c) => write!(f, "Checks({})", c.len()),
        }
    }
}

/// One symbolic operation in a hook's per-call behaviour — the abstract
/// effect the wrapper-soundness lint reasons about, declared by
/// [`Hook::describe`]. The model deliberately says less than the code:
/// an op only appears here when the hook can vouch for it.
#[derive(Debug, Clone, PartialEq)]
pub enum HookOp {
    /// The hook evaluates an accept/deny predicate over `arg` (and, for
    /// relational predicates, the arguments the predicate references).
    Check {
        /// Argument index the predicate guards.
        arg: usize,
        /// The symbolic predicate, when the hook evaluates exactly a
        /// [`SafePred`]; `None` for bespoke checks (canary verification).
        pred: Option<SafePred>,
        /// Human-readable label for lint findings.
        label: String,
        /// Whether any memory scan the check performs is dominated by a
        /// null test — `true` for every built-in [`SafePred`], whose
        /// evaluators bail out on NULL before dereferencing.
        null_guarded: bool,
    },
    /// The hook rewrites argument `arg` before the original runs (the
    /// canary hook growing an allocation size).
    Mutate {
        /// Argument index rewritten.
        arg: usize,
        /// Human-readable label for lint findings.
        label: String,
    },
    /// The hook observes the call (profiling counters, call logs,
    /// terminal heap sweeps) without rewriting any argument.
    Observe,
    /// The hook declined to describe itself; the lint must treat it as
    /// potentially anything. This is the [`Hook::describe`] default.
    Opaque,
}

/// A [`HookOp`] attributed to the hook that declared it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOp {
    /// [`Hook::name`] of the declaring hook.
    pub hook: &'static str,
    /// [`Hook::provenance`] of the declaring hook (`"campaign"`,
    /// `"contract"`, `"builtin"`).
    pub provenance: String,
    /// The declared operation.
    pub op: HookOp,
}

/// The symbolic per-call model of a [`WrappedFn`]: ABI truncations the
/// runtime applies before any hook runs, then every hook's declared ops
/// in pipeline order. Input to the analyzer's wrapper-soundness lint.
#[derive(Debug, Clone)]
pub struct CallModel {
    /// The wrapped function's name.
    pub func: String,
    /// `(index, bit width)` ABI truncation ops applied to narrow integer
    /// arguments before the first hook sees them.
    pub truncations: Vec<(usize, u64)>,
    /// Declared hook operations, in execution (pipeline) order.
    pub ops: Vec<ModelOp>,
}

/// A runtime micro-generator.
pub trait Hook: Send + Sync {
    /// Name, matching the codegen micro-generator where one exists.
    fn name(&self) -> &'static str;

    /// Lowers the hook into pure precomputed checks for the compiled
    /// call plan, if its semantics permit (see [`Lowered::Checks`]).
    /// Default: [`Lowered::Dynamic`] — correct for any hook.
    fn lower(&self, proto: &Prototype) -> Lowered {
        let _ = proto;
        Lowered::Dynamic
    }

    /// Declares the hook's per-call behaviour symbolically for the
    /// wrapper-soundness lint: which arguments it checks, which it
    /// mutates, in execution order. Default: a single [`HookOp::Opaque`],
    /// which is always sound (the lint assumes the worst).
    fn describe(&self, proto: &Prototype) -> Vec<HookOp> {
        let _ = proto;
        vec![HookOp::Opaque]
    }

    /// Where this hook's checks came from: `"campaign"` for checks
    /// derived by fault injection, `"contract"` for checks seeded by
    /// static contract inference, `"builtin"` otherwise.
    fn provenance(&self) -> &str {
        "builtin"
    }

    /// Prefix behaviour. Default: continue.
    fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
        let _ = cx;
        HookAction::Continue
    }

    /// Postfix behaviour; sees (and may rewrite) the result.
    fn after(&self, cx: &mut CallCx<'_>, result: &mut Result<CVal, Fault>) {
        let _ = (cx, result);
    }

    /// Consulted when the original function faults (except [`Fault::Exit`],
    /// which is the process-termination contract and always propagates).
    /// `attempt` counts prior retries of this call. Default: propagate.
    fn on_fault(&self, cx: &mut CallCx<'_>, fault: &Fault, attempt: u32) -> FaultDecision {
        let _ = (cx, fault, attempt);
        FaultDecision::Propagate
    }
}

/// A function wrapped with an ordered hook pipeline. Cheap to clone.
#[derive(Clone)]
pub struct WrappedFn {
    inner: Arc<WrappedInner>,
}

/// Maximum arity served by the compiled fast path (arguments live in a
/// stack array of this size; longer signatures run dynamically).
const MAX_FAST_ARGS: usize = 8;

/// The flat, precomputed per-call program: truncation ops, check ops and
/// the containment value, lowered from the hook pipeline at wrap time so
/// the accept path is a branch-predictable array walk with no per-call
/// heap allocation.
struct CallPlan {
    /// Exact arity the plan was compiled for; other arities (varargs,
    /// miscalls) take the dynamic path.
    nargs: usize,
    /// `(index, bit width)` truncation ops for narrow integer params.
    int_ops: Vec<(usize, u64)>,
    /// All hooks' checks, in pipeline order.
    checks: Vec<PlannedCheck>,
    /// Precomputed `containment_value(&proto.ret)`.
    containment: CVal,
}

struct WrappedInner {
    name: String,
    proto: Prototype,
    original: HostFn,
    hooks: Vec<Arc<dyn Hook>>,
    /// ABI widths of integer parameters, for faithful truncation.
    int_widths: Vec<Option<u64>>,
    /// Compiled fast path; `None` when any hook requires dynamic dispatch.
    plan: Option<CallPlan>,
}

impl fmt::Debug for WrappedFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WrappedFn({}, hooks=[{}])",
            self.inner.name,
            self.inner.hooks.iter().map(|h| h.name()).collect::<Vec<_>>().join(", ")
        )
    }
}

impl WrappedFn {
    /// Wraps `original` with `hooks` (micro-generator order). The hook
    /// pipeline is lowered into a compiled [`CallPlan`] here, once, when
    /// every hook can express its accept path as pure checks.
    pub fn new(proto: Prototype, original: HostFn, hooks: Vec<Arc<dyn Hook>>) -> Self {
        let int_widths: Vec<Option<u64>> = proto
            .params
            .iter()
            .map(|p| match classify(&p.ty) {
                ArgClass::Int(b) if b < 8 => Some(b),
                _ => None,
            })
            .collect();
        let plan = Self::compile(&proto, &hooks, &int_widths);
        WrappedFn {
            inner: Arc::new(WrappedInner {
                name: proto.name.clone(),
                proto,
                original,
                hooks,
                int_widths,
                plan,
            }),
        }
    }

    /// Lowers the pipeline into a [`CallPlan`], or `None` if any hook
    /// must stay dynamic (or the arity exceeds the fast-path array).
    fn compile(
        proto: &Prototype,
        hooks: &[Arc<dyn Hook>],
        int_widths: &[Option<u64>],
    ) -> Option<CallPlan> {
        if proto.params.len() > MAX_FAST_ARGS {
            return None;
        }
        let mut checks = Vec::new();
        for hook in hooks {
            match hook.lower(proto) {
                Lowered::Dynamic => return None,
                Lowered::Checks(c) => checks.extend(c),
            }
        }
        let int_ops =
            int_widths.iter().enumerate().filter_map(|(i, w)| w.map(|b| (i, b))).collect();
        Some(CallPlan {
            nargs: proto.params.len(),
            int_ops,
            checks,
            containment: containment_value(&proto.ret),
        })
    }

    /// Whether calls go through the compiled fast path (diagnostics).
    pub fn has_plan(&self) -> bool {
        self.inner.plan.is_some()
    }

    /// The wrapped function's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The wrapped function's prototype.
    pub fn proto(&self) -> &Prototype {
        &self.inner.proto
    }

    /// Hook names, in order (diagnostics).
    pub fn hook_names(&self) -> Vec<&'static str> {
        self.inner.hooks.iter().map(|h| h.name()).collect()
    }

    /// Builds the symbolic [`CallModel`] the wrapper-soundness lint
    /// walks. Each hook contributes its [`Hook::describe`] ops; a hook
    /// that kept the `Opaque` default but lowers into checks with full
    /// metadata is modelled from the lowered plan instead (the closures
    /// evaluate exactly the recorded [`SafePred`]s, which are null-safe
    /// by construction).
    pub fn call_model(&self) -> CallModel {
        let proto = &self.inner.proto;
        let truncations = self
            .inner
            .int_widths
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|b| (i, b)))
            .collect();
        let mut ops = Vec::new();
        for hook in &self.inner.hooks {
            let described = hook.describe(proto);
            let opaque_only = described.iter().all(|op| matches!(op, HookOp::Opaque));
            if opaque_only {
                if let Lowered::Checks(checks) = hook.lower(proto) {
                    if checks.iter().all(|c| c.arg.is_some()) {
                        // Fully annotated lowering — see through it.
                        for planned in &checks {
                            ops.push(ModelOp {
                                hook: hook.name(),
                                provenance: hook.provenance().to_string(),
                                op: HookOp::Check {
                                    arg: planned.arg.expect("checked above"),
                                    pred: planned.pred.clone(),
                                    label: planned
                                        .pred
                                        .as_ref()
                                        .map(|p| p.to_string())
                                        .unwrap_or_else(|| "lowered-check".to_string()),
                                    null_guarded: true,
                                },
                            });
                        }
                        continue;
                    }
                }
            }
            for op in described {
                ops.push(ModelOp {
                    hook: hook.name(),
                    provenance: hook.provenance().to_string(),
                    op,
                });
            }
        }
        CallModel { func: self.inner.name.clone(), truncations, ops }
    }

    /// Invokes the wrapper: prefix hooks in order, the original (unless
    /// contained), postfix hooks in reverse order.
    ///
    /// When a compiled [`CallPlan`] exists and the arity matches, the
    /// accept path runs it instead: truncation masks and check ops from
    /// flat arrays, arguments in a stack buffer, zero heap allocation.
    /// Check failures and faults fall back to the dynamic pipeline (or a
    /// precomputed rejection where the plan proved it equivalent).
    ///
    /// # Errors
    ///
    /// Faults from the original, or a [`Fault::SecurityViolation`] from a
    /// denying hook.
    pub fn call(&self, proc: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        match &self.inner.plan {
            Some(plan) if args.len() == plan.nargs => self.call_fast(plan, proc, args),
            _ => self.call_dynamic(proc, args),
        }
    }

    /// The compiled fast path. Alloc-free until something goes wrong.
    fn call_fast(
        &self,
        plan: &CallPlan,
        proc: &mut Proc,
        args: &[CVal],
    ) -> Result<CVal, Fault> {
        let errno_before = proc.errno();
        let entry_cycles = proc.cycles();
        let mut buf = [CVal::Void; MAX_FAST_ARGS];
        let n = args.len();
        buf[..n].copy_from_slice(args);
        for &(i, bits) in &plan.int_ops {
            buf[i] = CVal::Int(trunc_int(buf[i].as_int(), bits));
        }
        let norm = &buf[..n];
        for planned in &plan.checks {
            if !(planned.check)(proc, norm) {
                return match planned.on_fail {
                    // The dynamic pipeline re-discovers the violation and
                    // applies policy/journaling; lowered hooks had no side
                    // effects to replay, so re-entering from the top is
                    // exact.
                    FailAction::Fallback => self.call_dynamic(proc, args),
                    FailAction::Reject => {
                        proc.set_errno(errno::EINVAL);
                        Ok(plan.containment)
                    }
                };
            }
        }
        match (self.inner.original)(proc, norm) {
            Ok(v) => Ok(v),
            // Exit is the termination contract, not a fault to heal.
            Err(f @ Fault::Exit(_)) => Err(f),
            Err(f) => self.heal_after_fast_fault(proc, norm, errno_before, entry_cycles, f),
        }
    }

    /// Cold path: the original faulted after the compiled checks passed.
    /// Reconstructs the dynamic pipeline's fault handling — every hook
    /// logically "ran" (their lowered checks passed, side-effect-free) —
    /// so healing/retry/substitution decisions are identical.
    fn heal_after_fast_fault(
        &self,
        proc: &mut Proc,
        norm: &[CVal],
        errno_before: i32,
        entry_cycles: u64,
        first_fault: Fault,
    ) -> Result<CVal, Fault> {
        let mut cx = CallCx {
            func: &self.inner.name,
            proc,
            args: norm.to_vec(),
            errno_before,
            entry_cycles,
            scratch: Vec::new(),
        };
        let mut fault = first_fault;
        let mut attempt: u32 = 0;
        loop {
            let mut decision = FaultDecision::Propagate;
            for hook in self.inner.hooks.iter() {
                match hook.on_fault(&mut cx, &fault, attempt) {
                    FaultDecision::Propagate => {}
                    d => {
                        decision = d;
                        break;
                    }
                }
            }
            match decision {
                FaultDecision::Propagate => return Err(fault),
                FaultDecision::Substitute(v) => return Ok(v),
                FaultDecision::Retry => {
                    attempt += 1;
                    match (self.inner.original)(cx.proc, &cx.args) {
                        Ok(v) => return Ok(v),
                        Err(f @ Fault::Exit(_)) => return Err(f),
                        Err(f) => fault = f,
                    }
                }
            }
        }
    }

    /// The fully dynamic pipeline (any hook with per-call side effects).
    fn call_dynamic(&self, proc: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        // ABI-faithful width truncation of integer arguments.
        let mut norm: Vec<CVal> = args.to_vec();
        for (i, width) in self.inner.int_widths.iter().enumerate() {
            if let (Some(b), Some(v)) = (width, norm.get(i).copied()) {
                norm[i] = CVal::Int(trunc_int(v.as_int(), *b));
            }
        }
        let errno_before = proc.errno();
        let entry_cycles = proc.cycles();
        let mut cx = CallCx {
            func: &self.inner.name,
            proc,
            args: norm,
            errno_before,
            entry_cycles,
            scratch: Vec::new(),
        };
        let mut ran = self.inner.hooks.len();
        let mut early: Option<Result<CVal, Fault>> = None;
        for (i, hook) in self.inner.hooks.iter().enumerate() {
            match hook.before(&mut cx) {
                HookAction::Continue => {}
                HookAction::ShortCircuit(v) => {
                    ran = i + 1;
                    early = Some(Ok(v));
                    break;
                }
                HookAction::Deny(f) => {
                    ran = i + 1;
                    early = Some(Err(f));
                    break;
                }
            }
        }
        let mut result = match early {
            Some(r) => r,
            None => {
                // Call the original; on a fault, poll the hooks that ran
                // for a healing decision (bounded retries).
                let mut attempt: u32 = 0;
                loop {
                    match (self.inner.original)(cx.proc, &cx.args) {
                        Ok(v) => break Ok(v),
                        // Exit is the termination contract, not a fault to
                        // heal — the exit-report hook depends on seeing it.
                        Err(f @ Fault::Exit(_)) => break Err(f),
                        Err(f) => {
                            let mut decision = FaultDecision::Propagate;
                            for hook in self.inner.hooks[..ran].iter() {
                                match hook.on_fault(&mut cx, &f, attempt) {
                                    FaultDecision::Propagate => {}
                                    d => {
                                        decision = d;
                                        break;
                                    }
                                }
                            }
                            match decision {
                                FaultDecision::Propagate => break Err(f),
                                FaultDecision::Retry => {
                                    attempt += 1;
                                    continue;
                                }
                                FaultDecision::Substitute(v) => break Ok(v),
                            }
                        }
                    }
                }
            }
        };
        for hook in self.inner.hooks[..ran].iter().rev() {
            hook.after(&mut cx, &mut result);
        }
        result
    }
}

/// The value a containing wrapper returns for a rejected call, by return
/// type (`NULL`, `-1`, `0.0`, or nothing).
pub fn containment_value(ret: &CType) -> CVal {
    match ret {
        CType::Void => CVal::Void,
        CType::Ptr { .. } | CType::FuncPtr { .. } | CType::Array { .. } => CVal::NULL,
        CType::Float | CType::Double => CVal::F64(0.0),
        _ => CVal::Int(-1),
    }
}

/// A shared, in-memory call log (the `log call` micro-generator's sink).
pub type CallLog = Arc<Mutex<Vec<String>>>;

/// Sets `errno = EINVAL` and short-circuits with the containment value —
/// the robustness wrapper's standard rejection.
pub fn reject(proc: &mut Proc, ret: &CType) -> HookAction {
    proc.set_errno(errno::EINVAL);
    HookAction::ShortCircuit(containment_value(ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use simlibc::testutil::libc_proc;

    fn strlen_proto() -> Prototype {
        parse_prototype("size_t strlen(const char *s);", &TypedefTable::with_builtins())
            .unwrap()
    }

    struct Tracer {
        log: CallLog,
        tag: &'static str,
        action: HookAction,
    }

    impl Hook for Tracer {
        fn name(&self) -> &'static str {
            "tracer"
        }
        fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
            self.log.lock().push(format!("{}:before:{}", self.tag, cx.func));
            self.action.clone()
        }
        fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
            self.log.lock().push(format!("{}:after:{}", self.tag, cx.func));
        }
    }

    fn tracer(log: &CallLog, tag: &'static str, action: HookAction) -> Arc<dyn Hook> {
        Arc::new(Tracer { log: Arc::clone(log), tag, action })
    }

    #[test]
    fn hooks_run_prefix_order_postfix_reversed() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![
                tracer(&log, "a", HookAction::Continue),
                tracer(&log, "b", HookAction::Continue),
            ],
        );
        let mut p = libc_proc();
        let s = p.alloc_cstr("xyz");
        let r = f.call(&mut p, &[CVal::Ptr(s)]).unwrap();
        assert_eq!(r, CVal::Int(3));
        assert_eq!(
            *log.lock(),
            vec!["a:before:strlen", "b:before:strlen", "b:after:strlen", "a:after:strlen"]
        );
    }

    #[test]
    fn short_circuit_skips_original_and_later_hooks() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![
                tracer(&log, "a", HookAction::Continue),
                tracer(&log, "b", HookAction::ShortCircuit(CVal::Int(-1))),
                tracer(&log, "c", HookAction::Continue),
            ],
        );
        let mut p = libc_proc();
        // NULL would crash the original — the short circuit saves it.
        let r = f.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1));
        let entries = log.lock().clone();
        assert!(!entries.iter().any(|e| e.starts_with("c:")), "{entries:?}");
        // After hooks of the hooks that ran still fire (a and b).
        assert_eq!(entries.last().unwrap(), "a:after:strlen");
    }

    #[test]
    fn deny_returns_the_fault() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![tracer(&log, "sec", HookAction::Deny(Fault::security("test")))],
        );
        let mut p = libc_proc();
        let err = f.call(&mut p, &[CVal::NULL]).unwrap_err();
        assert!(matches!(err, Fault::SecurityViolation { .. }));
    }

    #[test]
    fn integer_args_are_truncated_to_abi_width() {
        struct Probe;
        impl Hook for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn before(&self, cx: &mut CallCx<'_>) -> HookAction {
                // int c: (1<<40) + 65 truncates to 65.
                assert_eq!(cx.args[0], CVal::Int(65));
                HookAction::Continue
            }
        }
        let proto =
            parse_prototype("int isalpha(int c);", &TypedefTable::with_builtins()).unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("isalpha").unwrap().imp,
            vec![Arc::new(Probe)],
        );
        let mut p = libc_proc();
        let r = f.call(&mut p, &[CVal::Int((1i64 << 40) + 65)]).unwrap();
        assert_eq!(r, CVal::Int(1), "'A' is alphabetic");
    }

    #[test]
    fn fault_hooks_can_substitute_and_retry() {
        struct Healer {
            fix: simproc::VirtAddr,
        }
        impl Hook for Healer {
            fn name(&self) -> &'static str {
                "healer"
            }
            fn on_fault(
                &self,
                cx: &mut CallCx<'_>,
                _fault: &Fault,
                attempt: u32,
            ) -> FaultDecision {
                if attempt == 0 {
                    cx.args[0] = CVal::Ptr(self.fix);
                    FaultDecision::Retry
                } else {
                    FaultDecision::Substitute(CVal::Int(-7))
                }
            }
        }
        let mut p = libc_proc();
        let good = p.alloc_cstr("heal");
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![Arc::new(Healer { fix: good })],
        );
        // NULL faults once, the hook swaps in a valid string, the retry
        // succeeds with the repaired argument.
        let r = f.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(4));
    }

    #[test]
    fn exit_fault_is_never_healed() {
        struct Swallow;
        impl Hook for Swallow {
            fn name(&self) -> &'static str {
                "swallow"
            }
            fn on_fault(&self, _cx: &mut CallCx<'_>, _f: &Fault, _a: u32) -> FaultDecision {
                FaultDecision::Substitute(CVal::Void)
            }
        }
        let proto =
            parse_prototype("void exit(int status);", &TypedefTable::with_builtins())
                .unwrap();
        let f = WrappedFn::new(
            proto,
            simlibc::find_symbol("exit").unwrap().imp,
            vec![Arc::new(Swallow)],
        );
        let mut p = libc_proc();
        let err = f.call(&mut p, &[CVal::Int(3)]).unwrap_err();
        assert_eq!(err, Fault::Exit(3), "exit is a contract, not a fault");
    }

    #[test]
    fn containment_values_by_return_type() {
        let t = TypedefTable::with_builtins();
        let cases = [
            ("char *f(void);", CVal::NULL),
            ("int f(void);", CVal::Int(-1)),
            ("void f(void);", CVal::Void),
            ("double f(void);", CVal::F64(0.0)),
            ("size_t f(void);", CVal::Int(-1)),
        ];
        for (proto, expect) in cases {
            let p = parse_prototype(proto, &t).unwrap();
            assert_eq!(containment_value(&p.ret), expect, "{proto}");
        }
    }

    #[test]
    fn wrapped_fn_debug_lists_hooks() {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let f = WrappedFn::new(
            strlen_proto(),
            simlibc::find_symbol("strlen").unwrap().imp,
            vec![tracer(&log, "a", HookAction::Continue)],
        );
        assert!(format!("{f:?}").contains("tracer"));
        assert_eq!(f.name(), "strlen");
        assert_eq!(f.hook_names(), vec!["tracer"]);
    }
}
