//! # wrappergen — HEALERS' flexible wrapper generation (paper §2.3)
//!
//! "The functionality of a wrapper generator is decomposed into a number
//! of features, each supported by a micro-generator. Each micro-generator
//! generates a fragment of the prefix and postfix code of a function. The
//! micro-generators can be combined in a variety of ways to generate new
//! wrapper types."
//!
//! Every micro-generator here has two faces:
//!
//! * **code** ([`codegen`]): the C fragment it would contribute to the
//!   wrapper `.so` — composed prefix-in-order / postfix-in-reverse and
//!   golden-tested against the paper's Figure 3;
//! * **behaviour** ([`hooks`]): a [`Hook`] executing the
//!   same logic inside the simulated process.
//!
//! [`build_wrapper`] assembles the three wrapper types of Figure 1
//! (robustness / security / profiling) from a fault-injection-derived
//! [`RobustApi`](typelattice::RobustApi); [`WrapperBuilder`] composes
//! custom ones.
//!
//! ```
//! use wrappergen::{build_wrapper, WrapperKind, WrapperConfig};
//! use typelattice::{RobustApi, RobustFunction, SafePred};
//! use cdecl::{parse_prototype, TypedefTable};
//! use simproc::CVal;
//!
//! let t = TypedefTable::with_builtins();
//! let api = RobustApi {
//!     library: "libsimc.so.1".into(),
//!     functions: vec![RobustFunction::new(
//!         parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
//!         vec![SafePred::CStr],
//!         true,
//!     )],
//! };
//! let lib = build_wrapper(WrapperKind::Robustness, &api, &WrapperConfig::default());
//!
//! // The wrapper contains the crash that strlen(NULL) would be:
//! let mut p = simlibc::testutil::libc_proc();
//! let r = lib.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
//! assert_eq!(r, CVal::Int(-1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builders;
pub mod codegen;
pub mod hooks;
mod oblivious;
pub mod policy;
mod runtime;
mod substitute;

pub use builders::{
    build_wrapper, build_wrapper_with_impls, LowConfidence, WrapperBuilder, WrapperConfig,
    WrapperKind, WrapperLibrary,
};
pub use oblivious::{
    oblivious_fault_value, oblivious_outcome, ObliviousCx, ObliviousOutcome,
};
pub use policy::{
    apply_repair, Policy, PolicyEngine, PolicyOverrides, ViolationClass, SUBSTITUTE_CAP,
};
pub use runtime::{
    containment_value, reject, CallCx, CallLog, CallModel, CompiledCheck, FailAction,
    FaultDecision, Hook, HookAction, HookOp, Lowered, ModelOp, PlannedCheck, WrappedFn,
};
pub use substitute::{SubstituteGen, SubstituteHook};
