//! Proves the compiled fast path's acceptance criterion: `WrappedFn::call`
//! performs **zero heap allocations** on the contained-accept path (and on
//! the containment-reject shortcut), measured by a counting global
//! allocator.
//!
//! The counter is thread-local (const-initialised, so reading it never
//! allocates) which keeps the measurement immune to allocation noise from
//! other test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use cdecl::{parse_prototype, TypedefTable};
use guardian::{CanaryRegistry, GuardOracle};
use simlibc::testutil::libc_proc;
use simproc::{CVal, Fault, Proc};
use typelattice::SafePred;
use wrappergen::hooks::{ArgCheckHook, CanaryHook};
use wrappergen::{PolicyEngine, WrappedFn};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn stub_seven(_p: &mut Proc, _args: &[CVal]) -> Result<CVal, Fault> {
    Ok(CVal::Int(7))
}

fn strlen_contained() -> WrappedFn {
    let t = TypedefTable::with_builtins();
    let proto = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
    let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
    let hook = ArgCheckHook::new(
        vec![SafePred::CStr],
        proto.ret.clone(),
        oracle,
        PolicyEngine::containment(),
    );
    WrappedFn::new(proto, stub_seven, vec![Arc::new(hook)])
}

#[test]
fn contained_accept_path_allocates_nothing() {
    let f = strlen_contained();
    assert!(f.has_plan(), "uniform-containment strlen must compile to a plan");

    let mut p = libc_proc();
    // A zeroed data buffer is a valid (empty) C string.
    let s = p.alloc_data_zeroed(16);

    // Warm up caches (MRU region cache, lazy statics) outside the window.
    assert_eq!(f.call(&mut p, &[CVal::Ptr(s)]).unwrap(), CVal::Int(7));

    let before = alloc_count();
    let r = f.call(&mut p, &[CVal::Ptr(s)]).unwrap();
    let after = alloc_count();
    assert_eq!(r, CVal::Int(7));
    assert_eq!(after - before, 0, "accept fast path heap-allocated");
}

#[test]
fn containment_reject_shortcut_allocates_nothing() {
    let f = strlen_contained();
    assert!(f.has_plan());

    let mut p = libc_proc();
    // NULL violates CStr; uniform containment rejects without the
    // dynamic pipeline.
    assert_eq!(f.call(&mut p, &[CVal::NULL]).unwrap(), CVal::Int(-1));

    let before = alloc_count();
    let r = f.call(&mut p, &[CVal::NULL]).unwrap();
    let after = alloc_count();
    assert_eq!(r, CVal::Int(-1));
    assert_eq!(after - before, 0, "containment reject path heap-allocated");
}

#[test]
fn plan_coverage_matches_hook_pipeline() {
    let t = TypedefTable::with_builtins();

    // Allocator interception must stay dynamic: CanaryHook does real
    // work (registry mutation) around malloc.
    let proto = parse_prototype("void *malloc(size_t n);", &t).unwrap();
    let registry = Arc::new(CanaryRegistry::new());
    let oracle = GuardOracle::new(Arc::clone(&registry));
    let f = WrappedFn::new(
        proto.clone(),
        stub_seven,
        vec![
            Arc::new(ArgCheckHook::new(
                vec![SafePred::Always],
                proto.ret.clone(),
                oracle,
                PolicyEngine::containment(),
            )),
            Arc::new(CanaryHook::new(registry)),
        ],
    );
    assert!(!f.has_plan(), "malloc with CanaryHook must run dynamically");

    // Non-uniform and healing engines still compile (check failures fall
    // back to the dynamic pipeline).
    let proto = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
    let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
    let f = WrappedFn::new(
        proto.clone(),
        stub_seven,
        vec![Arc::new(ArgCheckHook::new(
            vec![SafePred::CStr],
            proto.ret.clone(),
            oracle,
            PolicyEngine::healing(),
        ))],
    );
    assert!(f.has_plan(), "healing strlen lowers with fallback checks");
}
