//! Differential property test for epoch-memoized pointer validation.
//!
//! A compiled wrapper caches positive validations keyed on
//! `(wrapper, arg-slot, pointer, mem epoch, oracle epoch)`
//! (`Proc::validation_store`). The soundness bar: under *any*
//! interleaving of mappings, unmappings, protection changes, content
//! writes, canary-registry churn and wrapped calls, the memoized wrapper
//! must give exactly the verdict an un-memoized evaluation of the same
//! predicate gives — in particular it must never accept a pointer after
//! its region was unmapped or protected read-only.

use std::sync::Arc;

use cdecl::{parse_prototype, TypedefTable};
use guardian::{CanaryRegistry, GuardOracle};
use proptest::prelude::*;
use simproc::{CVal, Fault, Proc, Prot, VirtAddr};
use typelattice::SafePred;
use wrappergen::hooks::ArgCheckHook;
use wrappergen::{PolicyEngine, WrappedFn};

const SLOTS: usize = 4;
const PAGE: u64 = 0x1000;

/// Test regions live far above the standard process layout.
fn slot_addr(slot: usize) -> VirtAddr {
    VirtAddr::new(0x7000_0000 + (slot as u64) * 0x10_000)
}

/// Pure original: validation is the only thing under test, and a
/// side-effect-free body keeps the address-space epoch still across
/// calls, so memo entries survive as long as possible (the adversarial
/// case for staleness).
fn touch(_p: &mut Proc, _a: &[CVal]) -> Result<CVal, Fault> {
    Ok(CVal::Int(7))
}

/// One step of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Map the slot's page read-write (no-op if something is mapped).
    Map(usize),
    /// Unmap the slot's page.
    Unmap(usize),
    /// Drop the slot's page to read-only.
    ProtectRo(usize),
    /// Restore the slot's page to read-write.
    ProtectRw(usize),
    /// Write a byte into the slot's page (content change).
    Write(usize, u64),
    /// Register a 16-byte canary-guarded allocation at `base + off`
    /// (registry churn moves only the oracle's auxiliary epoch).
    Guard(usize, u64),
    /// Release the guarded allocation at `base + off`.
    Unguard(usize, u64),
    /// Call the `Writable(16)`-checked wrapper with `base + off`.
    CallWritable(usize, u64),
    /// Call the `CStr`-checked wrapper with `base + off`.
    CallCStr(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = 0..SLOTS;
    let off = 0..64u64;
    prop_oneof![
        slot.clone().prop_map(Op::Map),
        slot.clone().prop_map(Op::Unmap),
        slot.clone().prop_map(Op::ProtectRo),
        slot.clone().prop_map(Op::ProtectRw),
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::Write(s, o)),
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::Guard(s, o)),
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::Unguard(s, o)),
        // Calls appear twice so they dominate the mix and memo entries
        // actually get replayed.
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::CallWritable(s, o)),
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::CallWritable(s, o)),
        (slot.clone(), off.clone()).prop_map(|(s, o)| Op::CallCStr(s, o)),
        (slot, off).prop_map(|(s, o)| Op::CallCStr(s, o)),
    ]
}

/// Builds a compiled wrapper enforcing `pred` on its single argument.
fn checked_fn(proto: &str, pred: SafePred, oracle: &GuardOracle) -> WrappedFn {
    let proto = parse_prototype(proto, &TypedefTable::with_builtins()).unwrap();
    let ret = proto.ret.clone();
    let f = WrappedFn::new(
        proto,
        touch,
        vec![Arc::new(ArgCheckHook::new(
            vec![pred],
            ret,
            oracle.clone(),
            PolicyEngine::containment(),
        ))],
    );
    assert!(f.has_plan(), "the memoizing kernel is the thing under test");
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn memoized_verdicts_match_unmemoized_ground_truth(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let registry = Arc::new(CanaryRegistry::new());
        let oracle = GuardOracle::new(Arc::clone(&registry));
        let writable = checked_fn("int touch(void *p);", SafePred::Writable(16), &oracle);
        let cstr = checked_fn("int slen(const char *s);", SafePred::CStr, &oracle);
        let mut p = Proc::new();

        for op in &ops {
            match *op {
                Op::Map(s) => {
                    let _ = p.mem.map(slot_addr(s), PAGE, Prot::RW, format!("slot{s}"));
                }
                Op::Unmap(s) => {
                    p.mem.unmap(slot_addr(s));
                }
                Op::ProtectRo(s) => {
                    p.mem.protect(slot_addr(s), Prot::R);
                }
                Op::ProtectRw(s) => {
                    p.mem.protect(slot_addr(s), Prot::RW);
                }
                Op::Write(s, off) => {
                    let _ = p.mem.write_u8(slot_addr(s).add(off), 0x41);
                }
                Op::Guard(s, off) => {
                    let _ = registry.protect(&mut p, slot_addr(s).add(off), 16);
                }
                Op::Unguard(s, off) => {
                    registry.release(slot_addr(s).add(off));
                }
                Op::CallWritable(s, off) | Op::CallCStr(s, off) => {
                    let (f, pred) = if matches!(*op, Op::CallWritable(..)) {
                        (&writable, SafePred::Writable(16))
                    } else {
                        (&cstr, SafePred::CStr)
                    };
                    let args = [CVal::Ptr(slot_addr(s).add(off))];
                    // Un-memoized ground truth, evaluated fresh.
                    let valid = pred.check(&p, &oracle, &args, 0);
                    let expect = if valid { CVal::Int(7) } else { CVal::Int(-1) };
                    // Twice: the first call may populate the memo, the
                    // second must replay it — both must agree with the
                    // ground truth (nothing between them moves an epoch).
                    for round in 0..2 {
                        let got = f.call(&mut p, &args).unwrap();
                        prop_assert_eq!(
                            got,
                            expect,
                            "round {} of {:?}: memoized verdict diverged (valid={})",
                            round,
                            op,
                            valid
                        );
                    }
                }
            }
        }
    }
}
