//! The compiled telemetry epilogue must be observationally identical to
//! hook-pipeline recording: driving the same call trace through a
//! compiled wrapper (latency + flight recorded in the fast-path
//! epilogue) and through a dynamic pipeline recording via hooks must
//! produce byte-identical `<latency>` and `<flight-recorder>` XML.

use std::sync::Arc;

use cdecl::{parse_prototype, TypedefTable};
use guardian::{CanaryRegistry, GuardOracle};
use profiler::{to_xml_with_flight, FlightRecorder, Stats};
use simproc::{CVal, Fault, Proc};
use typelattice::SafePred;
use wrappergen::hooks::{ArgCheckHook, FlightRecorderHook};
use wrappergen::{CallCx, Hook, PolicyEngine, WrappedFn};

/// Hook-pipeline "call"-stage latency recording: the dynamic-path
/// reference the compiled epilogue must reproduce. (First in the
/// pipeline, so its `after` runs last and sees the settled cycles.)
struct CallLatencyHook {
    stats: Arc<Stats>,
}

impl Hook for CallLatencyHook {
    fn name(&self) -> &'static str {
        "call latency"
    }
    fn after(&self, cx: &mut CallCx<'_>, _result: &mut Result<CVal, Fault>) {
        let cycles = cx.proc.cycles().saturating_sub(cx.entry_cycles);
        self.stats.record_latency(cx.func, "call", cycles);
    }
}

struct Instrumented {
    strlen: WrappedFn,
    exit: WrappedFn,
    stats: Arc<Stats>,
    flight: Arc<FlightRecorder>,
}

/// The compiled variant: plain check pipeline, telemetry in the
/// epilogue.
fn compiled() -> Instrumented {
    let t = TypedefTable::with_builtins();
    let stats = Arc::new(Stats::new());
    let flight = Arc::new(FlightRecorder::new(16));
    let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
    let strlen_proto = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
    let strlen = WrappedFn::new_with_telemetry(
        strlen_proto.clone(),
        simlibc::find_symbol("strlen").unwrap().imp,
        vec![Arc::new(ArgCheckHook::new(
            vec![SafePred::CStr],
            strlen_proto.ret.clone(),
            oracle,
            PolicyEngine::containment(),
        ))],
        Some(Arc::clone(&stats)),
        Some(Arc::clone(&flight)),
    );
    let exit = WrappedFn::new_with_telemetry(
        parse_prototype("void exit(int status);", &t).unwrap(),
        simlibc::find_symbol("exit").unwrap().imp,
        vec![],
        Some(Arc::clone(&stats)),
        Some(Arc::clone(&flight)),
    );
    assert!(strlen.has_plan() && exit.has_plan(), "epilogues must not cost the fast path");
    Instrumented { strlen, exit, stats, flight }
}

/// The reference variant: identical checks, but recording rides the
/// dynamic hook pipeline (recorder hooks first, so their `after`s run
/// last — the legacy arrangement).
fn dynamic_reference() -> Instrumented {
    let t = TypedefTable::with_builtins();
    let stats = Arc::new(Stats::new());
    let flight = Arc::new(FlightRecorder::new(16));
    let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
    let strlen_proto = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
    let strlen = WrappedFn::new(
        strlen_proto.clone(),
        simlibc::find_symbol("strlen").unwrap().imp,
        vec![
            Arc::new(FlightRecorderHook::new(Arc::clone(&flight))),
            Arc::new(CallLatencyHook { stats: Arc::clone(&stats) }),
            Arc::new(ArgCheckHook::new(
                vec![SafePred::CStr],
                strlen_proto.ret.clone(),
                oracle,
                PolicyEngine::containment(),
            )),
        ],
    );
    let exit = WrappedFn::new(
        parse_prototype("void exit(int status);", &t).unwrap(),
        simlibc::find_symbol("exit").unwrap().imp,
        vec![
            Arc::new(FlightRecorderHook::new(Arc::clone(&flight))),
            Arc::new(CallLatencyHook { stats: Arc::clone(&stats) }),
        ],
    );
    assert!(!strlen.has_plan() && !exit.has_plan(), "the reference must stay dynamic");
    Instrumented { strlen, exit, stats, flight }
}

/// The shared trace: accepted calls, a contained rejection, and a
/// process-exit fault — every verdict class the recorder renders.
fn drive(lib: &Instrumented) -> (Proc, String) {
    let mut p = simlibc::testutil::libc_proc();
    let hello = p.alloc_cstr("hello");
    let longer = p.alloc_cstr("a somewhat longer string");
    lib.strlen.call(&mut p, &[CVal::Ptr(hello)]).unwrap();
    lib.strlen.call(&mut p, &[CVal::NULL]).unwrap(); // contained
    lib.strlen.call(&mut p, &[CVal::Ptr(longer)]).unwrap();
    lib.strlen.call(&mut p, &[CVal::Ptr(hello)]).unwrap(); // memo hit
    let err = lib.exit.call(&mut p, &[CVal::Int(3)]).unwrap_err();
    assert_eq!(err, Fault::Exit(3));
    let doc = to_xml_with_flight(
        "parity-app",
        "robustness",
        &lib.stats.snapshot(),
        None,
        &lib.flight.tail(),
    );
    (p, doc)
}

#[test]
fn compiled_epilogue_xml_is_byte_identical_to_hook_recording() {
    let (_, fast_doc) = drive(&compiled());
    let (_, dyn_doc) = drive(&dynamic_reference());
    // Non-vacuous: both sections must actually be present.
    assert!(fast_doc.contains("<latency stage=\"call\""), "{fast_doc}");
    assert!(fast_doc.contains("<flight-recorder entries=\"5\""), "{fast_doc}");
    assert!(
        fast_doc.contains("process exited with status 3"),
        "fault verdicts recorded: {fast_doc}"
    );
    assert_eq!(fast_doc, dyn_doc, "compiled epilogue diverged from hook recording");
}
