//! Golden test for the paper's Figure 3: the wrapper generated for
//! `wctrans` by combining the six micro-generators `prototype`,
//! `function exectime`, `collect errors`, `func error`, `call counter`
//! and `caller`.
//!
//! Differences from the paper's listing are typographic only: typedef
//! names are resolved (`wctrans_t` → `long`), array subscripts use this
//! reproduction's function index, and the OCR'd listing's inconsistent
//! underscore spellings are normalised.

use cdecl::{parse_prototype, TypedefTable};
use wrappergen::codegen::{
    generate_function, CallCounterGen, CallerGen, CodegenCx, CollectErrorsGen, ExectimeGen,
    FuncErrorsGen, MicroGen, PrototypeGen,
};

const GOLDEN: &str = "\
/* Prefix code by micro-gen prototype */
long wctrans(const char* a1)
{
  long ret;
/* Prefix code by micro-gen function exectime */
  unsigned long long exectime_start;
  unsigned long long exectime_end;
  rdtsc(exectime_start);
/* Prefix code by micro-gen collect errors */
  int collect_errors_err = errno;
/* Prefix code by micro-gen func error */
  int func_error_err = errno;
/* Prefix code by micro-gen call counter */
  ++call_counter_num_calls[1206];
/* Postfix code by micro-gen caller */
  ret = (*addr_wctrans)(a1);
/* Postfix code by micro-gen func error */
  if (func_error_err != errno)
    if (errno < 0 || errno >= MAX_ERRNO)
      ++func_error_cnter[1206][MAX_ERRNO];
    else
      ++func_error_cnter[1206][errno];
/* Postfix code by micro-gen collect errors */
  if (collect_errors_err != errno)
    if (errno < 0 || errno >= MAX_ERRNO)
      ++collect_errors_cnter[MAX_ERRNO];
    else
      ++collect_errors_cnter[errno];
/* Postfix code by micro-gen function exectime */
  rdtsc(exectime_end);
  exectime[1206] += exectime_end - exectime_start;
/* Postfix code by micro-gen prototype */
  return ret;
}
";

#[test]
fn figure3_wctrans_wrapper_matches_golden() {
    let t = TypedefTable::with_builtins();
    let proto = parse_prototype("wctrans_t wctrans(const char* a1);", &t).unwrap();
    let cx = CodegenCx { proto: &proto, func_index: 1206, preds: &[] };
    let gens: Vec<Box<dyn MicroGen>> = vec![
        Box::new(PrototypeGen),
        Box::new(ExectimeGen),
        Box::new(CollectErrorsGen),
        Box::new(FuncErrorsGen),
        Box::new(CallCounterGen),
        Box::new(CallerGen),
    ];
    let refs: Vec<&dyn MicroGen> = gens.iter().map(|g| g.as_ref()).collect();
    let code = generate_function(&refs, &cx);
    assert_eq!(code, GOLDEN, "generated:\n{code}");
}

#[test]
fn micro_generator_subsets_compose() {
    // "The micro-generators can be combined in a variety of ways":
    // dropping a micro-generator removes exactly its fragments.
    let t = TypedefTable::with_builtins();
    let proto = parse_prototype("wctrans_t wctrans(const char* a1);", &t).unwrap();
    let cx = CodegenCx { proto: &proto, func_index: 1206, preds: &[] };
    let without_exectime: Vec<&dyn MicroGen> =
        vec![&PrototypeGen, &CollectErrorsGen, &FuncErrorsGen, &CallCounterGen, &CallerGen];
    let code = generate_function(&without_exectime, &cx);
    assert!(!code.contains("rdtsc"));
    assert!(code.contains("collect_errors_err"));
    assert!(code.contains("(*addr_wctrans)(a1)"));
}
