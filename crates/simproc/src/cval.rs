//! The C value model: what flows in and out of simulated library calls.

use std::fmt;

use crate::addr::VirtAddr;

/// A value passed to or returned from a simulated C function.
///
/// Real C passes untyped machine words; `CVal` keeps a coarse tag so host
/// code stays readable, but conversions between integers and pointers are
/// deliberately free (as they are in C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CVal {
    /// Any integer argument (char, int, long, size_t ... sign preserved).
    Int(i64),
    /// A pointer argument.
    Ptr(VirtAddr),
    /// A floating point argument.
    F64(f64),
    /// The value of a `void` return.
    Void,
}

impl CVal {
    /// The null pointer.
    pub const NULL: CVal = CVal::Ptr(VirtAddr::NULL);

    /// Views the value as a pointer, converting integers bit-for-bit
    /// (as a cast in C would).
    pub fn as_ptr(self) -> VirtAddr {
        match self {
            CVal::Ptr(p) => p,
            CVal::Int(i) => VirtAddr::new(i as u64),
            CVal::F64(f) => VirtAddr::new(f as u64),
            CVal::Void => VirtAddr::NULL,
        }
    }

    /// Views the value as a signed integer.
    pub fn as_int(self) -> i64 {
        match self {
            CVal::Int(i) => i,
            CVal::Ptr(p) => p.get() as i64,
            CVal::F64(f) => f as i64,
            CVal::Void => 0,
        }
    }

    /// Views the value as an unsigned integer (e.g. a `size_t`).
    pub fn as_usize(self) -> u64 {
        self.as_int() as u64
    }

    /// Views the value as a double.
    pub fn as_f64(self) -> f64 {
        match self {
            CVal::F64(f) => f,
            CVal::Int(i) => i as f64,
            CVal::Ptr(p) => p.get() as f64,
            CVal::Void => 0.0,
        }
    }

    /// `true` for a null pointer or zero integer.
    pub fn is_null(self) -> bool {
        self.as_ptr().is_null()
    }

    /// Constructs a pointer value.
    pub fn ptr(addr: impl Into<VirtAddr>) -> CVal {
        CVal::Ptr(addr.into())
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Int(i) => write!(f, "{i}"),
            CVal::Ptr(p) => write!(f, "{p}"),
            CVal::F64(v) => write!(f, "{v}"),
            CVal::Void => write!(f, "(void)"),
        }
    }
}

impl From<i64> for CVal {
    fn from(v: i64) -> Self {
        CVal::Int(v)
    }
}

impl From<i32> for CVal {
    fn from(v: i32) -> Self {
        CVal::Int(v as i64)
    }
}

impl From<u64> for CVal {
    fn from(v: u64) -> Self {
        CVal::Int(v as i64)
    }
}

impl From<VirtAddr> for CVal {
    fn from(v: VirtAddr) -> Self {
        CVal::Ptr(v)
    }
}

impl From<f64> for CVal {
    fn from(v: f64) -> Self {
        CVal::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ptr_conversions_are_free() {
        let v = CVal::Int(0x1000);
        assert_eq!(v.as_ptr(), VirtAddr::new(0x1000));
        let p = CVal::ptr(VirtAddr::new(0x2000));
        assert_eq!(p.as_int(), 0x2000);
        assert_eq!(p.as_usize(), 0x2000);
    }

    #[test]
    fn negative_int_as_size() {
        // (size_t)-1 is huge, exactly like C.
        assert_eq!(CVal::Int(-1).as_usize(), u64::MAX);
    }

    #[test]
    fn null_detection() {
        assert!(CVal::NULL.is_null());
        assert!(CVal::Int(0).is_null());
        assert!(!CVal::Int(1).is_null());
        assert!(CVal::Void.is_null());
    }

    #[test]
    fn float_conversions() {
        assert_eq!(CVal::F64(2.5).as_f64(), 2.5);
        assert_eq!(CVal::F64(2.9).as_int(), 2);
        assert_eq!(CVal::Int(3).as_f64(), 3.0);
    }

    #[test]
    fn from_impls() {
        assert_eq!(CVal::from(3i32), CVal::Int(3));
        assert_eq!(CVal::from(3u64), CVal::Int(3));
        assert_eq!(CVal::from(VirtAddr::new(5)), CVal::Ptr(VirtAddr::new(5)));
        assert_eq!(CVal::from(1.5f64), CVal::F64(1.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CVal::Int(-4).to_string(), "-4");
        assert_eq!(CVal::Void.to_string(), "(void)");
    }
}
