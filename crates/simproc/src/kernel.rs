//! A miniature in-memory "kernel": file system and descriptor table.
//!
//! The simulated C library's stdio subset needs somewhere to read and write
//! files. Keeping the file system on the kernel side (outside the simulated
//! address space) mirrors a real OS: a wild `FILE*` can crash the process,
//! but file *contents* live behind the system-call boundary and survive.

use std::collections::BTreeMap;
use std::fmt;

/// How a file was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// `"r"` — read only; the file must exist.
    Read,
    /// `"w"` — write only; truncates or creates.
    Write,
    /// `"a"` — append; creates if missing.
    Append,
}

impl OpenMode {
    /// Parses a (simplified) `fopen` mode string.
    pub fn parse(mode: &str) -> Option<OpenMode> {
        match mode.trim_end_matches('b') {
            "r" => Some(OpenMode::Read),
            "w" => Some(OpenMode::Write),
            "a" => Some(OpenMode::Append),
            _ => None,
        }
    }
}

/// An open file description.
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    mode: OpenMode,
    pos: usize,
    eof: bool,
}

/// Error codes returned by kernel calls, mirroring a tiny errno subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// File does not exist (`ENOENT`).
    NotFound,
    /// Bad file descriptor (`EBADF`).
    BadFd,
    /// Operation not permitted by the open mode (`EACCES`).
    Access,
    /// Invalid argument (`EINVAL`).
    Invalid,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NotFound => write!(f, "no such file or directory"),
            KernelError::BadFd => write!(f, "bad file descriptor"),
            KernelError::Access => write!(f, "permission denied"),
            KernelError::Invalid => write!(f, "invalid argument"),
        }
    }
}

impl std::error::Error for KernelError {}

impl KernelError {
    /// The corresponding classic errno value.
    pub fn errno(self) -> i32 {
        match self {
            KernelError::NotFound => crate::errno::ENOENT,
            KernelError::BadFd => crate::errno::EBADF,
            KernelError::Access => crate::errno::EACCES,
            KernelError::Invalid => crate::errno::EINVAL,
        }
    }
}

/// The in-memory kernel state of a simulated process.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    fs: BTreeMap<String, Vec<u8>>,
    fds: Vec<Option<OpenFile>>,
    /// Everything the process wrote to stdout (fd 1 analogue).
    pub stdout: Vec<u8>,
    /// Everything the process wrote to stderr (fd 2 analogue).
    pub stderr: Vec<u8>,
    /// Whether the process currently runs with root privilege
    /// (for the security demo: hijacks of root processes are what matter).
    pub root_privilege: bool,
    /// Set when hijacked control flow "spawned a shell" — the attacker's
    /// success flag in the heap-smashing demo.
    pub shell_spawned: bool,
}

impl Kernel {
    /// Creates an empty kernel with no files.
    pub fn new() -> Self {
        Kernel::default()
    }

    /// Creates or replaces a file.
    pub fn install_file(&mut self, path: impl Into<String>, contents: impl Into<Vec<u8>>) {
        self.fs.insert(path.into(), contents.into());
    }

    /// Reads back a whole file (host-side helper for tests and reports).
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.fs.get(path).map(|v| v.as_slice())
    }

    /// All file paths currently present.
    pub fn file_paths(&self) -> impl Iterator<Item = &str> {
        self.fs.keys().map(|s| s.as_str())
    }

    /// Opens a file; returns a descriptor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotFound`] for reading a missing file.
    pub fn open(&mut self, path: &str, mode: OpenMode) -> Result<i32, KernelError> {
        match mode {
            OpenMode::Read => {
                if !self.fs.contains_key(path) {
                    return Err(KernelError::NotFound);
                }
            }
            OpenMode::Write => {
                self.fs.insert(path.to_string(), Vec::new());
            }
            OpenMode::Append => {
                self.fs.entry(path.to_string()).or_default();
            }
        }
        let pos = if mode == OpenMode::Append { self.fs[path].len() } else { 0 };
        let file = OpenFile { path: path.to_string(), mode, pos, eof: false };
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return Ok(i as i32 + 3); // 0..2 reserved for std streams
            }
        }
        self.fds.push(Some(file));
        Ok(self.fds.len() as i32 + 2)
    }

    fn slot(&mut self, fd: i32) -> Result<&mut OpenFile, KernelError> {
        let idx = (fd - 3) as usize;
        if fd < 3 {
            return Err(KernelError::BadFd);
        }
        self.fds.get_mut(idx).and_then(|s| s.as_mut()).ok_or(KernelError::BadFd)
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: i32) -> Result<(), KernelError> {
        let idx = (fd - 3) as usize;
        if fd < 3 || idx >= self.fds.len() || self.fds[idx].is_none() {
            return Err(KernelError::BadFd);
        }
        self.fds[idx] = None;
        Ok(())
    }

    /// Reads up to `len` bytes from `fd` at its current position.
    pub fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, KernelError> {
        // Split borrows: look up contents after validating the fd.
        let (path, pos, mode) = {
            let f = self.slot(fd)?;
            (f.path.clone(), f.pos, f.mode)
        };
        if mode != OpenMode::Read {
            return Err(KernelError::Access);
        }
        let data = self.fs.get(&path).ok_or(KernelError::NotFound)?;
        let end = (pos + len).min(data.len());
        let out = data[pos.min(data.len())..end].to_vec();
        let f = self.slot(fd)?;
        f.pos = end;
        if out.len() < len {
            f.eof = true;
        }
        Ok(out)
    }

    /// Appends/overwrites bytes at the descriptor's position.
    pub fn write(&mut self, fd: i32, bytes: &[u8]) -> Result<usize, KernelError> {
        if fd == 1 {
            self.stdout.extend_from_slice(bytes);
            return Ok(bytes.len());
        }
        if fd == 2 {
            self.stderr.extend_from_slice(bytes);
            return Ok(bytes.len());
        }
        let (path, pos, mode) = {
            let f = self.slot(fd)?;
            (f.path.clone(), f.pos, f.mode)
        };
        if mode == OpenMode::Read {
            return Err(KernelError::Access);
        }
        let data = self.fs.get_mut(&path).ok_or(KernelError::NotFound)?;
        if pos >= data.len() {
            data.extend_from_slice(bytes);
        } else {
            let overlap = (data.len() - pos).min(bytes.len());
            data[pos..pos + overlap].copy_from_slice(&bytes[..overlap]);
            data.extend_from_slice(&bytes[overlap..]);
        }
        let f = self.slot(fd)?;
        f.pos = pos + bytes.len();
        Ok(bytes.len())
    }

    /// Whether the descriptor has hit end-of-file.
    pub fn at_eof(&mut self, fd: i32) -> Result<bool, KernelError> {
        Ok(self.slot(fd)?.eof)
    }

    /// Stdout decoded as UTF-8 (lossy), for assertions in tests/examples.
    pub fn stdout_text(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_missing_fails() {
        let mut k = Kernel::new();
        assert_eq!(k.open("nope.txt", OpenMode::Read), Err(KernelError::NotFound));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut k = Kernel::new();
        let fd = k.open("f.txt", OpenMode::Write).unwrap();
        k.write(fd, b"hello world").unwrap();
        k.close(fd).unwrap();
        let fd = k.open("f.txt", OpenMode::Read).unwrap();
        assert_eq!(k.read(fd, 5).unwrap(), b"hello");
        assert_eq!(k.read(fd, 64).unwrap(), b" world");
        assert!(k.at_eof(fd).unwrap());
        k.close(fd).unwrap();
    }

    #[test]
    fn append_mode_appends() {
        let mut k = Kernel::new();
        k.install_file("log", b"a".to_vec());
        let fd = k.open("log", OpenMode::Append).unwrap();
        k.write(fd, b"b").unwrap();
        assert_eq!(k.file("log").unwrap(), b"ab");
    }

    #[test]
    fn mode_enforcement() {
        let mut k = Kernel::new();
        k.install_file("f", b"x".to_vec());
        let fd = k.open("f", OpenMode::Read).unwrap();
        assert_eq!(k.write(fd, b"y"), Err(KernelError::Access));
        let wfd = k.open("g", OpenMode::Write).unwrap();
        assert_eq!(k.read(wfd, 1), Err(KernelError::Access));
    }

    #[test]
    fn bad_fd_rejected() {
        let mut k = Kernel::new();
        assert_eq!(k.read(42, 1), Err(KernelError::BadFd));
        assert_eq!(k.close(0), Err(KernelError::BadFd));
        assert_eq!(k.close(-1), Err(KernelError::BadFd));
    }

    #[test]
    fn fd_reuse_after_close() {
        let mut k = Kernel::new();
        let fd1 = k.open("a", OpenMode::Write).unwrap();
        k.close(fd1).unwrap();
        let fd2 = k.open("b", OpenMode::Write).unwrap();
        assert_eq!(fd1, fd2);
    }

    #[test]
    fn std_streams_capture() {
        let mut k = Kernel::new();
        k.write(1, b"out").unwrap();
        k.write(2, b"err").unwrap();
        assert_eq!(k.stdout_text(), "out");
        assert_eq!(k.stderr, b"err");
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(OpenMode::parse("r"), Some(OpenMode::Read));
        assert_eq!(OpenMode::parse("rb"), Some(OpenMode::Read));
        assert_eq!(OpenMode::parse("w"), Some(OpenMode::Write));
        assert_eq!(OpenMode::parse("a"), Some(OpenMode::Append));
        assert_eq!(OpenMode::parse("r+"), None);
    }

    #[test]
    fn overwrite_in_middle() {
        let mut k = Kernel::new();
        let fd = k.open("f", OpenMode::Write).unwrap();
        k.write(fd, b"aaaa").unwrap();
        // Re-open in write mode truncates.
        let fd2 = k.open("f", OpenMode::Write).unwrap();
        k.write(fd2, b"bb").unwrap();
        assert_eq!(k.file("f").unwrap(), b"bb");
    }

    #[test]
    fn kernel_error_errnos() {
        assert_eq!(KernelError::NotFound.errno(), crate::errno::ENOENT);
        assert_eq!(KernelError::BadFd.errno(), crate::errno::EBADF);
    }
}
