//! The function/address table: gives every registered function a text
//! address so function *pointers* exist in simulated memory, indirect calls
//! can be resolved — and corrupted pointers can hijack control flow, which
//! is precisely the attack the paper's security wrapper stops.

use std::collections::HashMap;

use crate::addr::VirtAddr;
use crate::layout::TEXT_BASE;

/// Identifier of a registered simulated function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index form, for dense per-function statistics arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Byte spacing between consecutive function entry points in the simulated
/// text segment.
pub const FUNC_STRIDE: u64 = 16;

/// Marker bytes an attacker plants in a buffer; if control flow ever
/// reaches them, the "shellcode" runs. See [`crate::proc::Proc::resolve_call`].
pub const SHELLCODE_MAGIC: &[u8] = b"\x90\x90SHELLCODE";

/// The outcome of resolving an indirect call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A legitimate registered function.
    Function(FuncId),
    /// The target points into memory containing attacker shellcode.
    Shellcode,
    /// The target is garbage (unmapped or not a function entry).
    Wild,
}

/// Maps names and text addresses to function ids.
#[derive(Debug, Clone, Default)]
pub struct FuncTable {
    names: Vec<String>,
    by_name: HashMap<String, FuncId>,
}

impl FuncTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FuncTable::default()
    }

    /// Registers a function name, returning its id and text address.
    /// Registering the same name twice returns the existing entry.
    pub fn register(&mut self, name: &str) -> (FuncId, VirtAddr) {
        if let Some(&id) = self.by_name.get(name) {
            return (id, self.addr_of(id));
        }
        let id = FuncId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        (id, self.addr_of(id))
    }

    /// The text address of a function id.
    pub fn addr_of(&self, id: FuncId) -> VirtAddr {
        TEXT_BASE.add(FUNC_STRIDE * (id.0 as u64 + 1))
    }

    /// Resolves a text address back to a function id, if it is an exact
    /// entry point of a registered function.
    pub fn by_addr(&self, addr: VirtAddr) -> Option<FuncId> {
        let off = addr.diff(TEXT_BASE);
        if off == 0 || !off.is_multiple_of(FUNC_STRIDE) {
            return None;
        }
        let idx = off / FUNC_STRIDE - 1;
        if idx < self.names.len() as u64 {
            Some(FuncId(idx as u32))
        } else {
            None
        }
    }

    /// Looks up a function id by name.
    pub fn id_of(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The name of a function id.
    pub fn name_of(&self, id: FuncId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (FuncId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut t = FuncTable::new();
        let (id, addr) = t.register("strcpy");
        assert_eq!(t.by_addr(addr), Some(id));
        assert_eq!(t.id_of("strcpy"), Some(id));
        assert_eq!(t.name_of(id), "strcpy");
        assert_eq!(t.addr_of(id), addr);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut t = FuncTable::new();
        let a = t.register("memcpy");
        let b = t.register("memcpy");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_addresses_do_not_resolve() {
        let mut t = FuncTable::new();
        let (_, addr) = t.register("f");
        assert_eq!(t.by_addr(addr.add(1)), None, "misaligned");
        assert_eq!(t.by_addr(addr.add(FUNC_STRIDE)), None, "past the end");
        assert_eq!(t.by_addr(TEXT_BASE), None, "base is never a function");
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut t = FuncTable::new();
        t.register("a");
        t.register("b");
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!t.is_empty());
    }

    #[test]
    fn addresses_are_distinct_and_in_text() {
        let mut t = FuncTable::new();
        let (_, a1) = t.register("x");
        let (_, a2) = t.register("y");
        assert_ne!(a1, a2);
        assert!(a1 >= TEXT_BASE && a2 >= TEXT_BASE);
    }
}
