//! The simulated, protection-checked address space.
//!
//! Memory is a sorted set of disjoint [`Region`]s, each with its own
//! protection bits. Every access is checked; a bad access produces a
//! [`Fault::Segv`] value instead of killing the host — which is exactly
//! what lets the fault injector observe library crashes safely.
//!
//! # Performance model
//!
//! Region lookup is a binary search over the sorted region list with a
//! one-entry last-hit (MRU) cache in front of it, so the per-byte loops in
//! `simlibc` (`strlen`, `strcpy`, `memcpy`, ...) and the extent oracle pay
//! O(1) per access in the common case of repeated hits inside one region.
//! The MRU cache is invalidated whenever the region list mutates
//! (`map`/`unmap`/`protect`); a stale hit is additionally re-validated with
//! `Region::contains`, so correctness never depends on invalidation.
//!
//! Region backing stores are recycled through a thread-local buffer pool:
//! each region tracks the dirty byte-range actually written, and on unmap
//! (or process teardown) only that range is re-zeroed before the buffer
//! returns to the pool. A fault-injection campaign that builds a fresh
//! multi-megabyte process image per test case therefore pays for the bytes
//! it touched, not for the mapped size.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::addr::{Access, Prot, VirtAddr};
use crate::fault::Fault;

/// Buffers below this size are cheap enough to allocate fresh; only larger
/// segment-sized buffers are worth pooling.
const POOL_MIN_LEN: usize = 4096;
/// Per-thread cap on retained pool buffers (bounds worst-case residency).
const POOL_MAX_BUFS: usize = 16;

thread_local! {
    /// Recycled all-zero region buffers, keyed by exact length.
    static BUF_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A region backing store: a zero-initialised byte buffer that remembers
/// the dirty range actually written, so it can be re-zeroed in O(dirty)
/// and recycled through the thread-local pool.
///
/// Invariant: every buffer in [`BUF_POOL`] is entirely zero.
struct PoolBuf {
    buf: Vec<u8>,
    dirty_lo: usize,
    /// Exclusive; `dirty_lo >= dirty_hi` means clean.
    dirty_hi: usize,
}

impl PoolBuf {
    /// An all-zero buffer of `len` bytes, recycled from the pool if a
    /// matching one is available.
    fn zeroed(len: usize) -> Self {
        let buf = if len >= POOL_MIN_LEN {
            BUF_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                pool.iter().position(|b| b.len() == len).map(|i| pool.swap_remove(i))
            })
        } else {
            None
        };
        let buf = buf.unwrap_or_else(|| vec![0; len]);
        debug_assert!(buf.iter().all(|&b| b == 0), "pooled buffer not zeroed");
        PoolBuf { buf, dirty_lo: 0, dirty_hi: 0 }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable view of `off..off + n`, widening the dirty range to cover it.
    fn slice_mut(&mut self, off: usize, n: usize) -> &mut [u8] {
        if self.dirty_lo >= self.dirty_hi {
            self.dirty_lo = off;
            self.dirty_hi = off + n;
        } else {
            self.dirty_lo = self.dirty_lo.min(off);
            self.dirty_hi = self.dirty_hi.max(off + n);
        }
        &mut self.buf[off..off + n]
    }

    /// Grows the buffer to `new_len` with zero fill (appended bytes are
    /// clean by construction).
    fn resize_zeroed(&mut self, new_len: usize) {
        debug_assert!(new_len >= self.buf.len());
        self.buf.resize(new_len, 0);
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if self.buf.len() < POOL_MIN_LEN {
            return;
        }
        if self.dirty_hi > self.dirty_lo {
            let hi = self.dirty_hi.min(self.buf.len());
            self.buf[self.dirty_lo..hi].fill(0);
        }
        let buf = std::mem::take(&mut self.buf);
        BUF_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < POOL_MAX_BUFS {
                pool.push(buf);
            }
        });
    }
}

impl Clone for PoolBuf {
    fn clone(&self) -> Self {
        PoolBuf { buf: self.buf.clone(), dirty_lo: self.dirty_lo, dirty_hi: self.dirty_hi }
    }
}

impl fmt::Debug for PoolBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolBuf").field("len", &self.buf.len()).finish()
    }
}

/// A contiguous mapped range of the simulated address space.
#[derive(Debug, Clone)]
pub struct Region {
    base: VirtAddr,
    data: PoolBuf,
    prot: Prot,
    name: String,
}

impl Region {
    /// Base address of the region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` if the region has zero length (never created by `map`).
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.len())
    }

    /// Protection bits.
    pub fn prot(&self) -> Prot {
        self.prot
    }

    /// Diagnostic name (e.g. `"heap"`, `"[stack]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Error returned by [`AddressSpace::map`] when a mapping is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The requested range overlaps an existing region.
    Overlap {
        /// Name of the existing region that conflicts.
        existing: String,
    },
    /// Zero-length mappings are rejected.
    ZeroLength,
    /// The range wraps around the end of the address space.
    Wraps,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { existing } => {
                write!(f, "mapping overlaps existing region `{existing}`")
            }
            MapError::ZeroLength => write!(f, "zero-length mapping"),
            MapError::Wraps => write!(f, "mapping wraps around the address space"),
        }
    }
}

impl std::error::Error for MapError {}

/// A sparse simulated address space.
///
/// ```
/// use simproc::{AddressSpace, Prot, VirtAddr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = AddressSpace::new();
/// mem.map(VirtAddr::new(0x1000), 0x100, Prot::RW, "data")?;
/// mem.write_u32(VirtAddr::new(0x1010), 0xdeadbeef)?;
/// assert_eq!(mem.read_u32(VirtAddr::new(0x1010))?, 0xdeadbeef);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct AddressSpace {
    /// Regions sorted by base address; disjoint.
    regions: Vec<Region>,
    /// Index + 1 of the last region a lookup resolved to (0 = none).
    /// Purely a cache: a hit is re-validated with `Region::contains`, and
    /// the slot is cleared whenever the region list mutates.
    ///
    /// # Ordering audit
    ///
    /// All loads and stores are `Relaxed`, and that is sound: the hint is
    /// only ever *advisory*. A reader that observes an arbitrarily stale
    /// index re-validates it against the current `regions` vec with
    /// `Region::contains` before trusting it, and `regions` itself is only
    /// reachable through a `&`/`&mut` borrow, so the usual aliasing rules —
    /// not the atomic — synchronize the data the hint points into. The
    /// invalidating stores in `map`/`unmap`/`protect` run under `&mut self`
    /// (no concurrent readers can exist) and are kept only so the *next*
    /// borrow starts from a clean slot. The cross-thread publication signal
    /// for cached pointer verdicts is the epoch below, never the MRU.
    mru: AtomicUsize,
    /// Monotonically increasing validation epoch. Bumped by every mutation
    /// that can change the answer of a pointer-validity query — mapping
    /// changes (`map`/`unmap`/`protect`/`grow`) *and* content writes
    /// (heap chunk headers, canary words and C-string terminators all live
    /// in region data). Wrapper-level memoized validations are tagged with
    /// the epoch they were computed under and expire the moment it moves.
    ///
    /// Shared (via [`AddressSpace::epoch_handle`]) so observers on other
    /// threads see bumps: every bump is a `Release` store paired with
    /// `Acquire` loads in [`AddressSpace::epoch`] / [`EpochHandle::get`],
    /// so a reader that still observes epoch `E` is guaranteed the
    /// mutation tagged `E + 1` has not been published to it — a memoized
    /// verdict can at worst be *re-checked* needlessly, never wrongly
    /// trusted across an unmap.
    epoch: Arc<AtomicU64>,
}

/// A cloneable, lock-free view of an address space's validation epoch,
/// readable from any thread — including while the owning thread holds
/// `&mut AddressSpace` and is mutating it. Obtained from
/// [`AddressSpace::epoch_handle`].
#[derive(Debug, Clone)]
pub struct EpochHandle(Arc<AtomicU64>);

impl EpochHandle {
    /// The current epoch (`Acquire`: pairs with the `Release` bump, so any
    /// mutation whose bump is visible here happened-before this load).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

impl Clone for AddressSpace {
    fn clone(&self) -> Self {
        AddressSpace {
            regions: self.regions.clone(),
            mru: AtomicUsize::new(self.mru.load(Ordering::Relaxed)),
            // A clone is an independent space: snapshot the value into a
            // fresh counter instead of sharing the allocation, so bumps in
            // one never expire (or revive) verdicts cached against the
            // other. Campaign determinism depends on this.
            epoch: Arc::new(AtomicU64::new(self.epoch.load(Ordering::Acquire))),
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            mru: AtomicUsize::new(0),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current validation epoch. Any cached judgement about this
    /// address space is valid only while the epoch it was computed under
    /// still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A shareable handle for reading the epoch from other threads while
    /// this space is being mutated elsewhere.
    pub fn epoch_handle(&self) -> EpochHandle {
        EpochHandle(Arc::clone(&self.epoch))
    }

    /// Advances the validation epoch, expiring every memoized validation.
    /// Called internally on any mutation; public so owners tracking state
    /// *outside* the address space (stack-pointer moves, frame pops) can
    /// expire caches too.
    ///
    /// `Release`: pairs with the `Acquire` loads in [`Self::epoch`] and
    /// [`EpochHandle::get`] so everything written before the bump is
    /// visible to a reader that observes the new value.
    pub fn bump_epoch(&mut self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Maps `len` zeroed bytes at `base` with protection `prot`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the range is empty, wraps, or overlaps an
    /// existing region.
    pub fn map(
        &mut self,
        base: VirtAddr,
        len: u64,
        prot: Prot,
        name: impl Into<String>,
    ) -> Result<(), MapError> {
        if len == 0 {
            return Err(MapError::ZeroLength);
        }
        if base.get().checked_add(len).is_none() {
            return Err(MapError::Wraps);
        }
        let end = base.add(len);
        let idx = self.regions.partition_point(|r| r.base() < base);
        // Only the neighbours can overlap: the last region starting below
        // `base` (may extend past it) and the first starting at or above it.
        if idx > 0 && self.regions[idx - 1].end() > base {
            return Err(MapError::Overlap { existing: self.regions[idx - 1].name.clone() });
        }
        if let Some(r) = self.regions.get(idx) {
            if r.base() < end {
                return Err(MapError::Overlap { existing: r.name.clone() });
            }
        }
        let region =
            Region { base, data: PoolBuf::zeroed(len as usize), prot, name: name.into() };
        self.regions.insert(idx, region);
        self.mru.store(0, Ordering::Relaxed);
        self.bump_epoch();
        Ok(())
    }

    /// Removes the region based exactly at `base`. Returns `true` if one
    /// was removed.
    pub fn unmap(&mut self, base: VirtAddr) -> bool {
        let i = self.regions.partition_point(|r| r.base() < base);
        if self.regions.get(i).is_some_and(|r| r.base() == base) {
            self.regions.remove(i);
            self.mru.store(0, Ordering::Relaxed);
            self.bump_epoch();
            true
        } else {
            false
        }
    }

    /// Changes the protection of the region containing `addr`.
    /// Returns `false` if no region contains it.
    pub fn protect(&mut self, addr: VirtAddr, prot: Prot) -> bool {
        match self.region_index(addr) {
            Some(i) => {
                self.regions[i].prot = prot;
                self.mru.store(0, Ordering::Relaxed);
                self.bump_epoch();
                true
            }
            None => false,
        }
    }

    /// Grows the region based at `base` by `extra` bytes (zero filled),
    /// failing if the grown region would collide with the next mapping.
    pub fn grow(&mut self, base: VirtAddr, extra: u64) -> Result<(), MapError> {
        if extra == 0 {
            return Ok(());
        }
        let i = self.regions.partition_point(|r| r.base() < base);
        if self.regions.get(i).is_none_or(|r| r.base() != base) {
            return Err(MapError::Overlap { existing: "<none>".into() });
        }
        let new_end =
            self.regions[i].end().get().checked_add(extra).ok_or(MapError::Wraps)?;
        if let Some(next) = self.regions.get(i + 1) {
            if new_end > next.base().get() {
                return Err(MapError::Overlap { existing: next.name.clone() });
            }
        }
        let new_len = self.regions[i].data.len() + extra as usize;
        self.regions[i].data.resize_zeroed(new_len);
        self.bump_epoch();
        Ok(())
    }

    /// All regions, sorted by base address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_at(&self, addr: VirtAddr) -> Option<&Region> {
        self.region_index(addr).map(|i| &self.regions[i])
    }

    fn region_index(&self, addr: VirtAddr) -> Option<usize> {
        // Fast path: the last region any lookup hit. Stale values are
        // harmless — regions are disjoint, so a `contains` hit is always
        // the unique answer.
        let hint = self.mru.load(Ordering::Relaxed);
        if hint != 0 {
            if let Some(r) = self.regions.get(hint - 1) {
                if r.contains(addr) {
                    return Some(hint - 1);
                }
            }
        }
        // Last region whose base is <= addr.
        let i = self.regions.partition_point(|r| r.base() <= addr);
        if i == 0 {
            return None;
        }
        let r = &self.regions[i - 1];
        if r.contains(addr) {
            self.mru.store(i, Ordering::Relaxed);
            Some(i - 1)
        } else {
            None
        }
    }

    /// The index of the region after `i` only if it starts exactly at
    /// `cur` (i.e. the mapping is contiguous across the boundary).
    fn next_contiguous(&self, i: usize, cur: VirtAddr) -> Option<usize> {
        match self.regions.get(i + 1) {
            Some(n) if n.base() == cur => Some(i + 1),
            _ => None,
        }
    }

    /// Checks that `[addr, addr+len)` is mapped with permission for
    /// `access`, without touching the data.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segv`] at the first offending byte.
    pub fn check(&self, addr: VirtAddr, len: u64, access: Access) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let mut idx = self.region_index(addr);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let i = match idx {
                Some(i) if self.regions[i].prot().allows(access) => i,
                _ => return Err(Fault::segv(cur, access, "memory access")),
            };
            let span = self.regions[i].end().diff(cur).min(remaining);
            cur = cur.add(span);
            remaining -= span;
            if remaining > 0 {
                idx = self.next_contiguous(i, cur);
            }
        }
        Ok(())
    }

    /// Number of bytes accessible for `access` starting at `addr`, walking
    /// across contiguous regions. Zero if `addr` itself is inaccessible.
    ///
    /// This powers the *extent oracle* used by security wrappers to bound
    /// string copies.
    pub fn accessible_extent(&self, addr: VirtAddr, access: Access) -> u64 {
        let mut idx = self.region_index(addr);
        let mut cur = addr;
        let mut total = 0u64;
        while let Some(i) = idx {
            let r = &self.regions[i];
            if !r.prot().allows(access) {
                break;
            }
            let span = r.end().diff(cur);
            total += span;
            cur = cur.add(span);
            idx = self.next_contiguous(i, cur);
        }
        total
    }

    /// Reads `len` bytes at `addr` into `out` (which must be exactly `len`
    /// long) without allocating.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte is unreadable; `out` may be partially
    /// overwritten in that case but nothing else is affected.
    pub fn read_into(&self, addr: VirtAddr, out: &mut [u8]) -> Result<(), Fault> {
        self.check(addr, out.len() as u64, Access::Read)?;
        self.copy_out(addr, out);
        Ok(())
    }

    /// Copies `out.len()` bytes starting at `addr` into `out`. The range
    /// must already be known mapped.
    fn copy_out(&self, addr: VirtAddr, out: &mut [u8]) {
        if out.is_empty() {
            return;
        }
        let mut i = self.region_index(addr).expect("checked");
        let mut cur = addr;
        let mut dst = out;
        while !dst.is_empty() {
            let r = &self.regions[i];
            let off = cur.diff(r.base()) as usize;
            let span = (r.data.len() - off).min(dst.len());
            dst[..span].copy_from_slice(&r.data.as_slice()[off..off + span]);
            cur = cur.add(span as u64);
            dst = &mut dst[span..];
            if !dst.is_empty() {
                i = self.next_contiguous(i, cur).expect("checked");
            }
        }
    }

    /// Copies `src` to `addr`. The range must already be known mapped.
    fn copy_in(&mut self, addr: VirtAddr, src: &[u8]) {
        if src.is_empty() {
            return;
        }
        self.bump_epoch();
        let mut i = self.region_index(addr).expect("checked");
        let mut cur = addr;
        let mut src = src;
        while !src.is_empty() {
            let r = &mut self.regions[i];
            let off = cur.diff(r.base()) as usize;
            let span = (r.data.len() - off).min(src.len());
            r.data.slice_mut(off, span).copy_from_slice(&src[..span]);
            cur = cur.add(span as u64);
            src = &src[span..];
            if !src.is_empty() {
                i = self.next_contiguous(i, cur).expect("checked");
            }
        }
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte is unreadable.
    pub fn read_bytes(&self, addr: VirtAddr, len: u64) -> Result<Vec<u8>, Fault> {
        self.check(addr, len, Access::Read)?;
        let mut out = vec![0u8; len as usize];
        self.copy_out(addr, &mut out);
        Ok(out)
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte is unwritable; nothing is written in
    /// that case.
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> Result<(), Fault> {
        self.check(addr, bytes.len() as u64, Access::Write)?;
        self.copy_in(addr, bytes);
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: VirtAddr) -> Result<u8, Fault> {
        match self.region_index(addr) {
            Some(i) if self.regions[i].prot().allows(Access::Read) => {
                let r = &self.regions[i];
                Ok(r.data.as_slice()[addr.diff(r.base()) as usize])
            }
            _ => Err(Fault::segv(addr, Access::Read, "memory access")),
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: VirtAddr, v: u8) -> Result<(), Fault> {
        match self.region_index(addr) {
            Some(i) if self.regions[i].prot().allows(Access::Write) => {
                let r = &mut self.regions[i];
                let off = addr.diff(r.base) as usize;
                r.data.slice_mut(off, 1)[0] = v;
                self.bump_epoch();
                Ok(())
            }
            _ => Err(Fault::segv(addr, Access::Write, "memory access")),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: VirtAddr) -> Result<u16, Fault> {
        let mut b = [0u8; 2];
        self.read_into(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: VirtAddr, v: u16) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: VirtAddr) -> Result<u32, Fault> {
        let mut b = [0u8; 4];
        self.read_into(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: VirtAddr, v: u32) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: VirtAddr) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: VirtAddr, v: u64) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// The longest contiguous byte run starting at `addr` *within one
    /// region*, ignoring protections (a debugger/loader view). Callers
    /// that need to cross region boundaries loop: the returned slice ends
    /// at the region end, and a follow-up call at `addr + slice.len()`
    /// continues into an adjacent region if one is mapped there.
    ///
    /// This is the zero-copy primitive behind string scanning
    /// (`peek_cstr_len`) and canary verification.
    pub fn peek_slice(&self, addr: VirtAddr) -> Option<&[u8]> {
        let i = self.region_index(addr)?;
        let r = &self.regions[i];
        let off = addr.diff(r.base()) as usize;
        Some(&r.data.as_slice()[off..])
    }

    /// Reads `out.len()` bytes at `addr` ignoring protections, without
    /// allocating. Returns `false` if any byte is unmapped (in which case
    /// `out` may be partially overwritten but no other state changes).
    pub fn peek_into(&self, addr: VirtAddr, out: &mut [u8]) -> bool {
        let mut idx = self.region_index(addr);
        let mut cur = addr;
        let mut dst: &mut [u8] = out;
        while !dst.is_empty() {
            let i = match idx {
                Some(i) => i,
                None => return false,
            };
            let r = &self.regions[i];
            let off = cur.diff(r.base()) as usize;
            let span = (r.data.len() - off).min(dst.len());
            dst[..span].copy_from_slice(&r.data.as_slice()[off..off + span]);
            cur = cur.add(span as u64);
            dst = &mut dst[span..];
            if !dst.is_empty() {
                idx = self.next_contiguous(i, cur);
            }
        }
        true
    }

    /// Reads a little-endian `u64` ignoring protections, or `None` if any
    /// byte is unmapped. Alloc-free (canary verification hot path).
    pub fn peek_u64(&self, addr: VirtAddr) -> Option<u64> {
        let mut b = [0u8; 8];
        if self.peek_into(addr, &mut b) {
            Some(u64::from_le_bytes(b))
        } else {
            None
        }
    }

    /// Reads bytes ignoring protections (a debugger/loader view). Returns
    /// `None` if any byte is unmapped.
    pub fn peek_bytes(&self, addr: VirtAddr, len: u64) -> Option<Vec<u8>> {
        let mut out = vec![0u8; len as usize];
        if self.peek_into(addr, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Writes bytes ignoring protections (loader/fixture view). Returns
    /// `false` if any byte is unmapped; nothing is written in that case.
    pub fn poke_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> bool {
        // Validate the whole range first so pokes stay all-or-nothing.
        let mut idx = self.region_index(addr);
        let mut cur = addr;
        let mut remaining = bytes.len() as u64;
        while remaining > 0 {
            let i = match idx {
                Some(i) => i,
                None => return false,
            };
            let span = self.regions[i].end().diff(cur).min(remaining);
            cur = cur.add(span);
            remaining -= span;
            if remaining > 0 {
                idx = self.next_contiguous(i, cur);
            }
        }
        self.copy_in(addr, bytes);
        true
    }

    /// Reads a pointer-sized value as a [`VirtAddr`].
    pub fn read_ptr(&self, addr: VirtAddr) -> Result<VirtAddr, Fault> {
        Ok(VirtAddr::new(self.read_u64(addr)?))
    }

    /// Writes a pointer-sized value.
    pub fn write_ptr(&mut self, addr: VirtAddr, v: VirtAddr) -> Result<(), Fault> {
        self.write_u64(addr, v.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "a").unwrap();
        m.map(VirtAddr::new(0x3000), 0x1000, Prot::R, "ro").unwrap();
        m
    }

    #[test]
    fn map_rejects_overlap() {
        let mut m = space();
        let err = m.map(VirtAddr::new(0x1800), 0x1000, Prot::RW, "b").unwrap_err();
        assert!(matches!(err, MapError::Overlap { .. }));
        // Adjacent is fine.
        m.map(VirtAddr::new(0x2000), 0x1000, Prot::RW, "b").unwrap();
    }

    #[test]
    fn map_overlap_reports_lowest_conflicting_region() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x3000), 0x1000, Prot::RW, "hi").unwrap();
        // A range swallowing both must name the lower one, exactly as the
        // pre-index linear scan did.
        let err = m.map(VirtAddr::new(0x1800), 0x2000, Prot::RW, "mid").unwrap_err();
        assert_eq!(err, MapError::Overlap { existing: "lo".into() });
        // A range that only clips the upper region names that one.
        let err = m.map(VirtAddr::new(0x2800), 0x1000, Prot::RW, "mid").unwrap_err();
        assert_eq!(err, MapError::Overlap { existing: "hi".into() });
    }

    #[test]
    fn map_rejects_zero_and_wrap() {
        let mut m = AddressSpace::new();
        assert_eq!(
            m.map(VirtAddr::new(0x1000), 0, Prot::RW, "z"),
            Err(MapError::ZeroLength)
        );
        assert_eq!(
            m.map(VirtAddr::new(u64::MAX - 4), 16, Prot::RW, "w"),
            Err(MapError::Wraps)
        );
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = space();
        m.write_u64(VirtAddr::new(0x1100), 0x0123456789abcdef).unwrap();
        assert_eq!(m.read_u64(VirtAddr::new(0x1100)).unwrap(), 0x0123456789abcdef);
        m.write_u32(VirtAddr::new(0x1200), 7).unwrap();
        assert_eq!(m.read_u32(VirtAddr::new(0x1200)).unwrap(), 7);
        m.write_u16(VirtAddr::new(0x1300), 0xbeef).unwrap();
        assert_eq!(m.read_u16(VirtAddr::new(0x1300)).unwrap(), 0xbeef);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = space();
        let err = m.read_u8(VirtAddr::new(0x5000)).unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Read, .. }));
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = space();
        let err = m.write_u8(VirtAddr::new(0x3000), 1).unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Write, .. }));
        // Reading read-only memory is fine.
        assert_eq!(m.read_u8(VirtAddr::new(0x3000)).unwrap(), 0);
    }

    #[test]
    fn cross_region_access() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::RW, "hi").unwrap();
        m.write_bytes(VirtAddr::new(0x100c), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(
            m.read_bytes(VirtAddr::new(0x100c), 8).unwrap(),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn cross_region_access_with_gap_faults() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1020), 0x10, Prot::RW, "hi").unwrap();
        let err = m.write_bytes(VirtAddr::new(0x100c), &[0; 8]).unwrap_err();
        assert_eq!(err, Fault::segv(VirtAddr::new(0x1010), Access::Write, "memory access"));
        // Failed writes are all-or-nothing.
        assert_eq!(m.read_bytes(VirtAddr::new(0x100c), 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn accessible_extent_spans_contiguous_regions() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::R, "hi").unwrap();
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1008), Access::Read), 0x18);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1008), Access::Write), 0x8);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x5000), Access::Read), 0);
    }

    #[test]
    fn accessible_extent_at_region_boundaries() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "a").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::RW, "b").unwrap();
        m.map(VirtAddr::new(0x1020), 0x10, Prot::R, "c").unwrap();
        // From the first byte of each region in the coalesced run.
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1000), Access::Read), 0x30);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1010), Access::Read), 0x20);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1020), Access::Read), 0x10);
        // From the last byte of the run.
        assert_eq!(m.accessible_extent(VirtAddr::new(0x102f), Access::Read), 0x1);
        // One past the end of the run is inaccessible.
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1030), Access::Read), 0);
        // Write access stops at the read-only boundary exactly.
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1000), Access::Write), 0x20);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x101f), Access::Write), 0x1);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1020), Access::Write), 0);
    }

    #[test]
    fn reads_straddling_two_regions_match_bytewise_reads() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::RW, "hi").unwrap();
        for i in 0..0x20u64 {
            m.write_u8(VirtAddr::new(0x1000 + i), i as u8).unwrap();
        }
        // A straddling read agrees with per-byte reads at every offset.
        for start in 0x1008..=0x1010u64 {
            let fast = m.read_bytes(VirtAddr::new(start), 8).unwrap();
            let slow: Vec<u8> =
                (0..8).map(|k| m.read_u8(VirtAddr::new(start + k)).unwrap()).collect();
            assert_eq!(fast, slow, "start {start:#x}");
            let mut into = [0u8; 8];
            m.read_into(VirtAddr::new(start), &mut into).unwrap();
            assert_eq!(into.to_vec(), slow, "read_into at {start:#x}");
            let mut peeked = [0u8; 8];
            assert!(m.peek_into(VirtAddr::new(start), &mut peeked));
            assert_eq!(peeked.to_vec(), slow, "peek_into at {start:#x}");
        }
        // A straddling u64 assembles the same little-endian value.
        let v = m.read_u64(VirtAddr::new(0x100c)).unwrap();
        assert_eq!(v, u64::from_le_bytes([0xc, 0xd, 0xe, 0xf, 0x10, 0x11, 0x12, 0x13]));
        assert_eq!(m.peek_u64(VirtAddr::new(0x100c)), Some(v));
    }

    #[test]
    fn peek_slice_is_bounded_by_region_end() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::R, "hi").unwrap();
        m.write_u8(VirtAddr::new(0x100f), 7).unwrap();
        let s = m.peek_slice(VirtAddr::new(0x1008)).unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s[7], 7);
        // The follow-up call continues into the adjacent region.
        let s2 = m.peek_slice(VirtAddr::new(0x1010)).unwrap();
        assert_eq!(s2.len(), 0x10);
        assert!(m.peek_slice(VirtAddr::new(0x1020)).is_none());
    }

    #[test]
    fn grow_extends_region() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "heap").unwrap();
        m.grow(VirtAddr::new(0x1000), 0x10).unwrap();
        m.write_u8(VirtAddr::new(0x101f), 9).unwrap();
        assert_eq!(m.read_u8(VirtAddr::new(0x101f)).unwrap(), 9);
    }

    #[test]
    fn grow_respects_neighbours() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "heap").unwrap();
        m.map(VirtAddr::new(0x1020), 0x10, Prot::RW, "next").unwrap();
        m.grow(VirtAddr::new(0x1000), 0x10).unwrap();
        assert!(matches!(m.grow(VirtAddr::new(0x1000), 1), Err(MapError::Overlap { .. })));
    }

    #[test]
    fn unmap_and_protect() {
        let mut m = space();
        assert!(m.protect(VirtAddr::new(0x3000), Prot::RW));
        m.write_u8(VirtAddr::new(0x3000), 5).unwrap();
        assert!(m.unmap(VirtAddr::new(0x3000)));
        assert!(!m.unmap(VirtAddr::new(0x3000)));
        assert!(m.read_u8(VirtAddr::new(0x3000)).is_err());
        assert!(!m.protect(VirtAddr::new(0x9999), Prot::R));
    }

    #[test]
    fn mru_cache_survives_mutation() {
        let mut m = space();
        // Warm the cache on the first region, then unmap it: the next
        // lookup must miss cleanly, and lookups that land in the other
        // region must still resolve.
        assert!(m.region_at(VirtAddr::new(0x1800)).is_some());
        assert!(m.unmap(VirtAddr::new(0x1000)));
        assert!(m.region_at(VirtAddr::new(0x1800)).is_none());
        assert_eq!(m.region_at(VirtAddr::new(0x3800)).unwrap().name(), "ro");
        // Warm on "ro", protect it, and confirm lookups still agree.
        assert!(m.protect(VirtAddr::new(0x3800), Prot::RW));
        assert_eq!(m.region_at(VirtAddr::new(0x3800)).unwrap().prot(), Prot::RW);
    }

    #[test]
    fn pooled_buffers_are_rezeroed_on_reuse() {
        let base = VirtAddr::new(0x10_0000);
        let len = (POOL_MIN_LEN * 2) as u64;
        let mut m = AddressSpace::new();
        m.map(base, len, Prot::RW, "big").unwrap();
        m.write_bytes(base.add(17), &[0xAB; 64]).unwrap();
        m.write_u8(base.add(len - 1), 0xCD).unwrap();
        assert!(m.unmap(base));
        // The recycled buffer must come back fully zeroed.
        m.map(base, len, Prot::RW, "big2").unwrap();
        let back = m.read_bytes(base, len).unwrap();
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn region_accessors() {
        let m = space();
        let r = m.region_at(VirtAddr::new(0x1234)).unwrap();
        assert_eq!(r.base(), VirtAddr::new(0x1000));
        assert_eq!(r.len(), 0x1000);
        assert_eq!(r.end(), VirtAddr::new(0x2000));
        assert_eq!(r.name(), "a");
        assert_eq!(r.prot(), Prot::RW);
        assert!(!r.is_empty());
    }

    #[test]
    fn check_zero_len_always_ok() {
        let m = AddressSpace::new();
        assert!(m.check(VirtAddr::new(0xdead), 0, Access::Write).is_ok());
    }

    #[test]
    fn epoch_moves_on_every_mutation_and_only_then() {
        let mut m = AddressSpace::new();
        let mut last = m.epoch();
        let mut expect_bump = |m: &AddressSpace, what: &str| {
            assert!(m.epoch() > last, "{what} must bump the epoch");
            last = m.epoch();
        };
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "a").unwrap();
        expect_bump(&m, "map");
        m.write_u8(VirtAddr::new(0x1000), 7).unwrap();
        expect_bump(&m, "write_u8");
        m.write_bytes(VirtAddr::new(0x1008), &[1, 2, 3]).unwrap();
        expect_bump(&m, "write_bytes");
        assert!(m.poke_bytes(VirtAddr::new(0x1010), &[9]));
        expect_bump(&m, "poke_bytes");
        assert!(m.protect(VirtAddr::new(0x1000), Prot::R));
        expect_bump(&m, "protect");
        m.grow(VirtAddr::new(0x1000), 0x10).unwrap();
        expect_bump(&m, "grow");
        assert!(m.unmap(VirtAddr::new(0x1000)));
        expect_bump(&m, "unmap");
        // Reads leave the epoch alone: a cached validation stays live
        // across arbitrarily many queries.
        let before = m.epoch();
        m.map(VirtAddr::new(0x2000), 0x100, Prot::RW, "b").unwrap();
        let before2 = m.epoch();
        assert!(before2 > before);
        let _ = m.read_u8(VirtAddr::new(0x2000));
        let _ = m.peek_u64(VirtAddr::new(0x2000));
        let _ = m.accessible_extent(VirtAddr::new(0x2000), Access::Read);
        let _ = m.check(VirtAddr::new(0x2000), 8, Access::Read);
        assert_eq!(m.epoch(), before2, "reads must not move the epoch");
        // Clones carry the epoch with them.
        assert_eq!(m.clone().epoch(), m.epoch());
    }

    #[test]
    fn cloned_epoch_counters_are_independent() {
        let mut m = space();
        let mut c = m.clone();
        let (me, ce) = (m.epoch(), c.epoch());
        assert_eq!(me, ce);
        c.bump_epoch();
        c.bump_epoch();
        assert_eq!(m.epoch(), me, "a clone bumping must not expire the original's memos");
        m.bump_epoch();
        assert_eq!(c.epoch(), ce + 2, "and vice versa");
        // Nor does a handle taken from one observe the other.
        assert_eq!(m.epoch_handle().get(), me + 1);
    }

    /// Regression test for the torn/stale epoch read: before the epoch
    /// became an atomic with release/acquire pairing, a plain `u64` read
    /// from another thread was a data race — a memoized pointer verdict
    /// could survive an unmap it never observed. The writer publishes a
    /// payload counter *before* each epoch-bumping mutation; readers that
    /// observe epoch `e0 + 2i` must therefore observe a payload `>= i`.
    /// Run under many interleavings (two reader threads, thousands of
    /// map/unmap cycles) so a regression to relaxed/non-atomic ordering
    /// has ample opportunity to trip the assertions.
    #[test]
    fn epoch_handle_publishes_mutations_across_threads() {
        const ITERS: u64 = 4000;
        let mut m = AddressSpace::new();
        let handle = m.epoch_handle();
        let e0 = handle.get();
        let payload = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let h = handle.clone();
                let payload = &payload;
                s.spawn(move || {
                    let mut last = e0;
                    while last < e0 + 2 * ITERS {
                        let e = h.get();
                        assert!(e >= last, "epoch went backwards: {e} < {last}");
                        // Acquire on the epoch orders this load after the
                        // writer's pre-bump payload store.
                        let p = payload.load(Ordering::Relaxed);
                        assert!(
                            p >= (e - e0) / 2,
                            "observed epoch {e} but payload {p}: the bump was \
                             published before the mutation that preceded it"
                        );
                        last = e;
                    }
                });
            }
            let payload = &payload;
            s.spawn(move || {
                let base = VirtAddr::new(0x1000);
                for i in 1..=ITERS {
                    payload.store(i, Ordering::Relaxed);
                    m.map(base, 0x1000, Prot::RW, "scratch").unwrap(); // epoch e0+2i-1
                    assert!(m.unmap(base)); // epoch e0+2i
                }
            });
        });
        assert_eq!(handle.get(), e0 + 2 * ITERS);
    }
}
