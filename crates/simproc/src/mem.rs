//! The simulated, protection-checked address space.
//!
//! Memory is a sorted set of disjoint [`Region`]s, each with its own
//! protection bits. Every access is checked; a bad access produces a
//! [`Fault::Segv`] value instead of killing the host — which is exactly
//! what lets the fault injector observe library crashes safely.

use std::fmt;

use crate::addr::{Access, Prot, VirtAddr};
use crate::fault::Fault;

/// A contiguous mapped range of the simulated address space.
#[derive(Debug, Clone)]
pub struct Region {
    base: VirtAddr,
    data: Vec<u8>,
    prot: Prot,
    name: String,
}

impl Region {
    /// Base address of the region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// `true` if the region has zero length (never created by `map`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.len())
    }

    /// Protection bits.
    pub fn prot(&self) -> Prot {
        self.prot
    }

    /// Diagnostic name (e.g. `"heap"`, `"[stack]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Error returned by [`AddressSpace::map`] when a mapping is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The requested range overlaps an existing region.
    Overlap {
        /// Name of the existing region that conflicts.
        existing: String,
    },
    /// Zero-length mappings are rejected.
    ZeroLength,
    /// The range wraps around the end of the address space.
    Wraps,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { existing } => {
                write!(f, "mapping overlaps existing region `{existing}`")
            }
            MapError::ZeroLength => write!(f, "zero-length mapping"),
            MapError::Wraps => write!(f, "mapping wraps around the address space"),
        }
    }
}

impl std::error::Error for MapError {}

/// A sparse simulated address space.
///
/// ```
/// use simproc::{AddressSpace, Prot, VirtAddr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = AddressSpace::new();
/// mem.map(VirtAddr::new(0x1000), 0x100, Prot::RW, "data")?;
/// mem.write_u32(VirtAddr::new(0x1010), 0xdeadbeef)?;
/// assert_eq!(mem.read_u32(VirtAddr::new(0x1010))?, 0xdeadbeef);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    /// Regions sorted by base address; disjoint.
    regions: Vec<Region>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace { regions: Vec::new() }
    }

    /// Maps `len` zeroed bytes at `base` with protection `prot`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the range is empty, wraps, or overlaps an
    /// existing region.
    pub fn map(
        &mut self,
        base: VirtAddr,
        len: u64,
        prot: Prot,
        name: impl Into<String>,
    ) -> Result<(), MapError> {
        if len == 0 {
            return Err(MapError::ZeroLength);
        }
        if base.get().checked_add(len).is_none() {
            return Err(MapError::Wraps);
        }
        let end = base.add(len);
        for r in &self.regions {
            if base < r.end() && r.base() < end {
                return Err(MapError::Overlap { existing: r.name.clone() });
            }
        }
        let region = Region { base, data: vec![0; len as usize], prot, name: name.into() };
        let idx = self.regions.partition_point(|r| r.base() < base);
        self.regions.insert(idx, region);
        Ok(())
    }

    /// Removes the region based exactly at `base`. Returns `true` if one
    /// was removed.
    pub fn unmap(&mut self, base: VirtAddr) -> bool {
        if let Some(i) = self.regions.iter().position(|r| r.base() == base) {
            self.regions.remove(i);
            true
        } else {
            false
        }
    }

    /// Changes the protection of the region containing `addr`.
    /// Returns `false` if no region contains it.
    pub fn protect(&mut self, addr: VirtAddr, prot: Prot) -> bool {
        match self.region_index(addr) {
            Some(i) => {
                self.regions[i].prot = prot;
                true
            }
            None => false,
        }
    }

    /// Grows the region based at `base` by `extra` bytes (zero filled),
    /// failing if the grown region would collide with the next mapping.
    pub fn grow(&mut self, base: VirtAddr, extra: u64) -> Result<(), MapError> {
        if extra == 0 {
            return Ok(());
        }
        let i = match self.regions.iter().position(|r| r.base() == base) {
            Some(i) => i,
            None => return Err(MapError::Overlap { existing: "<none>".into() }),
        };
        let new_end =
            self.regions[i].end().get().checked_add(extra).ok_or(MapError::Wraps)?;
        if let Some(next) = self.regions.get(i + 1) {
            if new_end > next.base().get() {
                return Err(MapError::Overlap { existing: next.name.clone() });
            }
        }
        let grow_by = extra as usize;
        self.regions[i].data.extend(std::iter::repeat_n(0, grow_by));
        Ok(())
    }

    /// All regions, sorted by base address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_at(&self, addr: VirtAddr) -> Option<&Region> {
        self.region_index(addr).map(|i| &self.regions[i])
    }

    fn region_index(&self, addr: VirtAddr) -> Option<usize> {
        // Last region whose base is <= addr.
        let i = self.regions.partition_point(|r| r.base() <= addr);
        if i == 0 {
            return None;
        }
        let r = &self.regions[i - 1];
        if r.contains(addr) {
            Some(i - 1)
        } else {
            None
        }
    }

    /// Checks that `[addr, addr+len)` is mapped with permission for
    /// `access`, without touching the data.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Segv`] at the first offending byte.
    pub fn check(&self, addr: VirtAddr, len: u64, access: Access) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let r = match self.region_at(cur) {
                Some(r) if r.prot().allows(access) => r,
                _ => return Err(Fault::segv(cur, access, "memory access")),
            };
            let span = r.end().diff(cur).min(remaining);
            cur = cur.add(span);
            remaining -= span;
        }
        Ok(())
    }

    /// Number of bytes accessible for `access` starting at `addr`, walking
    /// across contiguous regions. Zero if `addr` itself is inaccessible.
    ///
    /// This powers the *extent oracle* used by security wrappers to bound
    /// string copies.
    pub fn accessible_extent(&self, addr: VirtAddr, access: Access) -> u64 {
        let mut cur = addr;
        let mut total = 0u64;
        loop {
            match self.region_at(cur) {
                Some(r) if r.prot().allows(access) => {
                    let span = r.end().diff(cur);
                    total += span;
                    cur = cur.add(span);
                }
                _ => return total,
            }
        }
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte is unreadable.
    pub fn read_bytes(&self, addr: VirtAddr, len: u64) -> Result<Vec<u8>, Fault> {
        self.check(addr, len, Access::Read)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let r = self.region_at(cur).expect("checked");
            let off = cur.diff(r.base()) as usize;
            let span = (r.len() - off as u64).min(remaining) as usize;
            out.extend_from_slice(&r.data[off..off + span]);
            cur = cur.add(span as u64);
            remaining -= span as u64;
        }
        Ok(out)
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] if any byte is unwritable; nothing is written in
    /// that case.
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> Result<(), Fault> {
        self.check(addr, bytes.len() as u64, Access::Write)?;
        let mut cur = addr;
        let mut src = bytes;
        while !src.is_empty() {
            let i = self.region_index(cur).expect("checked");
            let r = &mut self.regions[i];
            let off = cur.diff(r.base()) as usize;
            let span = (r.data.len() - off).min(src.len());
            r.data[off..off + span].copy_from_slice(&src[..span]);
            cur = cur.add(span as u64);
            src = &src[span..];
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: VirtAddr) -> Result<u8, Fault> {
        self.check(addr, 1, Access::Read)?;
        let r = self.region_at(addr).expect("checked");
        Ok(r.data[addr.diff(r.base()) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: VirtAddr, v: u8) -> Result<(), Fault> {
        self.write_bytes(addr, &[v])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: VirtAddr) -> Result<u16, Fault> {
        let b = self.read_bytes(addr, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: VirtAddr, v: u16) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: VirtAddr) -> Result<u32, Fault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: VirtAddr, v: u32) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: VirtAddr) -> Result<u64, Fault> {
        let b = self.read_bytes(addr, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(&b);
        Ok(u64::from_le_bytes(a))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: VirtAddr, v: u64) -> Result<(), Fault> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads bytes ignoring protections (a debugger/loader view). Returns
    /// `None` if any byte is unmapped.
    pub fn peek_bytes(&self, addr: VirtAddr, len: u64) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let r = self.region_at(cur)?;
            let off = cur.diff(r.base()) as usize;
            let span = (r.len() - off as u64).min(remaining) as usize;
            out.extend_from_slice(&r.data[off..off + span]);
            cur = cur.add(span as u64);
            remaining -= span as u64;
        }
        Some(out)
    }

    /// Writes bytes ignoring protections (loader/fixture view). Returns
    /// `false` if any byte is unmapped; nothing is written in that case.
    pub fn poke_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> bool {
        // Validate the whole range first so pokes stay all-or-nothing.
        let mut cur = addr;
        let mut remaining = bytes.len() as u64;
        while remaining > 0 {
            match self.region_at(cur) {
                Some(r) => {
                    let span = r.end().diff(cur).min(remaining);
                    cur = cur.add(span);
                    remaining -= span;
                }
                None => return false,
            }
        }
        let mut cur = addr;
        let mut src = bytes;
        while !src.is_empty() {
            let i = self.region_index(cur).expect("validated");
            let r = &mut self.regions[i];
            let off = cur.diff(r.base()) as usize;
            let span = (r.data.len() - off).min(src.len());
            r.data[off..off + span].copy_from_slice(&src[..span]);
            cur = cur.add(span as u64);
            src = &src[span..];
        }
        true
    }

    /// Reads a pointer-sized value as a [`VirtAddr`].
    pub fn read_ptr(&self, addr: VirtAddr) -> Result<VirtAddr, Fault> {
        Ok(VirtAddr::new(self.read_u64(addr)?))
    }

    /// Writes a pointer-sized value.
    pub fn write_ptr(&mut self, addr: VirtAddr, v: VirtAddr) -> Result<(), Fault> {
        self.write_u64(addr, v.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "a").unwrap();
        m.map(VirtAddr::new(0x3000), 0x1000, Prot::R, "ro").unwrap();
        m
    }

    #[test]
    fn map_rejects_overlap() {
        let mut m = space();
        let err = m.map(VirtAddr::new(0x1800), 0x1000, Prot::RW, "b").unwrap_err();
        assert!(matches!(err, MapError::Overlap { .. }));
        // Adjacent is fine.
        m.map(VirtAddr::new(0x2000), 0x1000, Prot::RW, "b").unwrap();
    }

    #[test]
    fn map_rejects_zero_and_wrap() {
        let mut m = AddressSpace::new();
        assert_eq!(
            m.map(VirtAddr::new(0x1000), 0, Prot::RW, "z"),
            Err(MapError::ZeroLength)
        );
        assert_eq!(
            m.map(VirtAddr::new(u64::MAX - 4), 16, Prot::RW, "w"),
            Err(MapError::Wraps)
        );
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = space();
        m.write_u64(VirtAddr::new(0x1100), 0x0123456789abcdef).unwrap();
        assert_eq!(m.read_u64(VirtAddr::new(0x1100)).unwrap(), 0x0123456789abcdef);
        m.write_u32(VirtAddr::new(0x1200), 7).unwrap();
        assert_eq!(m.read_u32(VirtAddr::new(0x1200)).unwrap(), 7);
        m.write_u16(VirtAddr::new(0x1300), 0xbeef).unwrap();
        assert_eq!(m.read_u16(VirtAddr::new(0x1300)).unwrap(), 0xbeef);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = space();
        let err = m.read_u8(VirtAddr::new(0x5000)).unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Read, .. }));
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = space();
        let err = m.write_u8(VirtAddr::new(0x3000), 1).unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Write, .. }));
        // Reading read-only memory is fine.
        assert_eq!(m.read_u8(VirtAddr::new(0x3000)).unwrap(), 0);
    }

    #[test]
    fn cross_region_access() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::RW, "hi").unwrap();
        m.write_bytes(VirtAddr::new(0x100c), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(
            m.read_bytes(VirtAddr::new(0x100c), 8).unwrap(),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn cross_region_access_with_gap_faults() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1020), 0x10, Prot::RW, "hi").unwrap();
        let err = m.write_bytes(VirtAddr::new(0x100c), &[0; 8]).unwrap_err();
        assert_eq!(err, Fault::segv(VirtAddr::new(0x1010), Access::Write, "memory access"));
        // Failed writes are all-or-nothing.
        assert_eq!(m.read_bytes(VirtAddr::new(0x100c), 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn accessible_extent_spans_contiguous_regions() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "lo").unwrap();
        m.map(VirtAddr::new(0x1010), 0x10, Prot::R, "hi").unwrap();
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1008), Access::Read), 0x18);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x1008), Access::Write), 0x8);
        assert_eq!(m.accessible_extent(VirtAddr::new(0x5000), Access::Read), 0);
    }

    #[test]
    fn grow_extends_region() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "heap").unwrap();
        m.grow(VirtAddr::new(0x1000), 0x10).unwrap();
        m.write_u8(VirtAddr::new(0x101f), 9).unwrap();
        assert_eq!(m.read_u8(VirtAddr::new(0x101f)).unwrap(), 9);
    }

    #[test]
    fn grow_respects_neighbours() {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x10, Prot::RW, "heap").unwrap();
        m.map(VirtAddr::new(0x1020), 0x10, Prot::RW, "next").unwrap();
        m.grow(VirtAddr::new(0x1000), 0x10).unwrap();
        assert!(matches!(m.grow(VirtAddr::new(0x1000), 1), Err(MapError::Overlap { .. })));
    }

    #[test]
    fn unmap_and_protect() {
        let mut m = space();
        assert!(m.protect(VirtAddr::new(0x3000), Prot::RW));
        m.write_u8(VirtAddr::new(0x3000), 5).unwrap();
        assert!(m.unmap(VirtAddr::new(0x3000)));
        assert!(!m.unmap(VirtAddr::new(0x3000)));
        assert!(m.read_u8(VirtAddr::new(0x3000)).is_err());
        assert!(!m.protect(VirtAddr::new(0x9999), Prot::R));
    }

    #[test]
    fn region_accessors() {
        let m = space();
        let r = m.region_at(VirtAddr::new(0x1234)).unwrap();
        assert_eq!(r.base(), VirtAddr::new(0x1000));
        assert_eq!(r.len(), 0x1000);
        assert_eq!(r.end(), VirtAddr::new(0x2000));
        assert_eq!(r.name(), "a");
        assert_eq!(r.prot(), Prot::RW);
        assert!(!r.is_empty());
    }

    #[test]
    fn check_zero_len_always_ok() {
        let m = AddressSpace::new();
        assert!(m.check(VirtAddr::new(0xdead), 0, Access::Write).is_ok());
    }
}
