//! Classic errno values used by the simulated C library and the profiling
//! wrapper's error histograms (the paper classifies failure causes by
//! errno, Figure 5).

/// Operation not permitted.
pub const EPERM: i32 = 1;
/// No such file or directory.
pub const ENOENT: i32 = 2;
/// Interrupted system call.
pub const EINTR: i32 = 4;
/// Bad file descriptor.
pub const EBADF: i32 = 9;
/// Out of memory.
pub const ENOMEM: i32 = 12;
/// Permission denied.
pub const EACCES: i32 = 13;
/// Bad address.
pub const EFAULT: i32 = 14;
/// File exists.
pub const EEXIST: i32 = 17;
/// Invalid argument.
pub const EINVAL: i32 = 22;
/// Numerical result out of range.
pub const ERANGE: i32 = 34;
/// Value too large for defined data type.
pub const EOVERFLOW: i32 = 75;

/// Upper bound used for errno histograms; errnos outside `0..MAX_ERRNO`
/// are counted in the overflow bucket, matching the generated wrapper code
/// in the paper's Figure 3.
pub const MAX_ERRNO: i32 = 126;

/// A short human-readable name for an errno value, for reports.
pub fn errno_name(errno: i32) -> &'static str {
    match errno {
        0 => "OK",
        EPERM => "EPERM",
        ENOENT => "ENOENT",
        EINTR => "EINTR",
        EBADF => "EBADF",
        ENOMEM => "ENOMEM",
        EACCES => "EACCES",
        EFAULT => "EFAULT",
        EEXIST => "EEXIST",
        EINVAL => "EINVAL",
        ERANGE => "ERANGE",
        EOVERFLOW => "EOVERFLOW",
        _ => "E?",
    }
}

/// The message `strerror` produces for an errno value.
pub fn strerror_text(errno: i32) -> &'static str {
    match errno {
        0 => "Success",
        EPERM => "Operation not permitted",
        ENOENT => "No such file or directory",
        EINTR => "Interrupted system call",
        EBADF => "Bad file descriptor",
        ENOMEM => "Cannot allocate memory",
        EACCES => "Permission denied",
        EFAULT => "Bad address",
        EEXIST => "File exists",
        EINVAL => "Invalid argument",
        ERANGE => "Numerical result out of range",
        EOVERFLOW => "Value too large for defined data type",
        _ => "Unknown error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_constants() {
        assert_eq!(errno_name(EINVAL), "EINVAL");
        assert_eq!(errno_name(ENOMEM), "ENOMEM");
        assert_eq!(errno_name(0), "OK");
        assert_eq!(errno_name(99), "E?");
    }

    #[test]
    fn strerror_known_and_unknown() {
        assert_eq!(strerror_text(ENOENT), "No such file or directory");
        assert_eq!(strerror_text(1234), "Unknown error");
        assert_eq!(strerror_text(0), "Success");
    }

    #[test]
    fn max_errno_covers_all_constants() {
        for e in [
            EPERM, ENOENT, EINTR, EBADF, ENOMEM, EACCES, EFAULT, EEXIST, EINVAL, ERANGE,
            EOVERFLOW,
        ] {
            assert!(e > 0 && e < MAX_ERRNO);
        }
    }
}
