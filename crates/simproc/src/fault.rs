//! The fault taxonomy observed by the fault injector and contained by
//! wrappers.
//!
//! HEALERS classifies function behaviour on the CRASH scale popularised by
//! Ballista (Koopman & DeVale): a call either passes, reports an error
//! gracefully via `errno`, or fails in one of the ways below. In a real
//! process these failures are signals, aborts or livelocks; in the simulated
//! process they are ordinary values, so campaigns can count, compare and
//! contain them.

use std::fmt;

use crate::addr::{Access, VirtAddr};

/// A hard failure of the simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A memory access violated page protections or touched an unmapped
    /// address — the analogue of `SIGSEGV`.
    Segv {
        /// Faulting address.
        addr: VirtAddr,
        /// The kind of access attempted.
        access: Access,
        /// Human-readable context, e.g. the function that faulted.
        context: String,
    },
    /// The process called `abort()` or failed an internal assertion —
    /// the analogue of `SIGABRT`.
    Abort {
        /// Why the process aborted.
        reason: String,
    },
    /// The execution fuel budget was exhausted: the call would not have
    /// terminated within the watchdog budget (the analogue of a hang).
    Hang,
    /// The process exited via `exit()` with the given status. Not a crash
    /// by itself, but a robustness failure when a mere library call
    /// terminates the caller.
    Exit(i32),
    /// A protection wrapper detected an attack or a contained fault and
    /// terminated the process deliberately (the paper's security wrapper
    /// kills the attacked program).
    SecurityViolation {
        /// What was detected.
        detail: String,
    },
    /// An integer division by zero — the analogue of `SIGFPE`.
    DivByZero {
        /// Human-readable context.
        context: String,
    },
    /// An indirect call through a corrupted or wild pointer. Carries the
    /// target so tests can assert on hijacked control flow.
    WildJump {
        /// The bogus target address.
        target: VirtAddr,
    },
}

impl Fault {
    /// Short machine-readable tag used in reports and XML documents.
    pub fn tag(&self) -> &'static str {
        match self {
            Fault::Segv { .. } => "segv",
            Fault::Abort { .. } => "abort",
            Fault::Hang => "hang",
            Fault::Exit(_) => "exit",
            Fault::SecurityViolation { .. } => "security-violation",
            Fault::DivByZero { .. } => "fpe",
            Fault::WildJump { .. } => "wild-jump",
        }
    }

    /// Convenience constructor for a segmentation fault.
    pub fn segv(addr: VirtAddr, access: Access, context: impl Into<String>) -> Self {
        Fault::Segv { addr, access, context: context.into() }
    }

    /// Convenience constructor for an abort.
    pub fn abort(reason: impl Into<String>) -> Self {
        Fault::Abort { reason: reason.into() }
    }

    /// Convenience constructor for a security violation.
    pub fn security(detail: impl Into<String>) -> Self {
        Fault::SecurityViolation { detail: detail.into() }
    }

    /// `true` for failures that indicate the *library* misbehaved
    /// (crash/hang), as opposed to deliberate terminations by a wrapper.
    pub fn is_robustness_failure(&self) -> bool {
        matches!(
            self,
            Fault::Segv { .. }
                | Fault::Abort { .. }
                | Fault::Hang
                | Fault::Exit(_)
                | Fault::DivByZero { .. }
                | Fault::WildJump { .. }
        )
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Segv { addr, access, context } => {
                write!(f, "segmentation fault: {access} at {addr} in {context}")
            }
            Fault::Abort { reason } => write!(f, "abort: {reason}"),
            Fault::Hang => write!(f, "hang: execution budget exhausted"),
            Fault::Exit(code) => write!(f, "process exited with status {code}"),
            Fault::SecurityViolation { detail } => {
                write!(f, "security violation detected: {detail}")
            }
            Fault::DivByZero { context } => write!(f, "division by zero in {context}"),
            Fault::WildJump { target } => {
                write!(f, "indirect call to non-function address {target}")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(Fault::Hang.tag(), "hang");
        assert_eq!(Fault::Exit(1).tag(), "exit");
        assert_eq!(Fault::segv(VirtAddr::new(0x10), Access::Read, "strlen").tag(), "segv");
        assert_eq!(Fault::abort("double free").tag(), "abort");
        assert_eq!(Fault::security("canary").tag(), "security-violation");
        assert_eq!(Fault::DivByZero { context: "div".into() }.tag(), "fpe");
        assert_eq!(Fault::WildJump { target: VirtAddr::NULL }.tag(), "wild-jump");
    }

    #[test]
    fn robustness_classification() {
        assert!(Fault::Hang.is_robustness_failure());
        assert!(Fault::Exit(0).is_robustness_failure());
        assert!(!Fault::security("heap canary clobbered").is_robustness_failure());
    }

    #[test]
    fn display_mentions_context() {
        let s = Fault::segv(VirtAddr::new(0xdead), Access::Write, "strcpy").to_string();
        assert!(s.contains("strcpy"), "{s}");
        assert!(s.contains("write"), "{s}");
    }

    #[test]
    fn fault_is_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Fault>();
    }
}
