//! The standard memory layout of a simulated process.
//!
//! The layout mimics a classic 32/64-bit Unix process image: text at the
//! bottom, then read-only data, writable data, a heap that grows up via
//! `sbrk`, and a stack near the top that grows down. Unmapped gaps between
//! segments act as guard ranges: scanning off the end of any segment hits
//! unmapped memory and faults, just as on a real machine.

use crate::addr::VirtAddr;

/// Base of the text (code) segment; function "addresses" live here.
pub const TEXT_BASE: VirtAddr = VirtAddr::new(0x0040_0000);
/// Size of the text segment.
pub const TEXT_SIZE: u64 = 0x10_0000;

/// Base of the read-only data segment (string literals, ctype tables).
pub const RODATA_BASE: VirtAddr = VirtAddr::new(0x0060_0000);
/// Size of the read-only data segment.
pub const RODATA_SIZE: u64 = 0x10_0000;

/// Base of the writable data segment.
pub const DATA_BASE: VirtAddr = VirtAddr::new(0x0080_0000);
/// Size of the writable data segment.
pub const DATA_SIZE: u64 = 0x20_0000;

/// First page of the data segment is reserved for C-library private state
/// (free-list heads, `strtok` cursor, `rand` seed, `atexit` table ...).
pub const LIBC_PRIVATE_BASE: VirtAddr = DATA_BASE;
/// Size of the C-library private area.
pub const LIBC_PRIVATE_SIZE: u64 = 0x1000;

/// Where general-purpose data allocations (fixtures, env strings) start.
pub const DATA_CURSOR_START: VirtAddr = VirtAddr::new(DATA_BASE.get() + LIBC_PRIVATE_SIZE);

/// Base of the heap segment (`sbrk` arena).
pub const HEAP_BASE: VirtAddr = VirtAddr::new(0x0800_0000);
/// Initial heap size mapped at process creation.
pub const HEAP_INITIAL: u64 = 0x2_0000;
/// Hard ceiling for heap growth; `malloc` returns `NULL` beyond this.
pub const HEAP_MAX: u64 = 0x100_0000;

/// Top of the stack (exclusive); the stack grows down from here.
pub const STACK_TOP: VirtAddr = VirtAddr::new(0xC000_0000);
/// Stack size.
pub const STACK_SIZE: u64 = 0x10_0000;
/// Base (lowest address) of the stack mapping.
pub const STACK_BASE: VirtAddr = VirtAddr::new(STACK_TOP.get() - STACK_SIZE);

/// Size of each additional simulated thread's stack.
pub const THREAD_STACK_SIZE: u64 = 0x4_0000;
/// Unmapped guard gap between adjacent thread stacks: an overflow off the
/// bottom of one thread's stack faults instead of smashing the next.
pub const THREAD_STACK_GUARD: u64 = 0x1_0000;
/// Top (exclusive) of the first spawned thread's stack. Thread stacks are
/// carved downward from just under the main stack's own guard gap, toward
/// the heap ceiling.
pub const THREAD_STACKS_TOP: VirtAddr = VirtAddr::new(STACK_BASE.get() - 0x10_0000);
/// Lowest address thread stacks may reach; [`Proc::spawn_thread`] fails
/// beyond this rather than marching into the heap.
///
/// [`Proc::spawn_thread`]: crate::Proc::spawn_thread
pub const THREAD_STACKS_FLOOR: VirtAddr = VirtAddr::new(0x8000_0000);

/// Top (exclusive) of the stack of spawned thread number `n` (1-based:
/// thread 0, the main thread, uses [`STACK_TOP`]). Returns `None` once the
/// stack would dip below [`THREAD_STACKS_FLOOR`].
pub fn thread_stack_top(n: u32) -> Option<VirtAddr> {
    debug_assert!(n >= 1, "thread 0 uses the main stack");
    let stride = THREAD_STACK_SIZE + THREAD_STACK_GUARD;
    let top = THREAD_STACKS_TOP.get().checked_sub(u64::from(n - 1) * stride)?;
    let base = top.checked_sub(THREAD_STACK_SIZE)?;
    if base < THREAD_STACKS_FLOOR.get() {
        None
    } else {
        Some(VirtAddr::new(top))
    }
}

/// A famously wild pointer used by fault-injection value generators.
pub const WILD_ADDR: VirtAddr = VirtAddr::new(0xdead_beef_0000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint_and_ordered() {
        let segs = [
            (TEXT_BASE, TEXT_SIZE),
            (RODATA_BASE, RODATA_SIZE),
            (DATA_BASE, DATA_SIZE),
            (HEAP_BASE, HEAP_MAX),
            (STACK_BASE, STACK_SIZE),
        ];
        for w in segs.windows(2) {
            let (base_a, len_a) = w[0];
            let (base_b, _) = w[1];
            assert!(base_a.add(len_a) <= base_b, "{base_a} + {len_a:#x} overlaps {base_b}");
        }
    }

    #[test]
    fn wild_addr_outside_all_segments() {
        assert!(WILD_ADDR > STACK_TOP);
    }

    #[test]
    fn thread_stacks_sit_between_heap_and_main_stack() {
        let first = thread_stack_top(1).unwrap();
        assert!(first <= THREAD_STACKS_TOP);
        assert!(first.sub(THREAD_STACK_SIZE) >= THREAD_STACKS_FLOOR);
        assert!(THREAD_STACKS_FLOOR >= HEAP_BASE.add(HEAP_MAX));
        assert!(THREAD_STACKS_TOP < STACK_BASE);
        // Successive stacks are disjoint with a guard gap in between.
        let second = thread_stack_top(2).unwrap();
        assert_eq!(first.sub(THREAD_STACK_SIZE).diff(second), THREAD_STACK_GUARD);
        // The floor eventually cuts allocation off instead of wrapping.
        assert!(thread_stack_top(u32::MAX).is_none());
    }

    #[test]
    fn cursor_is_inside_data() {
        assert!(DATA_CURSOR_START > DATA_BASE);
        assert!(DATA_CURSOR_START < DATA_BASE.add(DATA_SIZE));
    }
}
