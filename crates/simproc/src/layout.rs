//! The standard memory layout of a simulated process.
//!
//! The layout mimics a classic 32/64-bit Unix process image: text at the
//! bottom, then read-only data, writable data, a heap that grows up via
//! `sbrk`, and a stack near the top that grows down. Unmapped gaps between
//! segments act as guard ranges: scanning off the end of any segment hits
//! unmapped memory and faults, just as on a real machine.

use crate::addr::VirtAddr;

/// Base of the text (code) segment; function "addresses" live here.
pub const TEXT_BASE: VirtAddr = VirtAddr::new(0x0040_0000);
/// Size of the text segment.
pub const TEXT_SIZE: u64 = 0x10_0000;

/// Base of the read-only data segment (string literals, ctype tables).
pub const RODATA_BASE: VirtAddr = VirtAddr::new(0x0060_0000);
/// Size of the read-only data segment.
pub const RODATA_SIZE: u64 = 0x10_0000;

/// Base of the writable data segment.
pub const DATA_BASE: VirtAddr = VirtAddr::new(0x0080_0000);
/// Size of the writable data segment.
pub const DATA_SIZE: u64 = 0x20_0000;

/// First page of the data segment is reserved for C-library private state
/// (free-list heads, `strtok` cursor, `rand` seed, `atexit` table ...).
pub const LIBC_PRIVATE_BASE: VirtAddr = DATA_BASE;
/// Size of the C-library private area.
pub const LIBC_PRIVATE_SIZE: u64 = 0x1000;

/// Where general-purpose data allocations (fixtures, env strings) start.
pub const DATA_CURSOR_START: VirtAddr = VirtAddr::new(DATA_BASE.get() + LIBC_PRIVATE_SIZE);

/// Base of the heap segment (`sbrk` arena).
pub const HEAP_BASE: VirtAddr = VirtAddr::new(0x0800_0000);
/// Initial heap size mapped at process creation.
pub const HEAP_INITIAL: u64 = 0x2_0000;
/// Hard ceiling for heap growth; `malloc` returns `NULL` beyond this.
pub const HEAP_MAX: u64 = 0x100_0000;

/// Top of the stack (exclusive); the stack grows down from here.
pub const STACK_TOP: VirtAddr = VirtAddr::new(0xC000_0000);
/// Stack size.
pub const STACK_SIZE: u64 = 0x10_0000;
/// Base (lowest address) of the stack mapping.
pub const STACK_BASE: VirtAddr = VirtAddr::new(STACK_TOP.get() - STACK_SIZE);

/// A famously wild pointer used by fault-injection value generators.
pub const WILD_ADDR: VirtAddr = VirtAddr::new(0xdead_beef_0000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint_and_ordered() {
        let segs = [
            (TEXT_BASE, TEXT_SIZE),
            (RODATA_BASE, RODATA_SIZE),
            (DATA_BASE, DATA_SIZE),
            (HEAP_BASE, HEAP_MAX),
            (STACK_BASE, STACK_SIZE),
        ];
        for w in segs.windows(2) {
            let (base_a, len_a) = w[0];
            let (base_b, _) = w[1];
            assert!(base_a.add(len_a) <= base_b, "{base_a} + {len_a:#x} overlaps {base_b}");
        }
    }

    #[test]
    fn wild_addr_outside_all_segments() {
        assert!(WILD_ADDR > STACK_TOP);
    }

    #[test]
    fn cursor_is_inside_data() {
        assert!(DATA_CURSOR_START > DATA_BASE);
        assert!(DATA_CURSOR_START < DATA_BASE.add(DATA_SIZE));
    }
}
