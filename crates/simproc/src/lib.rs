//! # simproc — the simulated process substrate for HEALERS
//!
//! HEALERS (Fetzer & Xiao, DSN 2003) hardens applications by intercepting
//! C library calls, fault-injecting libraries to learn their robust APIs,
//! and generating protective wrappers. Reproducing that requires crashing
//! library functions *millions of times* — something you cannot do to the
//! host's real libc. This crate provides the substitute: a fully simulated
//! process in which
//!
//! * memory accesses are protection-checked, so a wild pointer produces a
//!   [`Fault::Segv`] **value** instead of killing the host;
//! * execution is fuel-metered, so a non-terminating scan becomes a
//!   [`Fault::Hang`];
//! * functions have addresses, so function pointers can be stored in (and
//!   corrupted from) simulated memory, enabling faithful control-flow
//!   hijack experiments;
//! * a miniature kernel holds files and std streams on the far side of the
//!   "system call" boundary.
//!
//! ```
//! use simproc::{Proc, Fault, VirtAddr};
//!
//! let mut p = Proc::new();
//! let s = p.alloc_cstr("hello");
//! assert_eq!(p.read_cstr_lossy(s), "hello");
//!
//! // A wild read is an observable value, not a host crash:
//! let fault = p.read_u8(VirtAddr::new(0xdead_beef)).unwrap_err();
//! assert!(matches!(fault, Fault::Segv { .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod calltable;
mod cval;
pub mod errno;
mod fault;
mod kernel;
pub mod layout;
mod mem;
pub mod oracle;
mod proc;

pub use addr::{Access, Prot, VirtAddr};
pub use calltable::{CallTarget, FuncId, FuncTable, FUNC_STRIDE, SHELLCODE_MAGIC};
pub use cval::CVal;
pub use fault::Fault;
pub use kernel::{Kernel, KernelError, OpenMode};
pub use mem::{AddressSpace, EpochHandle, MapError, Region};
pub use oracle::{ExtentOracle, RegionOracle};
pub use proc::{Frame, HostFn, Proc, ThreadId, DEFAULT_CALL_FUEL};
