//! Virtual addresses and protection flags for the simulated address space.

use std::fmt;

/// A virtual address in a simulated process.
///
/// Addresses are plain 64-bit values; the newtype keeps them from being
/// confused with sizes and host pointers.
///
/// ```
/// use simproc::VirtAddr;
/// let a = VirtAddr::new(0x1000);
/// assert_eq!(a.add(0x10).get(), 0x1010);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The null address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Adds an unsigned offset, wrapping on overflow (like pointer
    /// arithmetic on a real machine).
    pub const fn add(self, off: u64) -> Self {
        VirtAddr(self.0.wrapping_add(off))
    }

    /// Subtracts an unsigned offset, wrapping on underflow.
    pub const fn sub(self, off: u64) -> Self {
        VirtAddr(self.0.wrapping_sub(off))
    }

    /// Adds a signed offset, wrapping.
    pub const fn offset(self, off: i64) -> Self {
        VirtAddr(self.0.wrapping_add(off as u64))
    }

    /// Byte distance from `other` to `self` (`self - other`), wrapping.
    pub const fn diff(self, other: VirtAddr) -> u64 {
        self.0.wrapping_sub(other.0)
    }

    /// Aligns the address down to `align`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics unless `align` is a power of two. A zero
    /// `align` in particular would underflow the mask and silently
    /// produce garbage in release builds.
    pub const fn align_down(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "align must be a power of two");
        VirtAddr(self.0 & !(align.wrapping_sub(1)))
    }

    /// Aligns the address up to `align`, wrapping at the top of the
    /// address space like [`VirtAddr::add`].
    ///
    /// # Panics
    ///
    /// In debug builds, panics unless `align` is a power of two (see
    /// [`VirtAddr::align_down`]).
    pub const fn align_up(self, align: u64) -> Self {
        debug_assert!(align.is_power_of_two(), "align must be a power of two");
        VirtAddr(self.0.wrapping_add(align.wrapping_sub(1)) & !(align.wrapping_sub(1)))
    }

    /// Returns `true` if the address is aligned to `align`.
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(a: VirtAddr) -> u64 {
        a.0
    }
}

/// Page protection flags for a mapped region.
///
/// ```
/// use simproc::Prot;
/// assert!(Prot::RW.can_write());
/// assert!(!Prot::R.can_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    read: bool,
    write: bool,
    exec: bool,
}

impl Prot {
    /// No access at all (a guard region).
    pub const NONE: Prot = Prot { read: false, write: false, exec: false };
    /// Read-only (e.g. `.rodata`).
    pub const R: Prot = Prot { read: true, write: false, exec: false };
    /// Read-write (data, heap, stack).
    pub const RW: Prot = Prot { read: true, write: true, exec: false };
    /// Read-execute (text).
    pub const RX: Prot = Prot { read: true, write: false, exec: true };
    /// Read-write-execute (only used by deliberately unsafe tests).
    pub const RWX: Prot = Prot { read: true, write: true, exec: true };

    /// Whether reads are allowed.
    pub const fn can_read(self) -> bool {
        self.read
    }

    /// Whether writes are allowed.
    pub const fn can_write(self) -> bool {
        self.write
    }

    /// Whether execution is allowed.
    pub const fn can_exec(self) -> bool {
        self.exec
    }

    /// Whether the given kind of access is allowed.
    pub const fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
            Access::Exec => self.exec,
        }
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// The kind of memory access that faulted or is being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch / indirect call.
    Exec,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
            Access::Exec => write!(f, "exec"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic_wraps() {
        let a = VirtAddr::new(u64::MAX);
        assert_eq!(a.add(1), VirtAddr::NULL);
        assert_eq!(VirtAddr::NULL.sub(1).get(), u64::MAX);
    }

    #[test]
    fn addr_alignment() {
        let a = VirtAddr::new(0x1234);
        assert_eq!(a.align_down(0x1000).get(), 0x1000);
        assert_eq!(a.align_up(0x1000).get(), 0x2000);
        assert!(VirtAddr::new(0x2000).is_aligned(0x1000));
        assert!(!a.is_aligned(16));
    }

    #[test]
    fn addr_alignment_boundaries() {
        // align == 1 is the identity at every address.
        let a = VirtAddr::new(0x1234);
        assert_eq!(a.align_down(1), a);
        assert_eq!(a.align_up(1), a);
        assert_eq!(VirtAddr::new(u64::MAX).align_down(1).get(), u64::MAX);
        assert_eq!(VirtAddr::new(u64::MAX).align_up(1).get(), u64::MAX);
        // The largest power-of-two alignment.
        let top = 1u64 << 63;
        assert_eq!(VirtAddr::new(top + 5).align_down(top).get(), top);
        assert_eq!(VirtAddr::new(1).align_up(top).get(), top);
        // Aligning up near the top of the address space wraps, like
        // `add` does.
        assert_eq!(VirtAddr::new(u64::MAX).align_up(0x1000), VirtAddr::NULL);
        // Already-aligned addresses are fixpoints.
        assert_eq!(VirtAddr::new(0x2000).align_up(0x1000).get(), 0x2000);
    }

    // `debug_assert!` only fires in debug builds — exactly how the
    // regression surfaces (debug: panic; release: garbage mask). The
    // test suite runs unoptimized, so the panic is observable here.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_alignment_is_rejected_down() {
        let _ = VirtAddr::new(0x1234).align_down(0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_alignment_is_rejected_up() {
        let _ = VirtAddr::new(0x1234).align_up(0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_is_rejected() {
        let _ = VirtAddr::new(0x1234).align_down(24);
    }

    #[test]
    fn addr_offset_signed() {
        let a = VirtAddr::new(0x1000);
        assert_eq!(a.offset(-0x10).get(), 0xff0);
        assert_eq!(a.offset(0x10).get(), 0x1010);
    }

    #[test]
    fn addr_diff() {
        assert_eq!(VirtAddr::new(0x20).diff(VirtAddr::new(0x8)), 0x18);
    }

    #[test]
    fn prot_flags() {
        assert!(Prot::R.can_read() && !Prot::R.can_write() && !Prot::R.can_exec());
        assert!(Prot::RW.allows(Access::Write));
        assert!(!Prot::RW.allows(Access::Exec));
        assert!(Prot::RX.allows(Access::Exec));
        assert!(!Prot::NONE.allows(Access::Read));
    }

    #[test]
    fn prot_display() {
        assert_eq!(Prot::RW.to_string(), "rw-");
        assert_eq!(Prot::RX.to_string(), "r-x");
        assert_eq!(Prot::NONE.to_string(), "---");
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(VirtAddr::new(0x40_0000).to_string(), "0x000000400000");
    }

    #[test]
    fn null_checks() {
        assert!(VirtAddr::NULL.is_null());
        assert!(!VirtAddr::new(1).is_null());
    }
}
