//! Extent oracles: how much memory is safely readable/writable from a
//! pointer.
//!
//! HEALERS' security wrapper turns `strcpy(dst, src)` into a *bounded*
//! copy: it asks "how many bytes may be written at `dst`?" and refuses the
//! call (or truncates) when the source would not fit. The answer comes
//! from an [`ExtentOracle`]. The baseline [`RegionOracle`] answers from
//! page mappings and stack frames; the `guardian` crate refines it to
//! heap-allocation granularity using its allocation registry.

use crate::addr::{Access, VirtAddr};
use crate::proc::Proc;

/// Answers pointer-extent queries against a process image.
pub trait ExtentOracle {
    /// Number of bytes writable starting at `addr`, or `None` if the
    /// address is not writable at all.
    fn writable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64>;

    /// Number of bytes readable starting at `addr`, or `None`.
    fn readable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64>;

    /// Exact bytes between `addr` and the right edge of the *object*
    /// containing it — the `size_right` introspection query of Rigger et
    /// al.'s "Introspection for C", and the number a bounded safer
    /// variant may write without overflowing. `None` when `addr` points
    /// at nothing writable. The default answers with the writable extent,
    /// which every in-tree oracle already measures to the end of the
    /// containing object; oracles with a more precise object map (the
    /// guardian's canary registry) override this to the exact allocation
    /// edge.
    fn extent_right(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        self.writable_extent(proc, addr)
    }

    /// Epoch of any *auxiliary* state the oracle consults beyond the
    /// process image itself (e.g. guardian's canary registry). An extent
    /// answer is reproducible while both this and `proc.mem.epoch()` are
    /// unchanged; memoized validations carry both and expire when either
    /// moves. Oracles answering purely from the process image keep the
    /// constant default.
    fn validation_epoch(&self) -> u64 {
        0
    }
}

/// The baseline oracle: region protections, refined on the stack so that a
/// write through a frame-local buffer may never clobber a saved return
/// address (the libsafe rule the paper cites as its reference \[1\]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionOracle;

impl RegionOracle {
    /// Creates the baseline oracle.
    pub fn new() -> Self {
        RegionOracle
    }
}

impl ExtentOracle for RegionOracle {
    fn writable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        // Stack rule: a local buffer ends at the frame's saved return slot.
        if let Some(frame) = proc.frame_containing(addr) {
            if addr < frame.ret_slot {
                return Some(frame.ret_slot.diff(addr));
            }
        }
        let n = proc.mem.accessible_extent(addr, Access::Write);
        if n == 0 {
            None
        } else {
            Some(n)
        }
    }

    fn readable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        let n = proc.mem.accessible_extent(addr, Access::Read);
        if n == 0 {
            None
        } else {
            Some(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    #[test]
    fn readable_extent_in_rodata() {
        let mut p = Proc::new();
        let lit = p.alloc_cstr_literal("hi");
        let oracle = RegionOracle::new();
        assert!(oracle.readable_extent(&p, lit).unwrap() >= 3);
        assert_eq!(oracle.writable_extent(&p, lit), None, "rodata is not writable");
    }

    #[test]
    fn unmapped_extent_is_none() {
        let p = Proc::new();
        let oracle = RegionOracle::new();
        assert_eq!(oracle.writable_extent(&p, layout::WILD_ADDR), None);
        assert_eq!(oracle.readable_extent(&p, layout::WILD_ADDR), None);
    }

    #[test]
    fn stack_extent_stops_at_return_slot() {
        let mut p = Proc::new();
        p.push_frame("f").unwrap();
        let buf = p.stack_alloc(32).unwrap();
        let oracle = RegionOracle::new();
        let ext = oracle.writable_extent(&p, buf).unwrap();
        // 32 bytes of locals + 8 bytes saved frame pointer, but never the
        // return slot itself.
        let frame = p.frame_containing(buf).unwrap();
        assert_eq!(ext, frame.ret_slot.diff(buf));
        assert!(ext >= 32);
        assert!(ext < 32 + 24);
    }

    #[test]
    fn extent_right_defaults_to_the_writable_extent() {
        let mut p = Proc::new();
        let oracle = RegionOracle::new();
        // Pointer at the very last byte of the data segment: exactly 1.
        let last = layout::DATA_BASE.add(layout::DATA_SIZE).sub(1);
        assert_eq!(oracle.extent_right(&p, last), Some(1));
        assert_eq!(oracle.extent_right(&p, layout::WILD_ADDR), None);
        // On the stack the default inherits the return-slot clipping.
        p.push_frame("f").unwrap();
        let buf = p.stack_alloc(16).unwrap();
        assert_eq!(oracle.extent_right(&p, buf), oracle.writable_extent(&p, buf));
    }

    #[test]
    fn data_extent_runs_to_segment_end() {
        let mut p = Proc::new();
        let a = p.alloc_data(b"xxxx");
        let oracle = RegionOracle::new();
        let ext = oracle.writable_extent(&p, a).unwrap();
        assert_eq!(ext, layout::DATA_BASE.add(layout::DATA_SIZE).diff(a));
    }
}
