//! The simulated process: address space + kernel + stack + fuel + errno.
//!
//! Every simulated C library function and every simulated application runs
//! against a [`Proc`]. All memory traffic goes through the fuel-metered
//! checked accessors, so a call that would hang (e.g. `strlen` walking an
//! unterminated buffer around a circular mapping) runs out of fuel and is
//! classified as a hang, and every access is protection-checked so crashes
//! become observable [`Fault`] values.

use crate::addr::{Access, Prot, VirtAddr};
use crate::calltable::{CallTarget, FuncId, FuncTable, SHELLCODE_MAGIC};
use crate::cval::CVal;
use crate::fault::Fault;
use crate::kernel::Kernel;
use crate::layout;
use crate::mem::AddressSpace;

/// A stack frame of a simulated application function.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Name of the function that owns the frame (diagnostics).
    pub func: String,
    /// Highest address of the frame (the stack pointer at entry).
    pub top: VirtAddr,
    /// Address of the saved return-address slot inside the frame.
    pub ret_slot: VirtAddr,
    /// The sentinel stored in the return slot at frame creation.
    ret_sentinel: u64,
}

impl Frame {
    /// Whether `addr` lies inside this frame's local area (below the saved
    /// return address, at or above the current extent of the stack).
    pub fn contains_local(&self, addr: VirtAddr, sp: VirtAddr) -> bool {
        addr >= sp && addr < self.ret_slot
    }
}

/// Default execution fuel for a single library call under fault injection.
pub const DEFAULT_CALL_FUEL: u64 = 2_000_000;

/// Slots in the per-process validation memo (direct mapped).
const MEMO_SLOTS: usize = 64;

/// One memoized pointer validation: "wrapper `key` judged pointer `ptr`
/// valid while the address space sat at `mem_epoch` and the judging
/// oracle's auxiliary state at `aux_epoch`". Expires the instant either
/// epoch moves.
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    key: u64,
    ptr: u64,
    mem_epoch: u64,
    aux_epoch: u64,
}

/// `key` is `u64::MAX` on empty slots: real keys are `(wrapper id << 32) |
/// arg slot` with the slot strictly below `u32::MAX`, so a real key's low
/// half is never all-ones and no key can collide with the sentinel.
const MEMO_EMPTY: MemoEntry =
    MemoEntry { key: u64::MAX, ptr: 0, mem_epoch: 0, aux_epoch: 0 };

/// Direct-mapped table slot for `key`. The wrapper id and the arg slot
/// occupy disjoint 32-bit halves of the key, so fold the halves together
/// before reducing — a plain `key % MEMO_SLOTS` would map every wrapper's
/// slot-0 key onto table slot 0.
fn memo_slot(key: u64) -> usize {
    ((key >> 32) ^ key) as usize % MEMO_SLOTS
}

/// Identifier of one simulated thread inside a [`Proc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main thread, alive from process creation.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Zero-based index (main thread is 0, spawn order after that).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The saved execution context of one simulated thread: everything that is
/// private per-thread while the address space, heap, kernel and fuel meter
/// stay shared. The *current* thread's context lives unpacked in the hot
/// [`Proc`] fields (`errno`, `frames`, `sp`, `validation_memo`, stack
/// bounds); its `SimThread` entry holds stale copies until the next
/// [`Proc::switch_thread`] parks it.
///
/// The validation memo is deliberately per-thread: memoized verdicts from
/// extent-oracle predicates can depend on the judging thread's own live
/// frames and stack pointer, which swap on a thread switch *without* an
/// address-space epoch bump. Keeping the table with the thread means a
/// verdict can only ever be replayed under the frames it was computed
/// against, while any thread's mutation still expires every table through
/// the shared epoch.
#[derive(Debug, Clone)]
struct SimThread {
    /// Diagnostic name (worker label in server reports).
    name: String,
    errno: i32,
    frames: Vec<Frame>,
    sp: VirtAddr,
    /// Lowest address of this thread's stack mapping (overflow limit).
    stack_base: VirtAddr,
    /// Top (exclusive) of this thread's stack mapping.
    stack_top: VirtAddr,
    memo: Option<Box<[MemoEntry; MEMO_SLOTS]>>,
}

/// A simulated process image.
///
/// ```
/// use simproc::{Proc, CVal};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Proc::new();
/// let s = p.alloc_data(b"hello\0");
/// assert_eq!(p.read_cstr_lossy(s), "hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Proc {
    /// The simulated address space.
    pub mem: AddressSpace,
    /// Kernel-side state: files, std streams, privilege, attack flags.
    pub kernel: Kernel,
    /// The function/address table.
    pub funcs: FuncTable,
    errno: i32,
    fuel_limit: Option<u64>,
    fuel_used: u64,
    frames: Vec<Frame>,
    sp: VirtAddr,
    /// Lowest address of the current thread's stack (overflow limit).
    stack_base: VirtAddr,
    /// Top (exclusive) of the current thread's stack.
    stack_top: VirtAddr,
    data_cursor: VirtAddr,
    rodata_cursor: VirtAddr,
    exit_status: Option<i32>,
    next_sentinel: u64,
    fleet_identity: Option<(u64, u64, u64)>,
    /// Host implementations of registered functions, indexed by `FuncId`.
    impls: Vec<Option<HostFn>>,
    /// Direct-mapped positive cache of pointer validations, keyed by
    /// (wrapper, arg slot). Allocated lazily on the first store so
    /// processes that never run compiled wrappers pay nothing. Belongs to
    /// the *current thread* — see [`SimThread`] for why the tables are
    /// per-thread — and is swapped out by [`Proc::switch_thread`].
    validation_memo: Option<Box<[MemoEntry; MEMO_SLOTS]>>,
    /// Every simulated thread of the process, indexed by [`ThreadId`].
    /// Entry `cur_thread` is stale while that thread runs (its live
    /// context sits in the fields above).
    threads: Vec<SimThread>,
    /// Index of the currently running thread.
    cur_thread: u32,
}

impl Default for Proc {
    fn default() -> Self {
        Proc::new()
    }
}

impl Proc {
    /// Creates a process with the standard segment layout mapped.
    pub fn new() -> Self {
        let mut mem = AddressSpace::new();
        mem.map(layout::TEXT_BASE, layout::TEXT_SIZE, Prot::RX, "text").expect("layout");
        mem.map(layout::RODATA_BASE, layout::RODATA_SIZE, Prot::R, "rodata")
            .expect("layout");
        mem.map(layout::DATA_BASE, layout::DATA_SIZE, Prot::RW, "data").expect("layout");
        mem.map(layout::HEAP_BASE, layout::HEAP_INITIAL, Prot::RW, "heap").expect("layout");
        mem.map(layout::STACK_BASE, layout::STACK_SIZE, Prot::RW, "[stack]")
            .expect("layout");
        Proc {
            mem,
            kernel: Kernel::new(),
            funcs: FuncTable::new(),
            errno: 0,
            fuel_limit: None,
            fuel_used: 0,
            frames: Vec::new(),
            sp: layout::STACK_TOP,
            stack_base: layout::STACK_BASE,
            stack_top: layout::STACK_TOP,
            data_cursor: layout::DATA_CURSOR_START,
            rodata_cursor: layout::RODATA_BASE,
            exit_status: None,
            next_sentinel: 0x5AFE_0000_0000_0000,
            fleet_identity: None,
            impls: Vec::new(),
            validation_memo: None,
            threads: vec![SimThread {
                name: "main".to_string(),
                errno: 0,
                frames: Vec::new(),
                sp: layout::STACK_TOP,
                stack_base: layout::STACK_BASE,
                stack_top: layout::STACK_TOP,
                memo: None,
            }],
            cur_thread: 0,
        }
    }

    // ----- simulated threads ----------------------------------------------

    /// Spawns a new simulated thread with its own stack, errno, frame list
    /// and validation memo, sharing this process's address space, heap,
    /// kernel and fuel meter. The thread starts parked; run it with
    /// [`Proc::switch_thread`]. Mapping the stack bumps the validation
    /// epoch, so every memoized verdict in every thread expires.
    ///
    /// # Errors
    ///
    /// [`Fault::Abort`] when the thread-stack area is exhausted.
    pub fn spawn_thread(&mut self, name: &str) -> Result<ThreadId, Fault> {
        let n = self.threads.len() as u32;
        let top = layout::thread_stack_top(n).ok_or_else(|| {
            Fault::abort(format!("thread stack area exhausted at {name}"))
        })?;
        let base = top.sub(layout::THREAD_STACK_SIZE);
        self.mem
            .map(base, layout::THREAD_STACK_SIZE, Prot::RW, format!("[stack:t{n}]"))
            .map_err(|e| Fault::abort(format!("mapping stack for {name}: {e}")))?;
        self.threads.push(SimThread {
            name: name.to_string(),
            errno: 0,
            frames: Vec::new(),
            sp: top,
            stack_base: base,
            stack_top: top,
            memo: None,
        });
        Ok(ThreadId(n))
    }

    /// Parks the current thread and resumes `tid`: errno, the frame list,
    /// the stack pointer/bounds and the validation memo are swapped; the
    /// address space, heap, kernel, fuel meter and epoch stay shared. A
    /// no-op when `tid` is already current. Deliberately *not* an epoch
    /// bump: per-thread memo tables keep cached verdicts sound across
    /// switches (see [`SimThread`]).
    ///
    /// # Panics
    ///
    /// Panics if `tid` was never spawned.
    pub fn switch_thread(&mut self, tid: ThreadId) {
        assert!(tid.index() < self.threads.len(), "switch to unspawned thread {tid}");
        if tid.0 == self.cur_thread {
            return;
        }
        let cur = &mut self.threads[self.cur_thread as usize];
        cur.errno = self.errno;
        cur.sp = self.sp;
        cur.frames = std::mem::take(&mut self.frames);
        cur.memo = self.validation_memo.take();
        let next = &mut self.threads[tid.index()];
        self.errno = next.errno;
        self.sp = next.sp;
        self.stack_base = next.stack_base;
        self.stack_top = next.stack_top;
        self.frames = std::mem::take(&mut next.frames);
        self.validation_memo = next.memo.take();
        self.cur_thread = tid.0;
    }

    /// The currently running thread.
    pub fn current_thread(&self) -> ThreadId {
        ThreadId(self.cur_thread)
    }

    /// Number of simulated threads (main thread included).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Diagnostic name of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was never spawned.
    pub fn thread_name(&self, tid: ThreadId) -> &str {
        // The parked entry is stale only for context registers; the name
        // never changes after spawn, so this is safe for the current
        // thread too.
        &self.threads[tid.index()].name
    }

    // ----- epoch-memoized pointer validation ------------------------------

    /// Whether the validation memo holds a still-live entry for `key`
    /// judging exactly `ptr`: same pointer, same address-space epoch, same
    /// auxiliary (oracle) epoch. A hit means the cached judgement is
    /// provably identical to re-running the check, so the caller may skip
    /// it entirely.
    pub fn validation_hit(&self, key: u64, ptr: VirtAddr, aux_epoch: u64) -> bool {
        match &self.validation_memo {
            Some(table) => {
                let e = &table[memo_slot(key)];
                e.key == key
                    && e.ptr == ptr.get()
                    && e.mem_epoch == self.mem.epoch()
                    && e.aux_epoch == aux_epoch
            }
            None => false,
        }
    }

    /// Records a *successful* validation of `ptr` under `key` at the
    /// current address-space epoch. Only positive results may be stored:
    /// the memo is consulted to skip checks, never to fail them.
    pub fn validation_store(&mut self, key: u64, ptr: VirtAddr, aux_epoch: u64) {
        let mem_epoch = self.mem.epoch();
        let table =
            self.validation_memo.get_or_insert_with(|| Box::new([MEMO_EMPTY; MEMO_SLOTS]));
        table[memo_slot(key)] = MemoEntry { key, ptr: ptr.get(), mem_epoch, aux_epoch };
    }

    /// Registers a callable function: a name, a text address, and a host
    /// implementation. Calls through the address reach `imp`.
    pub fn register_host_fn(&mut self, name: &str, imp: HostFn) -> VirtAddr {
        let (id, addr) = self.funcs.register(name);
        if self.impls.len() <= id.index() {
            self.impls.resize(id.index() + 1, None);
        }
        self.impls[id.index()] = Some(imp);
        addr
    }

    /// The host implementation behind a function id, if one is registered.
    pub fn host_fn(&self, id: FuncId) -> Option<HostFn> {
        self.impls.get(id.index()).copied().flatten()
    }

    // ----- errno ---------------------------------------------------------

    /// Current `errno` value.
    pub fn errno(&self) -> i32 {
        self.errno
    }

    /// Sets `errno`.
    pub fn set_errno(&mut self, e: i32) {
        self.errno = e;
    }

    // ----- fuel / cycles --------------------------------------------------

    /// Installs a fuel budget; `None` removes the watchdog.
    pub fn set_fuel_limit(&mut self, limit: Option<u64>) {
        self.fuel_limit = limit;
    }

    /// Fuel spent so far — also the deterministic "cycle counter" that the
    /// `function exectime` micro-generator samples instead of `rdtsc`.
    pub fn cycles(&self) -> u64 {
        self.fuel_used
    }

    /// Stamps the process with its fleet identity: which fleet member
    /// this process is (`instance`), which logical reporting window
    /// (`epoch`) the run belongs to, and the fleet-wide simulation seed.
    /// Wrappers that ship documents at `exit` read it back to tag their
    /// submissions; unset for ordinary (non-fleet) processes.
    pub fn set_fleet_identity(&mut self, instance: u64, epoch: u64, seed: u64) {
        self.fleet_identity = Some((instance, epoch, seed));
    }

    /// The `(instance, epoch, seed)` stamped by
    /// [`Proc::set_fleet_identity`], if any.
    pub fn fleet_identity(&self) -> Option<(u64, u64, u64)> {
        self.fleet_identity
    }

    /// Burns `n` units of fuel.
    ///
    /// # Errors
    ///
    /// [`Fault::Hang`] when the budget is exhausted.
    pub fn consume_fuel(&mut self, n: u64) -> Result<(), Fault> {
        self.fuel_used = self.fuel_used.saturating_add(n);
        match self.fuel_limit {
            Some(limit) if self.fuel_used > limit => Err(Fault::Hang),
            _ => Ok(()),
        }
    }

    // ----- checked, fuel-metered memory access ----------------------------

    /// Reads one byte (1 fuel).
    pub fn read_u8(&mut self, addr: VirtAddr) -> Result<u8, Fault> {
        self.consume_fuel(1)?;
        self.mem.read_u8(addr)
    }

    /// Writes one byte (1 fuel).
    pub fn write_u8(&mut self, addr: VirtAddr, v: u8) -> Result<(), Fault> {
        self.consume_fuel(1)?;
        self.mem.write_u8(addr, v)
    }

    /// Reads a `u32` (1 fuel).
    pub fn read_u32(&mut self, addr: VirtAddr) -> Result<u32, Fault> {
        self.consume_fuel(1)?;
        self.mem.read_u32(addr)
    }

    /// Writes a `u32` (1 fuel).
    pub fn write_u32(&mut self, addr: VirtAddr, v: u32) -> Result<(), Fault> {
        self.consume_fuel(1)?;
        self.mem.write_u32(addr, v)
    }

    /// Reads a `u64` (1 fuel).
    pub fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, Fault> {
        self.consume_fuel(1)?;
        self.mem.read_u64(addr)
    }

    /// Writes a `u64` (1 fuel).
    pub fn write_u64(&mut self, addr: VirtAddr, v: u64) -> Result<(), Fault> {
        self.consume_fuel(1)?;
        self.mem.write_u64(addr, v)
    }

    /// Reads a pointer (1 fuel).
    pub fn read_ptr(&mut self, addr: VirtAddr) -> Result<VirtAddr, Fault> {
        Ok(VirtAddr::new(self.read_u64(addr)?))
    }

    /// Writes a pointer (1 fuel).
    pub fn write_ptr(&mut self, addr: VirtAddr, v: VirtAddr) -> Result<(), Fault> {
        self.write_u64(addr, v.get())
    }

    /// Reads `len` bytes (1 fuel per 8 bytes, minimum 1).
    pub fn read_bytes(&mut self, addr: VirtAddr, len: u64) -> Result<Vec<u8>, Fault> {
        self.consume_fuel(1 + len / 8)?;
        self.mem.read_bytes(addr, len)
    }

    /// Writes bytes (1 fuel per 8 bytes, minimum 1).
    pub fn write_bytes(&mut self, addr: VirtAddr, bytes: &[u8]) -> Result<(), Fault> {
        self.consume_fuel(1 + bytes.len() as u64 / 8)?;
        self.mem.write_bytes(addr, bytes)
    }

    /// Reads a NUL-terminated C string starting at `addr`, one fuel per
    /// byte. An unterminated string keeps scanning until it faults on
    /// unmapped memory or runs out of fuel — exactly like real `strlen`.
    pub fn read_cstr(&mut self, addr: VirtAddr) -> Result<Vec<u8>, Fault> {
        let mut out = Vec::new();
        let mut cur = addr;
        loop {
            let b = self.read_u8(cur)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            cur = cur.add(1);
        }
    }

    /// [`Proc::read_cstr`] decoded as lossy UTF-8; panics on fault
    /// (host-side convenience for tests and reports only).
    pub fn read_cstr_lossy(&mut self, addr: VirtAddr) -> String {
        String::from_utf8_lossy(&self.read_cstr(addr).expect("read_cstr_lossy faulted"))
            .into_owned()
    }

    /// Writes `s` plus a terminating NUL.
    pub fn write_cstr(&mut self, addr: VirtAddr, s: &[u8]) -> Result<(), Fault> {
        self.write_bytes(addr, s)?;
        self.write_u8(addr.add(s.len() as u64), 0)
    }

    // ----- fixture helpers (host-side, unmetered) --------------------------

    /// Bump-allocates `bytes` in the writable data segment. Panics if the
    /// segment is exhausted (fixtures only).
    pub fn alloc_data(&mut self, bytes: &[u8]) -> VirtAddr {
        let addr = self.data_cursor.align_up(8);
        let end = addr.add(bytes.len() as u64);
        assert!(end <= layout::DATA_BASE.add(layout::DATA_SIZE), "data segment exhausted");
        assert!(self.mem.poke_bytes(addr, bytes), "data segment not mapped");
        self.data_cursor = end;
        addr
    }

    /// Bump-allocates `len` zeroed bytes in the data segment.
    pub fn alloc_data_zeroed(&mut self, len: u64) -> VirtAddr {
        let addr = self.data_cursor.align_up(8);
        let end = addr.add(len);
        assert!(end <= layout::DATA_BASE.add(layout::DATA_SIZE), "data segment exhausted");
        self.data_cursor = end;
        addr
    }

    /// Bump-allocates `bytes` in the *read-only* data segment (string
    /// literals, ctype tables). Uses the loader view to write.
    pub fn alloc_rodata(&mut self, bytes: &[u8]) -> VirtAddr {
        let addr = self.rodata_cursor.align_up(8);
        let end = addr.add(bytes.len() as u64);
        assert!(
            end <= layout::RODATA_BASE.add(layout::RODATA_SIZE),
            "rodata segment exhausted"
        );
        assert!(self.mem.poke_bytes(addr, bytes), "rodata not mapped");
        self.rodata_cursor = end;
        addr
    }

    /// Places a NUL-terminated C string in the data segment.
    pub fn alloc_cstr(&mut self, s: &str) -> VirtAddr {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.alloc_data(&bytes)
    }

    /// Places a NUL-terminated C string in the read-only segment, the way
    /// a compiler places string literals.
    pub fn alloc_cstr_literal(&mut self, s: &str) -> VirtAddr {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.alloc_rodata(&bytes)
    }

    // ----- stack ----------------------------------------------------------

    /// Current stack pointer.
    pub fn sp(&self) -> VirtAddr {
        self.sp
    }

    /// Pushes a stack frame for `func`, reserving the saved-return-address
    /// slot that stack-smashing attacks target.
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] on stack overflow.
    pub fn push_frame(&mut self, func: &str) -> Result<(), Fault> {
        let ret_slot = self.sp.sub(8);
        let new_sp = self.sp.sub(16); // saved return address + saved frame ptr
        if new_sp < self.stack_base {
            return Err(Fault::segv(new_sp, Access::Write, "stack overflow"));
        }
        let sentinel = self.next_sentinel;
        self.next_sentinel += 1;
        self.mem.write_u64(ret_slot, sentinel)?;
        self.frames.push(Frame {
            func: func.to_string(),
            top: self.sp,
            ret_slot,
            ret_sentinel: sentinel,
        });
        self.sp = new_sp;
        Ok(())
    }

    /// Allocates `len` bytes of locals in the current frame, returning the
    /// lowest address of the buffer (buffers grow toward the return
    /// address above them — the classic smash direction).
    ///
    /// # Errors
    ///
    /// [`Fault::Segv`] on stack overflow.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been pushed.
    pub fn stack_alloc(&mut self, len: u64) -> Result<VirtAddr, Fault> {
        assert!(!self.frames.is_empty(), "stack_alloc outside any frame");
        let new_sp = self.sp.sub(len).align_down(8);
        if new_sp < self.stack_base {
            return Err(Fault::segv(new_sp, Access::Write, "stack overflow"));
        }
        self.sp = new_sp;
        // Moving the stack pointer changes which addresses count as live
        // frame locals (the stack extent oracle), without touching memory.
        self.mem.bump_epoch();
        Ok(new_sp)
    }

    /// Pops the current frame, simulating the function's `ret`. If the
    /// saved return address was clobbered, control transfers to whatever
    /// the attacker wrote there: shellcode sets the kernel's
    /// `shell_spawned` flag; anything else is a wild jump.
    ///
    /// # Errors
    ///
    /// [`Fault::WildJump`] when the return address was overwritten.
    pub fn pop_frame(&mut self) -> Result<(), Fault> {
        let frame = self.frames.pop().expect("pop_frame without a frame");
        let stored = self.mem.read_u64(frame.ret_slot)?;
        self.sp = frame.top;
        // The frame and its locals are dead: extents computed against it
        // must expire even though no region data changed.
        self.mem.bump_epoch();
        if stored == frame.ret_sentinel {
            return Ok(());
        }
        let target = VirtAddr::new(stored);
        if self.resolve_call(target) == CallTarget::Shellcode {
            self.kernel.shell_spawned = true;
        }
        Err(Fault::WildJump { target })
    }

    /// The innermost live frame containing `addr`, used by the stack
    /// guard's extent oracle.
    pub fn frame_containing(&self, addr: VirtAddr) -> Option<&Frame> {
        self.frames
            .iter()
            .rev()
            .find(|f| f.contains_local(addr, self.sp) || (addr >= self.sp && addr < f.top))
    }

    /// Depth of the frame stack.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    // ----- indirect calls and control-flow hijack ---------------------------

    /// Classifies an indirect call target. A pointer into memory whose
    /// first 24 bytes contain [`SHELLCODE_MAGIC`] "executes" the
    /// attacker's payload: the kernel records a spawned shell. The search
    /// window models the jump-over-clobbered-bytes trick real unlink
    /// exploits use (unlink's second write destroys the payload's first
    /// word).
    pub fn resolve_call(&self, target: VirtAddr) -> CallTarget {
        if let Some(id) = self.funcs.by_addr(target) {
            return CallTarget::Function(id);
        }
        let window = 16 + SHELLCODE_MAGIC.len() as u64;
        if let Some(bytes) = self.mem.peek_bytes(target, window) {
            if bytes.windows(SHELLCODE_MAGIC.len()).any(|w| w == SHELLCODE_MAGIC) {
                return CallTarget::Shellcode;
            }
        }
        CallTarget::Wild
    }

    /// Performs an indirect call resolution with side effects: shellcode
    /// spawns the attacker's shell (if the process has root privilege, the
    /// box is owned), wild targets fault.
    ///
    /// # Errors
    ///
    /// [`Fault::WildJump`] unless the target is a registered function.
    pub fn call_indirect(&mut self, target: VirtAddr) -> Result<FuncId, Fault> {
        match self.resolve_call(target) {
            CallTarget::Function(id) => Ok(id),
            CallTarget::Shellcode => {
                self.kernel.shell_spawned = true;
                Err(Fault::WildJump { target })
            }
            CallTarget::Wild => Err(Fault::WildJump { target }),
        }
    }

    /// Executes an indirect call: resolves `target`, dispatches to the
    /// registered host implementation with `args`. Ten fuel per call
    /// models call overhead.
    ///
    /// # Errors
    ///
    /// [`Fault::WildJump`] for unresolvable targets (shellcode included —
    /// after setting the attacker's success flag), [`Fault::Abort`] for a
    /// registered function without an implementation, plus whatever the
    /// callee itself returns.
    pub fn call_function(
        &mut self,
        target: VirtAddr,
        args: &[CVal],
    ) -> Result<CVal, Fault> {
        self.consume_fuel(10)?;
        let id = self.call_indirect(target)?;
        match self.host_fn(id) {
            Some(f) => f(self, args),
            None => Err(Fault::abort(format!(
                "call to `{}` which has no implementation",
                self.funcs.name_of(id)
            ))),
        }
    }

    // ----- process lifetime -------------------------------------------------

    /// Terminates the process with `status`.
    ///
    /// # Errors
    ///
    /// Always returns [`Fault::Exit`] so callers unwind.
    pub fn exit(&mut self, status: i32) -> Fault {
        self.exit_status = Some(status);
        Fault::Exit(status)
    }

    /// The exit status, if the process has exited.
    pub fn exit_status(&self) -> Option<i32> {
        self.exit_status
    }
}

/// The signature of every simulated C function: the host implementation of
/// a symbol in a simulated shared library.
pub type HostFn = fn(&mut Proc, &[CVal]) -> Result<CVal, Fault>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_is_mapped() {
        let p = Proc::new();
        assert!(p.mem.region_at(layout::TEXT_BASE).is_some());
        assert!(p.mem.region_at(layout::HEAP_BASE).is_some());
        assert!(p.mem.region_at(layout::STACK_BASE).is_some());
        assert!(p.mem.region_at(layout::WILD_ADDR).is_none());
    }

    #[test]
    fn errno_roundtrip() {
        let mut p = Proc::new();
        assert_eq!(p.errno(), 0);
        p.set_errno(crate::errno::EINVAL);
        assert_eq!(p.errno(), crate::errno::EINVAL);
    }

    #[test]
    fn fuel_exhaustion_is_a_hang() {
        let mut p = Proc::new();
        p.set_fuel_limit(Some(10));
        assert!(p.consume_fuel(10).is_ok());
        assert_eq!(p.consume_fuel(1), Err(Fault::Hang));
        assert_eq!(p.cycles(), 11);
    }

    #[test]
    fn cstr_roundtrip() {
        let mut p = Proc::new();
        let a = p.alloc_cstr("robust");
        assert_eq!(p.read_cstr(a).unwrap(), b"robust");
        assert_eq!(p.read_cstr_lossy(a), "robust");
    }

    #[test]
    fn unterminated_cstr_faults_at_segment_end() {
        let mut p = Proc::new();
        // Fill the very end of the data segment without a NUL anywhere after.
        let end = layout::DATA_BASE.add(layout::DATA_SIZE);
        let start = end.sub(4);
        assert!(p.mem.poke_bytes(start, &[b'x'; 4]));
        let err = p.read_cstr(start).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }), "{err}");
    }

    #[test]
    fn unterminated_cstr_hangs_with_small_fuel() {
        let mut p = Proc::new();
        p.set_fuel_limit(Some(100));
        // Data segment is zero-filled, so this terminates immediately;
        // instead scan the (large, zeroed) heap after filling it without NUL.
        let base = layout::HEAP_BASE;
        let fill = vec![b'a'; layout::HEAP_INITIAL as usize];
        assert!(p.mem.poke_bytes(base, &fill));
        let err = p.read_cstr(base).unwrap_err();
        assert_eq!(err, Fault::Hang);
    }

    #[test]
    fn rodata_literals_are_readonly() {
        let mut p = Proc::new();
        let lit = p.alloc_cstr_literal("const");
        assert_eq!(p.read_cstr(lit).unwrap(), b"const");
        let err = p.write_u8(lit, b'X').unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Write, .. }));
    }

    #[test]
    fn frames_push_alloc_pop() {
        let mut p = Proc::new();
        p.push_frame("main").unwrap();
        let buf = p.stack_alloc(64).unwrap();
        p.write_bytes(buf, &[7u8; 64]).unwrap();
        assert_eq!(p.frame_depth(), 1);
        let f = p.frame_containing(buf).unwrap();
        assert_eq!(f.func, "main");
        p.pop_frame().unwrap();
        assert_eq!(p.frame_depth(), 0);
        assert_eq!(p.sp(), layout::STACK_TOP);
    }

    #[test]
    fn smashed_return_address_is_detected_on_pop() {
        let mut p = Proc::new();
        p.push_frame("vuln").unwrap();
        let buf = p.stack_alloc(16).unwrap();
        // Overflow the 16-byte buffer up into the saved return address
        // (8-byte saved bp sits between buffer and ret slot).
        let smash = vec![0x41u8; 16 + 8 + 8];
        p.mem.write_bytes(buf, &smash).unwrap();
        let err = p.pop_frame().unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
        assert!(!p.kernel.shell_spawned);
    }

    #[test]
    fn smashed_return_address_to_shellcode_spawns_shell() {
        let mut p = Proc::new();
        let payload = p.alloc_data(SHELLCODE_MAGIC);
        p.push_frame("vuln").unwrap();
        let _buf = p.stack_alloc(16).unwrap();
        let frame_ret = p.frame_containing(p.sp()).unwrap().ret_slot;
        p.mem.write_u64(frame_ret, payload.get()).unwrap();
        let err = p.pop_frame().unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
        assert!(p.kernel.shell_spawned, "shellcode must have run");
    }

    #[test]
    fn stack_overflow_faults() {
        let mut p = Proc::new();
        p.push_frame("deep").unwrap();
        let err = p.stack_alloc(layout::STACK_SIZE + 1).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn indirect_call_resolution() {
        let mut p = Proc::new();
        let (id, addr) = p.funcs.register("qsort_cmp");
        assert_eq!(p.call_indirect(addr).unwrap(), id);
        let err = p.call_indirect(VirtAddr::new(0x1234)).unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
    }

    #[test]
    fn indirect_call_to_shellcode_owns_root_process() {
        let mut p = Proc::new();
        p.kernel.root_privilege = true;
        let payload = p.alloc_data(SHELLCODE_MAGIC);
        let err = p.call_indirect(payload).unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
        assert!(p.kernel.shell_spawned);
        assert!(p.kernel.root_privilege);
    }

    #[test]
    fn call_function_dispatches_to_host_impl() {
        fn double(_p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
            Ok(CVal::Int(args[0].as_int() * 2))
        }
        let mut p = Proc::new();
        let addr = p.register_host_fn("double", double);
        let r = p.call_function(addr, &[CVal::Int(21)]).unwrap();
        assert_eq!(r, CVal::Int(42));
    }

    #[test]
    fn call_function_without_impl_aborts() {
        let mut p = Proc::new();
        let (_, addr) = p.funcs.register("stub");
        let err = p.call_function(addr, &[]).unwrap_err();
        assert!(matches!(err, Fault::Abort { .. }));
    }

    #[test]
    fn exit_records_status() {
        let mut p = Proc::new();
        let f = p.exit(3);
        assert_eq!(f, Fault::Exit(3));
        assert_eq!(p.exit_status(), Some(3));
    }

    #[test]
    fn data_allocations_do_not_overlap() {
        let mut p = Proc::new();
        let a = p.alloc_data(b"aaaa");
        let b = p.alloc_data(b"bbbb");
        assert!(b >= a.add(4));
        let z = p.alloc_data_zeroed(16);
        assert!(z >= b.add(4));
    }

    #[test]
    fn write_bytes_checked_respects_protection() {
        let mut p = Proc::new();
        let err = p.write_bytes(layout::TEXT_BASE, &[0u8; 4]).unwrap_err();
        assert!(matches!(err, Fault::Segv { access: Access::Write, .. }));
    }

    #[test]
    fn validation_memo_expires_with_the_epoch() {
        let mut p = Proc::new();
        let a = p.alloc_data_zeroed(32);
        let key = (7u64 << 3) | 1;
        assert!(!p.validation_hit(key, a, 0), "empty memo never hits");
        p.validation_store(key, a, 0);
        assert!(p.validation_hit(key, a, 0), "fresh store hits");
        assert!(!p.validation_hit(key, a.add(1), 0), "different pointer misses");
        assert!(!p.validation_hit(key + 8, a, 0), "different key misses");
        assert!(!p.validation_hit(key, a, 1), "different aux epoch misses");
        // Any memory mutation expires the entry.
        p.mem.write_u8(a, 1).unwrap();
        assert!(!p.validation_hit(key, a, 0), "content write expires");
        p.validation_store(key, a, 0);
        assert!(p.validation_hit(key, a, 0));
        // Stack machinery expires entries too: frames move the stack
        // extent oracle without writing region data.
        p.push_frame("f").unwrap();
        assert!(!p.validation_hit(key, a, 0), "push_frame expires");
        p.validation_store(key, a, 0);
        let _ = p.stack_alloc(16).unwrap();
        assert!(!p.validation_hit(key, a, 0), "stack_alloc expires");
        p.validation_store(key, a, 0);
        p.pop_frame().unwrap();
        assert!(!p.validation_hit(key, a, 0), "pop_frame expires");
        // The memo clones with the process.
        p.validation_store(key, a, 0);
        assert!(p.clone().validation_hit(key, a, 0));
    }

    #[test]
    fn spawned_threads_get_private_stacks_errno_and_frames() {
        let mut p = Proc::new();
        assert_eq!(p.current_thread(), ThreadId::MAIN);
        assert_eq!(p.thread_count(), 1);
        p.set_errno(1);
        p.push_frame("main").unwrap();
        let main_buf = p.stack_alloc(32).unwrap();

        let t1 = p.spawn_thread("worker-1").unwrap();
        let t2 = p.spawn_thread("worker-2").unwrap();
        assert_eq!(p.thread_count(), 3);
        assert_eq!(p.thread_name(t1), "worker-1");
        assert_ne!(t1, t2);

        // Worker 1: clean context, own stack region, own errno.
        p.switch_thread(t1);
        assert_eq!(p.current_thread(), t1);
        assert_eq!(p.errno(), 0);
        assert_eq!(p.frame_depth(), 0);
        p.push_frame("handler").unwrap();
        let w1_buf = p.stack_alloc(64).unwrap();
        assert_eq!(p.mem.region_at(w1_buf).unwrap().name(), "[stack:t1]");
        assert_ne!(
            p.mem.region_at(w1_buf).unwrap().name(),
            p.mem.region_at(main_buf).unwrap().name()
        );
        p.set_errno(7);

        // Worker 2 sees none of worker 1's context.
        p.switch_thread(t2);
        assert_eq!(p.errno(), 0);
        assert_eq!(p.frame_depth(), 0);
        p.push_frame("handler").unwrap();
        let w2_buf = p.stack_alloc(64).unwrap();
        assert_eq!(p.mem.region_at(w2_buf).unwrap().name(), "[stack:t2]");
        assert_ne!(w1_buf, w2_buf);
        p.pop_frame().unwrap();

        // Main thread resumes exactly where it parked.
        p.switch_thread(ThreadId::MAIN);
        assert_eq!(p.errno(), 1);
        assert_eq!(p.frame_depth(), 1);
        assert_eq!(p.frame_containing(main_buf).unwrap().func, "main");
        p.pop_frame().unwrap();

        // And worker 1's frame survived both switches.
        p.switch_thread(t1);
        assert_eq!(p.errno(), 7);
        assert_eq!(p.frame_containing(w1_buf).unwrap().func, "handler");
        p.pop_frame().unwrap();
    }

    #[test]
    fn thread_switch_keeps_memo_tables_private() {
        let mut p = Proc::new();
        let t1 = p.spawn_thread("w").unwrap();
        let a = p.alloc_data_zeroed(32);
        let key = (7u64 << 32) | 1;
        p.validation_store(key, a, 0);
        assert!(p.validation_hit(key, a, 0));
        // The other thread must not inherit the verdict...
        p.switch_thread(t1);
        assert!(!p.validation_hit(key, a, 0), "memo tables are per-thread");
        p.validation_store(key, a, 0);
        // ...and switching back revives the original table (epoch
        // untouched by the switches themselves).
        p.switch_thread(ThreadId::MAIN);
        assert!(p.validation_hit(key, a, 0), "parked table survives a round trip");
        // A mutation from the main thread expires the parked table too,
        // through the shared epoch.
        p.mem.write_u8(a, 1).unwrap();
        p.switch_thread(t1);
        assert!(!p.validation_hit(key, a, 0), "shared epoch expires parked memos");
    }

    #[test]
    fn thread_stack_overflow_faults_at_its_own_base() {
        let mut p = Proc::new();
        let t1 = p.spawn_thread("w").unwrap();
        p.switch_thread(t1);
        p.push_frame("deep").unwrap();
        // Larger than the (smaller) thread stack, though it would fit the
        // main stack: the per-thread base must be the limit.
        const { assert!(layout::THREAD_STACK_SIZE < layout::STACK_SIZE) };
        let err = p.stack_alloc(layout::THREAD_STACK_SIZE + 1).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
        // Guard gap below the stack is unmapped.
        let base = layout::thread_stack_top(1).unwrap().sub(layout::THREAD_STACK_SIZE);
        assert!(p.mem.region_at(base.sub(1)).is_none());
    }

    #[test]
    fn spawn_thread_exhausts_cleanly() {
        let mut p = Proc::new();
        let mut spawned = 0u32;
        loop {
            match p.spawn_thread("w") {
                Ok(_) => spawned += 1,
                Err(f) => {
                    assert!(matches!(f, Fault::Abort { .. }));
                    break;
                }
            }
            assert!(spawned < 10_000, "floor never reached");
        }
        assert!(spawned >= 64, "area fits a useful number of threads, got {spawned}");
    }

    #[test]
    fn u32_ptr_accessors() {
        let mut p = Proc::new();
        let a = p.alloc_data_zeroed(16);
        p.write_u32(a, 0xfeed).unwrap();
        assert_eq!(p.read_u32(a).unwrap(), 0xfeed);
        p.write_ptr(a.add(8), VirtAddr::new(0x42)).unwrap();
        assert_eq!(p.read_ptr(a.add(8)).unwrap(), VirtAddr::new(0x42));
    }
}
