//! Property tests for the simulated address space: access checking is
//! exact (no byte leaks across protection boundaries), round-trips hold,
//! and extents agree with the mapping.

use proptest::prelude::*;

use simproc::{Access, AddressSpace, Fault, Proc, Prot, VirtAddr};

/// A deliberately naive reference model of the address space: an unsorted
/// region list queried by linear scan. This is the pre-index semantics the
/// binary-search + MRU-cache implementation must reproduce exactly.
#[derive(Default)]
struct LinearModel {
    /// `(base, len, prot)`, in insertion order.
    regions: Vec<(u64, u64, Prot)>,
}

impl LinearModel {
    fn region_at(&self, addr: u64) -> Option<usize> {
        self.regions.iter().position(|&(b, l, _)| addr >= b && addr - b < l)
    }

    fn map(&mut self, base: u64, len: u64, prot: Prot) -> bool {
        if len == 0 || base.checked_add(len).is_none() {
            return false;
        }
        if self.regions.iter().any(|&(b, l, _)| base < b + l && base + len > b) {
            return false;
        }
        self.regions.push((base, len, prot));
        true
    }

    fn unmap(&mut self, base: u64) -> bool {
        match self.regions.iter().position(|&(b, _, _)| b == base) {
            Some(i) => {
                self.regions.remove(i);
                true
            }
            None => false,
        }
    }

    fn protect(&mut self, addr: u64, prot: Prot) -> bool {
        match self.region_at(addr) {
            Some(i) => {
                self.regions[i].2 = prot;
                true
            }
            None => false,
        }
    }

    fn extent(&self, addr: u64, access: Access) -> u64 {
        let mut cur = addr;
        let mut total = 0u64;
        while let Some(i) = self.region_at(cur) {
            let (b, l, p) = self.regions[i];
            if !p.allows(access) {
                break;
            }
            let span = b + l - cur;
            total += span;
            cur += span;
        }
        total
    }

    /// `Err(addr)` reports the first offending byte, like `Fault::Segv`.
    fn check(&self, addr: u64, len: u64, access: Access) -> Result<(), u64> {
        if len == 0 {
            return Ok(());
        }
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            match self.region_at(cur) {
                Some(i) if self.regions[i].2.allows(access) => {
                    let (b, l, _) = self.regions[i];
                    let span = (b + l - cur).min(remaining);
                    cur += span;
                    remaining -= span;
                }
                _ => return Err(cur),
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn write_read_roundtrip(
        offset in 0u64..0x800,
        data in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "r").unwrap();
        let addr = VirtAddr::new(0x1000 + offset);
        m.write_bytes(addr, &data).unwrap();
        prop_assert_eq!(m.read_bytes(addr, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn access_past_the_end_faults_at_the_exact_byte(
        len in 1u64..0x100,
        overshoot in 1u64..0x40,
    ) {
        let mut m = AddressSpace::new();
        let base = VirtAddr::new(0x1000);
        m.map(base, len, Prot::RW, "r").unwrap();
        // Reading exactly to the end succeeds...
        prop_assert!(m.read_bytes(base, len).is_ok());
        // ...one past faults, reporting the first unmapped address.
        let err = m.read_bytes(base, len + overshoot).unwrap_err();
        match err {
            Fault::Segv { addr, access: Access::Read, .. } => {
                prop_assert_eq!(addr, base.add(len));
            }
            other => prop_assert!(false, "unexpected fault {other:?}"),
        }
        // And the failed read must not have been partially visible as a
        // write: failed writes are all-or-nothing.
        let junk = vec![0xAA; (len + overshoot) as usize];
        let before = m.read_bytes(base, len).unwrap();
        prop_assert!(m.write_bytes(base, &junk).is_err());
        prop_assert_eq!(m.read_bytes(base, len).unwrap(), before);
    }

    #[test]
    fn extents_match_mapping(
        len_a in 1u64..0x100,
        gap in 0u64..2,
        len_b in 1u64..0x100,
        probe in 0u64..0x80,
    ) {
        let mut m = AddressSpace::new();
        let a = VirtAddr::new(0x1000);
        m.map(a, len_a, Prot::RW, "a").unwrap();
        let b = a.add(len_a + gap * 16);
        m.map(b, len_b, Prot::R, "b").unwrap();
        let addr = a.add(probe % len_a);
        let w = m.accessible_extent(addr, Access::Write);
        let r = m.accessible_extent(addr, Access::Read);
        prop_assert_eq!(w, len_a - (probe % len_a), "write stops at RW end");
        if gap == 0 {
            prop_assert_eq!(r, len_a + len_b - (probe % len_a), "read spans into RO");
        } else {
            prop_assert_eq!(r, len_a - (probe % len_a));
        }
    }

    #[test]
    fn overlapping_maps_rejected(
        base in 0x1000u64..0x2000,
        len in 1u64..0x1000,
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1800), 0x800, Prot::RW, "existing").unwrap();
        let r = m.map(VirtAddr::new(base), len, Prot::RW, "new");
        let overlaps = base < 0x2000 && base + len > 0x1800;
        prop_assert_eq!(r.is_err(), overlaps, "base={:#x} len={:#x}", base, len);
    }

    #[test]
    fn peek_poke_agree_with_checked_access(
        data in prop::collection::vec(any::<u8>(), 1..64),
        off in 0u64..0x100,
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x200, Prot::R, "ro").unwrap();
        let addr = VirtAddr::new(0x1000 + off % 0x100);
        // Checked write refused; poke succeeds; checked read sees it.
        prop_assert!(m.write_bytes(addr, &data).is_err());
        prop_assert!(m.poke_bytes(addr, &data));
        prop_assert_eq!(m.read_bytes(addr, data.len() as u64).unwrap(), data.clone());
        prop_assert_eq!(m.peek_bytes(addr, data.len() as u64).unwrap(), data);
        // Poking unmapped memory fails without partial effects.
        prop_assert!(!m.poke_bytes(VirtAddr::new(0x11f0), &[0u8; 64]));
    }

    #[test]
    fn fuel_accounting_is_monotonic(ops in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut p = Proc::new();
        let mut last = p.cycles();
        let a = p.alloc_data_zeroed(256);
        for (i, b) in ops.iter().enumerate() {
            p.write_u8(a.add(i as u64 % 256), *b).unwrap();
            prop_assert!(p.cycles() > last);
            last = p.cycles();
        }
    }

    /// Differential test for the tentpole index: random
    /// map/unmap/protect/access sequences must produce byte-identical
    /// Fault and extent answers from the indexed (binary search + MRU
    /// cache) address space and the linear-scan reference model above.
    /// Slot bases are 0x100 apart with lengths up to 0x300, so sequences
    /// exercise rejected overlaps, adjacency (extent coalescing across
    /// regions) and gaps.
    #[test]
    fn indexed_oracle_matches_linear_reference(
        ops in prop::collection::vec(
            (0u8..5, 0u8..12u8, 1u64..0x300, 0usize..4, 0usize..3, 0u64..0x1000),
            1..64,
        ),
    ) {
        const PROTS: [Prot; 4] = [Prot::NONE, Prot::R, Prot::RW, Prot::RX];
        const ACCESSES: [Access; 3] = [Access::Read, Access::Write, Access::Exec];
        let mut m = AddressSpace::new();
        let mut reference = LinearModel::default();
        for (kind, slot, len, prot, access, probe) in ops {
            let base = 0x1000 + u64::from(slot) * 0x100;
            let prot = PROTS[prot];
            let access = ACCESSES[access];
            let addr = 0x1000 + probe;
            match kind {
                0 => prop_assert_eq!(
                    m.map(VirtAddr::new(base), len, prot, "p").is_ok(),
                    reference.map(base, len, prot),
                    "map {:#x}+{:#x} diverged", base, len
                ),
                1 => prop_assert_eq!(m.unmap(VirtAddr::new(base)), reference.unmap(base)),
                2 => prop_assert_eq!(
                    m.protect(VirtAddr::new(addr), prot),
                    reference.protect(addr, prot)
                ),
                3 => prop_assert_eq!(
                    m.accessible_extent(VirtAddr::new(addr), access),
                    reference.extent(addr, access),
                    "extent at {:#x} diverged", addr
                ),
                _ => {
                    let got = m.check(VirtAddr::new(addr), len, access);
                    let want = reference.check(addr, len, access);
                    match (got, want) {
                        (Ok(()), Ok(())) => {}
                        (Err(Fault::Segv { addr: fa, access: aa, .. }), Err(ea)) => {
                            prop_assert_eq!(fa.get(), ea, "fault address diverged");
                            prop_assert_eq!(aa, access);
                        }
                        (g, w) => prop_assert!(
                            false,
                            "check at {:#x} len {:#x} diverged: {:?} vs {:?}",
                            addr, len, g, w
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn stack_frames_nest_and_unwind(depths in prop::collection::vec(1u64..64, 1..12)) {
        let mut p = Proc::new();
        let top = p.sp();
        for (i, d) in depths.iter().enumerate() {
            p.push_frame(&format!("f{i}")).unwrap();
            let buf = p.stack_alloc(*d).unwrap();
            p.write_bytes(buf, &vec![i as u8; *d as usize]).unwrap();
        }
        prop_assert_eq!(p.frame_depth(), depths.len());
        for _ in &depths {
            p.pop_frame().unwrap();
        }
        prop_assert_eq!(p.frame_depth(), 0);
        prop_assert_eq!(p.sp(), top, "stack pointer restored");
    }
}
