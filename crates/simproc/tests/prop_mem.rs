//! Property tests for the simulated address space: access checking is
//! exact (no byte leaks across protection boundaries), round-trips hold,
//! and extents agree with the mapping.

use proptest::prelude::*;

use simproc::{Access, AddressSpace, Fault, Proc, Prot, VirtAddr};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn write_read_roundtrip(
        offset in 0u64..0x800,
        data in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x1000, Prot::RW, "r").unwrap();
        let addr = VirtAddr::new(0x1000 + offset);
        m.write_bytes(addr, &data).unwrap();
        prop_assert_eq!(m.read_bytes(addr, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn access_past_the_end_faults_at_the_exact_byte(
        len in 1u64..0x100,
        overshoot in 1u64..0x40,
    ) {
        let mut m = AddressSpace::new();
        let base = VirtAddr::new(0x1000);
        m.map(base, len, Prot::RW, "r").unwrap();
        // Reading exactly to the end succeeds...
        prop_assert!(m.read_bytes(base, len).is_ok());
        // ...one past faults, reporting the first unmapped address.
        let err = m.read_bytes(base, len + overshoot).unwrap_err();
        match err {
            Fault::Segv { addr, access: Access::Read, .. } => {
                prop_assert_eq!(addr, base.add(len));
            }
            other => prop_assert!(false, "unexpected fault {other:?}"),
        }
        // And the failed read must not have been partially visible as a
        // write: failed writes are all-or-nothing.
        let junk = vec![0xAA; (len + overshoot) as usize];
        let before = m.read_bytes(base, len).unwrap();
        prop_assert!(m.write_bytes(base, &junk).is_err());
        prop_assert_eq!(m.read_bytes(base, len).unwrap(), before);
    }

    #[test]
    fn extents_match_mapping(
        len_a in 1u64..0x100,
        gap in 0u64..2,
        len_b in 1u64..0x100,
        probe in 0u64..0x80,
    ) {
        let mut m = AddressSpace::new();
        let a = VirtAddr::new(0x1000);
        m.map(a, len_a, Prot::RW, "a").unwrap();
        let b = a.add(len_a + gap * 16);
        m.map(b, len_b, Prot::R, "b").unwrap();
        let addr = a.add(probe % len_a);
        let w = m.accessible_extent(addr, Access::Write);
        let r = m.accessible_extent(addr, Access::Read);
        prop_assert_eq!(w, len_a - (probe % len_a), "write stops at RW end");
        if gap == 0 {
            prop_assert_eq!(r, len_a + len_b - (probe % len_a), "read spans into RO");
        } else {
            prop_assert_eq!(r, len_a - (probe % len_a));
        }
    }

    #[test]
    fn overlapping_maps_rejected(
        base in 0x1000u64..0x2000,
        len in 1u64..0x1000,
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1800), 0x800, Prot::RW, "existing").unwrap();
        let r = m.map(VirtAddr::new(base), len, Prot::RW, "new");
        let overlaps = base < 0x2000 && base + len > 0x1800;
        prop_assert_eq!(r.is_err(), overlaps, "base={:#x} len={:#x}", base, len);
    }

    #[test]
    fn peek_poke_agree_with_checked_access(
        data in prop::collection::vec(any::<u8>(), 1..64),
        off in 0u64..0x100,
    ) {
        let mut m = AddressSpace::new();
        m.map(VirtAddr::new(0x1000), 0x200, Prot::R, "ro").unwrap();
        let addr = VirtAddr::new(0x1000 + off % 0x100);
        // Checked write refused; poke succeeds; checked read sees it.
        prop_assert!(m.write_bytes(addr, &data).is_err());
        prop_assert!(m.poke_bytes(addr, &data));
        prop_assert_eq!(m.read_bytes(addr, data.len() as u64).unwrap(), data.clone());
        prop_assert_eq!(m.peek_bytes(addr, data.len() as u64).unwrap(), data);
        // Poking unmapped memory fails without partial effects.
        prop_assert!(!m.poke_bytes(VirtAddr::new(0x11f0), &[0u8; 64]));
    }

    #[test]
    fn fuel_accounting_is_monotonic(ops in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut p = Proc::new();
        let mut last = p.cycles();
        let a = p.alloc_data_zeroed(256);
        for (i, b) in ops.iter().enumerate() {
            p.write_u8(a.add(i as u64 % 256), *b).unwrap();
            prop_assert!(p.cycles() > last);
            last = p.cycles();
        }
    }

    #[test]
    fn stack_frames_nest_and_unwind(depths in prop::collection::vec(1u64..64, 1..12)) {
        let mut p = Proc::new();
        let top = p.sp();
        for (i, d) in depths.iter().enumerate() {
            p.push_frame(&format!("f{i}")).unwrap();
            let buf = p.stack_alloc(*d).unwrap();
            p.write_bytes(buf, &vec![i as u8; *d as usize]).unwrap();
        }
        prop_assert_eq!(p.frame_depth(), depths.len());
        for _ in &depths {
            p.pop_frame().unwrap();
        }
        prop_assert_eq!(p.frame_depth(), 0);
        prop_assert_eq!(p.sp(), top, "stack pointer restored");
    }
}
