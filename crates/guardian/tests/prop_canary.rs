//! Property tests for canary soundness and completeness:
//!
//! * **no false positives** — any sequence of in-bounds writes never
//!   trips a canary;
//! * **no false negatives** — any write that crosses the end of a
//!   protected allocation by at least one byte into the guard word is
//!   detected on the next check.

use std::sync::Arc;

use proptest::prelude::*;

use guardian::{CanaryRegistry, GuardOracle, CANARY_LEN};
use simlibc::heap;
use simlibc::testutil::libc_proc;
use simproc::{ExtentOracle, Proc, VirtAddr};

fn guarded(p: &mut Proc, reg: &CanaryRegistry, n: u64) -> VirtAddr {
    let ptr = heap::malloc(p, n + CANARY_LEN).unwrap();
    reg.protect(p, ptr, n).unwrap();
    ptr
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn in_bounds_writes_never_false_positive(
        sizes in prop::collection::vec(1u64..200, 1..12),
        writes in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 0..40),
    ) {
        let mut p = libc_proc();
        let reg = Arc::new(CanaryRegistry::new());
        let allocs: Vec<(VirtAddr, u64)> = sizes
            .iter()
            .map(|n| (guarded(&mut p, &reg, *n), *n))
            .collect();
        for (which, offset, byte) in writes {
            let (ptr, n) = allocs[which as usize % allocs.len()];
            let off = offset as u64 % n;
            // An in-bounds write of arbitrary length that stays inside.
            let len = ((byte as u64) % (n - off)).max(1);
            p.mem
                .write_bytes(ptr.add(off), &vec![byte; len as usize])
                .unwrap();
        }
        prop_assert!(reg.sweep(&p).is_ok(), "no in-bounds write may trip a canary");
    }

    #[test]
    fn any_overflow_into_guard_is_detected(
        n in 1u64..200,
        overflow_off in 0u64..8,
        byte in any::<u8>(),
    ) {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let ptr = guarded(&mut p, &reg, n);
        // Corrupt one byte inside the guard word.
        let target = ptr.add(n + overflow_off);
        let original = p.mem.read_u8(target).unwrap();
        prop_assume!(original != byte); // must actually change it
        p.mem.write_u8(target, byte).unwrap();
        let v = reg.verify(&p, ptr);
        prop_assert!(v.is_err(), "overflow byte at +{overflow_off} must be caught");
        prop_assert_eq!(v.unwrap_err().alloc.payload, ptr);
    }

    #[test]
    fn oracle_extent_equals_requested_size(
        n in 1u64..200,
        probe in 0u64..200,
    ) {
        let mut p = libc_proc();
        let reg = Arc::new(CanaryRegistry::new());
        let ptr = guarded(&mut p, &reg, n);
        let oracle = GuardOracle::new(Arc::clone(&reg));
        let off = probe % n;
        prop_assert_eq!(oracle.writable_extent(&p, ptr.add(off)), Some(n - off));
        // The guard word itself is never writable through the oracle.
        prop_assert_eq!(oracle.writable_extent(&p, ptr.add(n)), None);
    }

    #[test]
    fn release_forgets_and_protect_again_works(
        n in 1u64..100,
        rounds in 1usize..6,
    ) {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        for _ in 0..rounds {
            let ptr = guarded(&mut p, &reg, n);
            prop_assert!(reg.verify(&p, ptr).unwrap().is_some());
            reg.release(ptr);
            prop_assert!(reg.verify(&p, ptr).unwrap().is_none());
            heap::free(&mut p, ptr).unwrap();
        }
        prop_assert!(reg.is_empty());
    }
}
