//! The guard oracle: the most precise extent answer available, layered
//! from (1) the canary registry's requested sizes, (2) heap chunk bounds,
//! (3) stack-frame bounds and page mappings.

use std::sync::Arc;

use simlibc::heap::HeapOracle;
use simproc::{ExtentOracle, Proc, VirtAddr};

use crate::registry::CanaryRegistry;

/// Extent oracle combining the canary registry with the allocation-aware
/// heap oracle. This is what security and robustness wrappers consult.
#[derive(Debug, Clone)]
pub struct GuardOracle {
    registry: Arc<CanaryRegistry>,
}

impl GuardOracle {
    /// Builds an oracle over a shared registry.
    pub fn new(registry: Arc<CanaryRegistry>) -> Self {
        GuardOracle { registry }
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<CanaryRegistry> {
        &self.registry
    }

    /// The precise object containing `addr`, as `(base, size)`:
    /// layered like the extent queries — a protected allocation's
    /// payload and requested size first, then the live heap chunk's
    /// payload bounds, then whatever contiguous writable region remains
    /// (stack slot, data segment), reported from `addr` itself. `None`
    /// when `addr` points at nothing writable at all (wild pointers,
    /// free chunks, chunk headers, the wilderness). This is what
    /// attributes an obliviously suppressed write to one object.
    pub fn object_region(&self, proc: &Proc, addr: VirtAddr) -> Option<(VirtAddr, u64)> {
        if let Some(alloc) = self.registry.region_of(addr) {
            return Some((alloc.payload, alloc.requested));
        }
        if self.registry.contains(addr) {
            return None; // guard word: never a legal write target
        }
        if simlibc::heap::in_heap(proc, addr) {
            let chunks = simlibc::heap::walk(proc).ok()?;
            let c = chunks.iter().find(|c| addr >= c.base && addr < c.base.add(c.size))?;
            let payload = c.base.add(simlibc::heap::HDR);
            if c.free || c.is_top || addr < payload {
                return None;
            }
            return Some((payload, c.size - simlibc::heap::HDR));
        }
        let ext = HeapOracle::new().writable_extent(proc, addr)?;
        Some((addr, ext))
    }

    fn refined(&self, proc: &Proc, addr: VirtAddr) -> Option<Option<u64>> {
        // Registry first: requested size beats chunk size (the chunk
        // includes the guard word and rounding slack).
        if let Some(ext) = self.registry.extent_within(addr) {
            return Some(Some(ext));
        }
        if self.registry.contains(addr) {
            // Inside a protected allocation's guard word: not writable.
            return Some(None);
        }
        let _ = proc;
        None
    }
}

impl ExtentOracle for GuardOracle {
    fn writable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        match self.refined(proc, addr) {
            Some(ext) => ext,
            None => HeapOracle::new().writable_extent(proc, addr),
        }
    }

    fn readable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        match self.refined(proc, addr) {
            Some(ext) => ext,
            None => HeapOracle::new().readable_extent(proc, addr),
        }
    }

    fn extent_right(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        // `object_region` already names the precise containing object
        // (requested size for protected allocations — the canary is never
        // writable space — then chunk payload, then region/stack rules),
        // so the distance from `addr` to the object's right edge is the
        // exact bound a substituted copy may fill.
        let (base, size) = self.object_region(proc, addr)?;
        let end = base.add(size);
        if addr >= end {
            return None;
        }
        Some(end.diff(addr))
    }

    fn validation_epoch(&self) -> u64 {
        // The registry is the only state this oracle consults outside the
        // process image (the heap oracle walks in-image chunk headers,
        // which the address-space epoch already covers).
        self.registry.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CANARY_LEN;
    use simlibc::heap;
    use simlibc::testutil::libc_proc;

    #[test]
    fn registry_extent_beats_chunk_extent() {
        let mut p = libc_proc();
        let registry = Arc::new(CanaryRegistry::new());
        let oracle = GuardOracle::new(Arc::clone(&registry));
        // Unprotected allocation: chunk-bounded extent.
        let plain = heap::malloc(&mut p, 20).unwrap();
        let chunk_ext = oracle.writable_extent(&p, plain).unwrap();
        assert!(chunk_ext >= 20);
        // Protected allocation: request-bounded extent (tighter).
        let guarded = heap::malloc(&mut p, 20 + CANARY_LEN).unwrap();
        registry.protect(&mut p, guarded, 20).unwrap();
        assert_eq!(oracle.writable_extent(&p, guarded), Some(20));
        assert_eq!(oracle.readable_extent(&p, guarded), Some(20));
        // The guard word itself is off limits.
        assert_eq!(oracle.writable_extent(&p, guarded.add(20)), None);
    }

    #[test]
    fn object_region_names_a_precise_object() {
        let mut p = libc_proc();
        let registry = Arc::new(CanaryRegistry::new());
        let oracle = GuardOracle::new(Arc::clone(&registry));
        // Protected allocation: base and requested size, even from an
        // interior pointer.
        let guarded = heap::malloc(&mut p, 20 + CANARY_LEN).unwrap();
        registry.protect(&mut p, guarded, 20).unwrap();
        assert_eq!(oracle.object_region(&p, guarded.add(5)), Some((guarded, 20)));
        assert_eq!(oracle.object_region(&p, guarded.add(20)), None, "guard word");
        // Plain heap chunk: payload bounds from the chunk walk.
        let plain = heap::malloc(&mut p, 24).unwrap();
        let (base, size) = oracle.object_region(&p, plain.add(3)).unwrap();
        assert_eq!(base, plain);
        assert!(size >= 24);
        // Freed chunk: no longer a legal object.
        heap::free(&mut p, plain).unwrap();
        assert_eq!(oracle.object_region(&p, plain), None);
        // Wild pointer: nothing.
        assert_eq!(oracle.object_region(&p, simproc::layout::WILD_ADDR), None);
    }

    #[test]
    fn extent_right_is_exact_at_object_edges() {
        let mut p = libc_proc();
        let registry = Arc::new(CanaryRegistry::new());
        let oracle = GuardOracle::new(Arc::clone(&registry));

        // Canary-guarded chunk: the extent must exclude the guard word —
        // 20 requested bytes, never the CANARY_LEN slack behind them.
        let guarded = heap::malloc(&mut p, 20 + CANARY_LEN).unwrap();
        registry.protect(&mut p, guarded, 20).unwrap();
        assert_eq!(oracle.extent_right(&p, guarded), Some(20));
        // Pointer at the last byte of the protected region: exactly 1.
        assert_eq!(oracle.extent_right(&p, guarded.add(19)), Some(1));
        // First canary byte: not an object at all.
        assert_eq!(oracle.extent_right(&p, guarded.add(20)), None);

        // Interior pointer into a plain heap chunk: distance from the
        // pointer to the payload's right edge, from the chunk walk.
        let plain = heap::malloc(&mut p, 24).unwrap();
        let (base, size) = oracle.object_region(&p, plain).unwrap();
        assert_eq!(base, plain);
        assert_eq!(oracle.extent_right(&p, plain.add(3)), Some(size - 3));
        // Last payload byte of the plain chunk: exactly 1.
        assert_eq!(oracle.extent_right(&p, plain.add(size - 1)), Some(1));
        // Freed chunk: no object, no extent.
        heap::free(&mut p, plain).unwrap();
        assert_eq!(oracle.extent_right(&p, plain), None);

        // The exact query never reports more than the writable extent.
        let d = p.alloc_data_zeroed(32);
        let right = oracle.extent_right(&p, d).unwrap();
        assert!(right >= 32);
        assert_eq!(Some(right), oracle.writable_extent(&p, d));
    }

    #[test]
    fn extent_right_stack_extents_across_push_pop_epochs() {
        let mut p = libc_proc();
        let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));

        p.push_frame("outer").unwrap();
        let outer_buf = p.stack_alloc(16).unwrap();
        let outer_slot = p.frame_containing(outer_buf).unwrap().ret_slot;
        assert_eq!(oracle.extent_right(&p, outer_buf), Some(outer_slot.diff(outer_buf)));

        // A nested frame clips its own locals at its own return slot and
        // leaves the outer buffer's answer unchanged.
        p.push_frame("inner").unwrap();
        let inner_buf = p.stack_alloc(8).unwrap();
        let inner_slot = p.frame_containing(inner_buf).unwrap().ret_slot;
        assert_eq!(oracle.extent_right(&p, inner_buf), Some(inner_slot.diff(inner_buf)));
        assert_eq!(oracle.extent_right(&p, outer_buf), Some(outer_slot.diff(outer_buf)));

        // Popping the inner frame bumps the address-space epoch (dead
        // locals must expire memoized extents) and removes the inner
        // frame's clipping rule.
        let epoch_before = p.mem.epoch();
        p.pop_frame().unwrap();
        assert!(p.mem.epoch() > epoch_before, "pop must expire memoized extents");
        assert!(p.frame_containing(inner_buf).is_none());
        assert_eq!(oracle.extent_right(&p, outer_buf), Some(outer_slot.diff(outer_buf)));
    }

    #[test]
    fn falls_back_outside_the_registry() {
        let mut p = libc_proc();
        let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
        let d = p.alloc_data_zeroed(32);
        assert!(oracle.writable_extent(&p, d).unwrap() >= 32);
        assert_eq!(oracle.writable_extent(&p, simproc::layout::WILD_ADDR), None);
        // Stack rule survives the layering.
        p.push_frame("f").unwrap();
        let buf = p.stack_alloc(16).unwrap();
        let ext = oracle.writable_extent(&p, buf).unwrap();
        let frame = p.frame_containing(buf).unwrap();
        assert_eq!(ext, frame.ret_slot.diff(buf));
    }
}
