//! Extent-bounded repair primitives for the healing wrapper.
//!
//! The guardian already knows how far a write through a pointer may
//! safely reach ([`GuardOracle`]); healing reuses that knowledge in the
//! other direction — instead of merely *rejecting* an argument that would
//! overrun its extent, these helpers *shrink the operation* to fit it:
//! NUL-terminate an unterminated buffer at its last writable byte, or cut
//! a source string down so the copy lands inside the destination.

use simproc::{ExtentOracle, Proc, VirtAddr};

use crate::oracle::GuardOracle;

/// Cap on how deep into a buffer a repair will place a terminator; keeps
/// the repaired string measurable by the wrapper's own C-string scan
/// (which gives up after `typelattice::CSTR_SCAN_CAP` bytes).
pub const HEAL_TERMINATE_CAP: u64 = 1 << 20;

/// NUL-terminates the buffer at `addr` at the last byte of its writable
/// extent (capped at [`HEAL_TERMINATE_CAP`]), preserving as much of the
/// existing contents as possible. Returns the offset of the written NUL,
/// or `None` when the buffer has no writable extent at all (nothing can
/// be repaired in place).
pub fn nul_terminate_in_extent(
    proc: &mut Proc,
    oracle: &GuardOracle,
    addr: VirtAddr,
) -> Option<u64> {
    if addr.is_null() {
        return None;
    }
    let extent = oracle.writable_extent(proc, addr)?.min(HEAL_TERMINATE_CAP);
    if extent == 0 {
        return None;
    }
    let at = extent - 1;
    if proc.mem.write_bytes(addr.add(at), &[0]).is_ok() {
        Some(at)
    } else {
        None
    }
}

/// Truncates the C string at `addr` to `new_len` bytes by writing a NUL
/// terminator at `addr + new_len`. Returns `false` when the byte is not
/// writable (read-only source — the caller must copy instead).
pub fn truncate_cstr(proc: &mut Proc, addr: VirtAddr, new_len: u64) -> bool {
    if addr.is_null() {
        return false;
    }
    proc.mem.write_bytes(addr.add(new_len), &[0]).is_ok()
}

/// The number of elements of size `elem` that fit in `extent` bytes — the
/// clamped count for `memcpy`/`fread`-shaped repairs. An `elem` of zero
/// degenerates to the extent itself.
pub fn clamp_count(extent: u64, elem: u64) -> u64 {
    extent.checked_div(elem).unwrap_or(extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CanaryRegistry;
    use simlibc::testutil::libc_proc;
    use std::sync::Arc;

    fn oracle() -> GuardOracle {
        GuardOracle::new(Arc::new(CanaryRegistry::new()))
    }

    #[test]
    fn terminates_at_last_writable_byte() {
        let mut p = libc_proc();
        let o = oracle();
        let buf = simlibc::heap::malloc(&mut p, 16).unwrap();
        let extent = o.writable_extent(&p, buf).unwrap();
        p.mem.write_bytes(buf, &vec![b'x'; extent as usize]).unwrap();
        let at = nul_terminate_in_extent(&mut p, &o, buf).unwrap();
        assert_eq!(at, extent - 1);
        assert_eq!(p.mem.read_u8(buf.add(at)).unwrap(), 0);
        // Everything before the terminator survives.
        assert_eq!(p.mem.read_u8(buf).unwrap(), b'x');
    }

    #[test]
    fn null_and_unwritable_are_not_repairable_in_place() {
        let mut p = libc_proc();
        let o = oracle();
        assert_eq!(nul_terminate_in_extent(&mut p, &o, VirtAddr::NULL), None);
        let ro = p.alloc_cstr_literal("readonly");
        assert_eq!(nul_terminate_in_extent(&mut p, &o, ro), None);
        assert!(!truncate_cstr(&mut p, ro, 2), "read-only string cannot be cut");
    }

    #[test]
    fn truncation_shortens_a_live_string() {
        let mut p = libc_proc();
        let long = p.alloc_cstr("abcdefgh");
        assert!(truncate_cstr(&mut p, long, 3));
        assert_eq!(p.read_cstr_lossy(long), "abc");
    }

    #[test]
    fn clamped_counts_fit_the_extent() {
        assert_eq!(clamp_count(64, 8), 8);
        assert_eq!(clamp_count(63, 8), 7);
        assert_eq!(clamp_count(64, 0), 64);
        assert_eq!(clamp_count(0, 8), 0);
    }
}
