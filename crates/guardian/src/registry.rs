//! The canary registry: heap allocations protected by the security
//! wrapper (paper §3.4 and the SRDS'01 fault-containment-wrapper paper it
//! demonstrates).
//!
//! The security wrapper's `malloc` hook over-allocates by one guard word,
//! writes a per-address canary after the user's bytes, and records the
//! allocation here. Its `free`/`realloc` hooks — and periodic sweeps —
//! verify the canary *before* the allocator's `unlink` ever touches
//! attacker-controlled metadata.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use simproc::{Fault, Proc, VirtAddr};

/// Guard word length appended to each protected allocation.
pub const CANARY_LEN: u64 = 8;

/// Seed mixed into each canary so one leaked canary does not reveal all.
pub const CANARY_SEED: u64 = 0x0048_454c_4552_5321; // "HEALERS!"

/// The canary value guarding the allocation at `payload`.
pub fn canary_value(payload: VirtAddr) -> u64 {
    // A cheap diffusion of the address; not cryptographic, like the era's.
    let x = payload.get().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ CANARY_SEED;
    x | 1 // never zero
}

/// One protected allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardedAlloc {
    /// Payload address handed to the application.
    pub payload: VirtAddr,
    /// Size the application requested (the canary sits right after).
    pub requested: u64,
}

impl GuardedAlloc {
    /// Address of the guard word.
    pub fn canary_addr(&self) -> VirtAddr {
        self.payload.add(self.requested)
    }
}

/// The two views of the live set, updated together under one lock:
/// a hash map for the per-call exact lookups (`verify`/`release` — the
/// paper's O(1) buffer-length table) and an ordered map for the range
/// queries the extent oracle needs (`extent_within`/`contains`).
#[derive(Debug, Default)]
struct LiveSet {
    by_payload: HashMap<u64, GuardedAlloc>,
    sorted: BTreeMap<u64, GuardedAlloc>,
}

impl LiveSet {
    /// Inserts `alloc` into both views as one step. Mutations go through
    /// here (and [`LiveSet::remove`]) only, so no code path can leave the
    /// views disagreeing at lock release.
    fn insert(&mut self, alloc: GuardedAlloc) {
        self.by_payload.insert(alloc.payload.get(), alloc);
        self.sorted.insert(alloc.payload.get(), alloc);
        debug_assert!(self.views_agree(), "live-set views diverged after insert");
    }

    /// Removes `payload` from both views as one step.
    fn remove(&mut self, payload: u64) -> Option<GuardedAlloc> {
        let a = self.by_payload.remove(&payload);
        let b = self.sorted.remove(&payload);
        debug_assert_eq!(
            a.is_some(),
            b.is_some(),
            "views disagreed about {payload:#x} before remove"
        );
        debug_assert!(self.views_agree(), "live-set views diverged after remove");
        a
    }

    /// The invariant every mutation re-establishes before the lock drops:
    /// both views hold exactly the same payload set.
    fn views_agree(&self) -> bool {
        self.by_payload.len() == self.sorted.len()
            && self.sorted.keys().all(|k| self.by_payload.contains_key(k))
    }
}

/// Registry of live protected allocations. Shared between the wrapper
/// hooks via `Arc`.
#[derive(Debug, Default)]
pub struct CanaryRegistry {
    live: Mutex<LiveSet>,
    /// Monotonic epoch, bumped whenever the live set changes
    /// (`protect`/`release`). Extent answers derived from the registry are
    /// reproducible while the epoch holds still, which is what lets
    /// wrappers memoize pointer validations (`Proc::validation_hit`):
    /// `release` removes an allocation without touching process memory, so
    /// the address-space epoch alone cannot expire those entries.
    epoch: AtomicU64,
}

/// A detected integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The damaged allocation.
    pub alloc: GuardedAlloc,
    /// The canary value found in memory.
    pub found: u64,
}

impl Violation {
    /// The fault the security wrapper raises for this violation.
    pub fn fault(&self) -> Fault {
        Fault::security(format!(
            "heap canary clobbered at {} (allocation of {} bytes at {})",
            self.alloc.canary_addr(),
            self.alloc.requested,
            self.alloc.payload
        ))
    }
}

impl CanaryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CanaryRegistry::default()
    }

    /// Writes the canary for a fresh allocation and records it.
    ///
    /// # Errors
    ///
    /// Propagates the fault if the guard word cannot be written (the
    /// underlying allocation was bogus).
    pub fn protect(
        &self,
        proc: &mut Proc,
        payload: VirtAddr,
        requested: u64,
    ) -> Result<(), Fault> {
        let alloc = GuardedAlloc { payload, requested };
        proc.mem.write_u64(alloc.canary_addr(), canary_value(payload))?;
        let mut live = self.live.lock();
        // Bump strictly *before* the views change (`Release`, pairing with
        // the `Acquire` load in [`CanaryRegistry::epoch`]): the wrapper
        // fast path reads the epoch without taking this lock, and a
        // reader that still observes the old value must be able to
        // conclude the mutation has not been published to it. A memoized
        // verdict can then at worst go stale-but-safe (the check re-runs
        // needlessly), never fresh-but-wrong (a needed check skipped).
        self.epoch.fetch_add(1, Ordering::Release);
        live.insert(alloc);
        Ok(())
    }

    /// Verifies the canary of the allocation at `payload`, if it is
    /// protected. `Ok(None)` means "not ours" (e.g. allocated before the
    /// wrapper was preloaded).
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] if the guard word was overwritten.
    pub fn verify(
        &self,
        proc: &Proc,
        payload: VirtAddr,
    ) -> Result<Option<GuardedAlloc>, Violation> {
        let guard = self.live.lock();
        let Some(alloc) = guard.by_payload.get(&payload.get()).copied() else {
            return Ok(None);
        };
        drop(guard);
        check_canary(proc, alloc)
    }

    /// Removes an allocation from protection (it is being freed).
    pub fn release(&self, payload: VirtAddr) -> Option<GuardedAlloc> {
        let mut live = self.live.lock();
        if !live.by_payload.contains_key(&payload.get()) {
            return None;
        }
        // Bump-before-mutate, same reasoning as in `protect`.
        self.epoch.fetch_add(1, Ordering::Release);
        live.remove(payload.get())
    }

    /// The registry's validation epoch: advances on every `protect` and
    /// every successful `release`, strictly before the live set changes
    /// (`Acquire`, pairing with the `Release` bumps).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the exact-lookup and range-query views currently hold the
    /// same payload set — the invariant every mutation re-establishes
    /// before its lock releases. Exposed for concurrency stress tests;
    /// debug builds also assert it after every insert/remove.
    pub fn views_agree(&self) -> bool {
        self.live.lock().views_agree()
    }

    /// Sweeps every live canary — the wrapper runs this at process exit
    /// and tests run it after suspect operations.
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn sweep(&self, proc: &Proc) -> Result<(), Violation> {
        let live = self.live.lock();
        // Address order, so "first violation" stays deterministic.
        for alloc in live.sorted.values() {
            check_canary(proc, *alloc)?;
        }
        Ok(())
    }

    /// The requested size of a protected allocation, if `addr` points
    /// inside one — the registry's contribution to the extent oracle.
    pub fn extent_within(&self, addr: VirtAddr) -> Option<u64> {
        let guard = self.live.lock();
        // The allocation with the greatest payload <= addr.
        let (_, alloc) = guard.sorted.range(..=addr.get()).next_back()?;
        let end = alloc.payload.add(alloc.requested);
        if addr >= alloc.payload && addr < end {
            Some(end.diff(addr))
        } else {
            None
        }
    }

    /// The protected allocation whose payload contains `addr`, if any —
    /// the precise-object answer the oblivious shadow-write ledger needs
    /// to attribute a suppressed write to a base address and size.
    pub fn region_of(&self, addr: VirtAddr) -> Option<GuardedAlloc> {
        let guard = self.live.lock();
        let (_, alloc) = guard.sorted.range(..=addr.get()).next_back()?;
        if addr >= alloc.payload && addr < alloc.payload.add(alloc.requested) {
            Some(*alloc)
        } else {
            None
        }
    }

    /// Whether `addr` points inside any protected allocation (payload or
    /// guard word).
    pub fn contains(&self, addr: VirtAddr) -> bool {
        let guard = self.live.lock();
        match guard.sorted.range(..=addr.get()).next_back() {
            Some((_, alloc)) => {
                addr >= alloc.payload && addr < alloc.canary_addr().add(CANARY_LEN)
            }
            None => false,
        }
    }

    /// Number of live protected allocations.
    pub fn len(&self) -> usize {
        self.live.lock().by_payload.len()
    }

    /// `true` when nothing is protected.
    pub fn is_empty(&self) -> bool {
        self.live.lock().by_payload.is_empty()
    }
}

/// Compares the guard word in memory against the expected canary.
/// Alloc-free (`peek_u64`): this runs on every wrapped `free`/`realloc`.
fn check_canary(
    proc: &Proc,
    alloc: GuardedAlloc,
) -> Result<Option<GuardedAlloc>, Violation> {
    let found = proc.mem.peek_u64(alloc.canary_addr()).unwrap_or(0);
    if found == canary_value(alloc.payload) {
        Ok(Some(alloc))
    } else {
        Err(Violation { alloc, found })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::heap;
    use simlibc::testutil::libc_proc;

    fn guarded_alloc(proc: &mut Proc, reg: &CanaryRegistry, n: u64) -> VirtAddr {
        let ptr = heap::malloc(proc, n + CANARY_LEN).unwrap();
        reg.protect(proc, ptr, n).unwrap();
        ptr
    }

    #[test]
    fn protect_verify_release_roundtrip() {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let ptr = guarded_alloc(&mut p, &reg, 32);
        assert_eq!(reg.len(), 1);
        assert!(reg.verify(&p, ptr).unwrap().is_some());
        assert!(reg.sweep(&p).is_ok());
        let released = reg.release(ptr).unwrap();
        assert_eq!(released.requested, 32);
        assert!(reg.is_empty());
        // Unknown pointers are "not ours".
        assert!(reg.verify(&p, ptr).unwrap().is_none());
    }

    #[test]
    fn one_byte_overflow_is_detected() {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let ptr = guarded_alloc(&mut p, &reg, 16);
        // Write exactly within bounds: fine.
        p.mem.write_bytes(ptr, &[0xAA; 16]).unwrap();
        assert!(reg.verify(&p, ptr).is_ok());
        // One byte past the end: caught.
        p.mem.write_u8(ptr.add(16), 0x41).unwrap();
        let v = reg.verify(&p, ptr).unwrap_err();
        assert_eq!(v.alloc.payload, ptr);
        assert!(v.fault().to_string().contains("canary"));
    }

    #[test]
    fn sweep_finds_any_violation() {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let a = guarded_alloc(&mut p, &reg, 8);
        let b = guarded_alloc(&mut p, &reg, 8);
        p.mem.write_u8(b.add(8), 1).unwrap();
        let v = reg.sweep(&p).unwrap_err();
        assert_eq!(v.alloc.payload, b);
        let _ = a;
    }

    #[test]
    fn extent_within_is_request_sized() {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let ptr = guarded_alloc(&mut p, &reg, 20);
        assert_eq!(reg.extent_within(ptr), Some(20));
        assert_eq!(reg.extent_within(ptr.add(5)), Some(15));
        assert_eq!(reg.extent_within(ptr.add(20)), None, "guard word is not writable");
        assert_eq!(reg.extent_within(ptr.sub(1)), None);
        assert!(
            reg.contains(ptr.add(20)),
            "guard word still 'inside' for ownership checks"
        );
    }

    #[test]
    fn epoch_tracks_live_set_mutations_only() {
        let mut p = libc_proc();
        let reg = CanaryRegistry::new();
        let e0 = reg.epoch();
        let ptr = guarded_alloc(&mut p, &reg, 16);
        let e1 = reg.epoch();
        assert!(e1 > e0, "protect must bump the epoch");
        // Queries leave it alone.
        let _ = reg.verify(&p, ptr);
        let _ = reg.extent_within(ptr);
        let _ = reg.contains(ptr);
        let _ = reg.sweep(&p);
        assert_eq!(reg.epoch(), e1);
        // Release of something we own bumps; of a stranger, it does not.
        assert!(reg.release(ptr).is_some());
        let e2 = reg.epoch();
        assert!(e2 > e1, "release must bump the epoch");
        assert!(reg.release(ptr).is_none());
        assert_eq!(reg.epoch(), e2, "failed release must not bump");
    }

    #[test]
    fn concurrent_register_verify_release_keeps_views_agreeing() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const OPS: u64 = 400;
        let reg = Arc::new(CanaryRegistry::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    // Each thread registers addresses from its own arena;
                    // the *registry* (views, lock, epoch) is the shared
                    // state under attack.
                    let mut p = Proc::new();
                    let base = VirtAddr::new(0x5000_0000 + t * 0x10_0000);
                    p.mem.map(base, 0x1_0000, simproc::Prot::RW, "arena").unwrap();
                    let mut last_epoch = reg.epoch();
                    for i in 0..OPS {
                        let ptr = base.add((i % 64) * 64);
                        reg.protect(&mut p, ptr, 24).unwrap();
                        assert!(reg.verify(&p, ptr).unwrap().is_some());
                        assert!(reg.views_agree(), "views diverged under contention");
                        let e = reg.epoch();
                        assert!(e >= last_epoch, "epoch went backwards");
                        last_epoch = e;
                        assert!(reg.release(ptr).is_some());
                        assert!(reg.verify(&p, ptr).unwrap().is_none());
                    }
                });
            }
        });
        assert!(reg.is_empty());
        assert!(reg.views_agree());
        // Every protect and every successful release bumped exactly once.
        assert_eq!(reg.epoch(), THREADS * OPS * 2);
    }

    #[test]
    fn canary_values_differ_by_address_and_are_nonzero() {
        let a = canary_value(VirtAddr::new(0x1000));
        let b = canary_value(VirtAddr::new(0x1010));
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_eq!(a, canary_value(VirtAddr::new(0x1000)), "deterministic");
    }
}
