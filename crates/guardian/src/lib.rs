//! # guardian — heap-smashing detection for the HEALERS security wrapper
//!
//! The paper's §3.4 demo: "our security wrapper can detect such buffer
//! overflows and terminate the attacker's program". The mechanism (from
//! Fetzer & Xiao's SRDS'01 fault-containment-wrappers paper) is a canary
//! word appended to every wrapped allocation plus an allocation registry:
//!
//! * [`CanaryRegistry`] — live protected allocations, canary writing and
//!   verification, whole-heap sweeps;
//! * [`GuardOracle`] — the extent oracle wrappers use to bound string and
//!   memory writes: registry sizes first, then heap chunk bounds, then
//!   stack-frame bounds (libsafe's rule) and page mappings.
//!
//! ```
//! use std::sync::Arc;
//! use guardian::{CanaryRegistry, CANARY_LEN};
//! use simlibc::{heap, testutil::libc_proc};
//!
//! let mut p = libc_proc();
//! let registry = Arc::new(CanaryRegistry::new());
//! let ptr = heap::malloc(&mut p, 16 + CANARY_LEN).unwrap();
//! registry.protect(&mut p, ptr, 16).unwrap();
//!
//! // A one-byte overflow is caught on the next check:
//! p.mem.write_u8(ptr.add(16), 0x41).unwrap();
//! assert!(registry.sweep(&p).is_err());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod heal;
mod oracle;
mod registry;

pub use heal::{clamp_count, nul_terminate_in_extent, truncate_cstr, HEAL_TERMINATE_CAP};
pub use oracle::GuardOracle;
pub use registry::{
    canary_value, CanaryRegistry, GuardedAlloc, Violation, CANARY_LEN, CANARY_SEED,
};
