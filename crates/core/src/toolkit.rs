//! The HEALERS toolkit facade: the end-to-end pipeline of Figure 2
//! driven from one place.

use std::path::Path;

use analyzer::ContractBase;
use cdecl::xml::write_declaration_file;
use injector::{run_campaign, CampaignConfig, CampaignResult, CheckpointJournal, TargetFn};
use interpose::{AppInfo, Executable, Loader, RunOutcome, SharedLibrary, System};
use simproc::Proc;
use typelattice::{RobustApi, SubstitutionPlan};
use wrappergen::{build_wrapper, PolicyEngine, WrapperConfig, WrapperKind, WrapperLibrary};

use crate::bridge::as_preload_library;

/// The toolkit: a simulated system plus campaign configuration.
#[derive(Debug)]
pub struct Toolkit {
    system: System,
    config: CampaignConfig,
    healing_policy: Option<PolicyEngine>,
}

impl Default for Toolkit {
    fn default() -> Self {
        Toolkit::new()
    }
}

impl Toolkit {
    /// A toolkit over the standard simulated system (libc + libm) with
    /// default campaign settings.
    pub fn new() -> Self {
        Toolkit {
            system: System::standard(),
            config: CampaignConfig::default(),
            healing_policy: None,
        }
    }

    /// Overrides the campaign configuration.
    pub fn with_config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the healing policy applied by [`Toolkit::generate_healing_wrapper`]
    /// when the wrapper config does not carry its own engine.
    pub fn with_healing_policy(mut self, policy: PolicyEngine) -> Self {
        self.healing_policy = Some(policy);
        self
    }

    /// The configured healing policy, if any.
    pub fn healing_policy(&self) -> Option<&PolicyEngine> {
        self.healing_policy.as_ref()
    }

    /// The simulated system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Enables a wrapper for *every* application on the system — the
    /// administrator path of §2.1 ("a system administrator can enable a
    /// wrapper on a system wide basis through a dynamic link loader").
    pub fn enable_system_wide(&mut self, wrapper: &WrapperLibrary) {
        self.system.enable_system_wide(as_preload_library(wrapper));
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    // ----- §3.1: wrapping libraries ------------------------------------

    /// Lists all libraries in the system: `(soname, exported symbols)`.
    pub fn list_libraries(&self) -> Vec<(String, usize)> {
        self.system.libraries().iter().map(|l| (l.soname().to_string(), l.len())).collect()
    }

    /// All functions defined in one library.
    pub fn list_functions(&self, soname: &str) -> Option<Vec<String>> {
        self.system
            .library(soname)
            .map(|l| l.symbol_names().iter().map(|s| s.to_string()).collect())
    }

    /// The XML-style declaration file describing each function's
    /// prototype.
    pub fn declaration_file(&self, soname: &str) -> Option<String> {
        self.system.library(soname).map(|l| write_declaration_file(soname, &l.prototypes()))
    }

    /// Fault-injection targets for a library (host implementations are
    /// only known for the simulated libraries).
    pub fn targets(&self, soname: &str) -> Option<Vec<TargetFn>> {
        match soname {
            simlibc::LIB_NAME => Some(injector::targets_from_simlibc()),
            simlibc::math::MATH_LIB_NAME => Some(injector::targets_from_simmath()),
            _ => None,
        }
    }

    /// Runs the automated fault-injection campaign over a library,
    /// deriving its robust API (Figure 2).
    pub fn derive_robust_api(&self, soname: &str) -> Option<CampaignResult> {
        let targets = self.targets(soname)?;
        Some(run_campaign(soname, &targets, process_factory, &self.config))
    }

    /// Runs static contract inference over a library's prototypes and
    /// man pages, without touching a process: the fact base the
    /// pre-seeded campaign and the soundness lint both consume.
    pub fn infer_contracts(&self, soname: &str) -> Option<ContractBase> {
        let targets = self.targets(soname)?;
        let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
        Some(analyzer::infer_contracts(soname, &protos, &simlibc::man_page))
    }

    /// Functions whose inferred static contract tolerates a NULL input
    /// (a `NullOk` fact at or above [`analyzer::NULL_OK_THRESHOLD`]):
    /// the contract-derived default set for
    /// [`WrapperConfig::oblivious_null_defaults`]. Under the oblivious
    /// policy these functions' pointer returns are manufactured empty
    /// strings instead of bare NULL.
    pub fn oblivious_null_defaults(&self, soname: &str) -> Option<Vec<String>> {
        let base = self.infer_contracts(soname)?;
        Some(
            base.functions
                .values()
                .filter(|c| {
                    c.mentioned_params().into_iter().any(|i| {
                        c.confidence(&analyzer::Fact::NullOk(i))
                            >= analyzer::NULL_OK_THRESHOLD
                    })
                })
                .map(|c| c.func.clone())
                .collect(),
        )
    }

    /// [`Toolkit::derive_robust_api`] pre-seeded by static contract
    /// inference: facts above [`analyzer::PRESEED_THRESHOLD`] floor each
    /// parameter's candidate-type ladder, so the injector skips the rungs
    /// a settled contract already decides (reported as pruned cases).
    /// The verdicts are the same as an uncontracted campaign's — only
    /// the number of injected cases shrinks. Returns the campaign result
    /// together with the contract base that seeded it.
    pub fn derive_robust_api_with_contracts(
        &self,
        soname: &str,
    ) -> Option<(CampaignResult, ContractBase)> {
        let targets = self.targets(soname)?;
        let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
        let base = analyzer::infer_contracts(soname, &protos, &simlibc::man_page);
        let hints = analyzer::ladder_hints(&base, &protos);
        let result = injector::run_campaign_with_hints(
            soname,
            &targets,
            process_factory,
            &self.config,
            &hints,
        );
        Some((result, base))
    }

    /// Runs the wrapper-soundness lint over a generated wrapper library:
    /// every wrapper's call model is walked for check-after-mutation
    /// orderings, narrow truncation masks and unguarded string scans.
    pub fn lint_wrapper(&self, wrapper: &WrapperLibrary) -> Vec<analyzer::LintFinding> {
        analyzer::lint_library(wrapper)
    }

    /// [`Toolkit::derive_robust_api`] backed by a durable checkpoint
    /// journal at `journal_path`: completed cases are loaded from the
    /// file before the campaign and the (possibly grown) journal is
    /// written back after it. Interrupted or budget-limited campaigns
    /// re-run with the same path resume exactly where they stopped.
    /// Returns `None` for libraries with no known implementations.
    ///
    /// # Errors
    ///
    /// IO errors reading or writing the journal file; a corrupt journal
    /// is reported as [`std::io::ErrorKind::InvalidData`] rather than
    /// silently discarded.
    pub fn derive_robust_api_checkpointed(
        &self,
        soname: &str,
        journal_path: &Path,
    ) -> std::io::Result<Option<CampaignResult>> {
        let Some(targets) = self.targets(soname) else { return Ok(None) };
        let journal = if journal_path.exists() {
            CheckpointJournal::load(journal_path)?
        } else {
            CheckpointJournal::new()
        };
        let result = injector::run_campaign_checkpointed(
            soname,
            &targets,
            process_factory,
            &self.config,
            &journal,
        );
        journal.save(journal_path)?;
        Ok(Some(result))
    }

    /// The operator-facing health summary of a campaign's derived robust
    /// API: per-function confidence and coverage, degraded contracts
    /// first — what to read before deploying a wrapper built from a
    /// partial campaign.
    pub fn campaign_health(&self, result: &CampaignResult) -> String {
        profiler::render_robust_api_health(&result.api)
    }

    /// Builds campaign targets from a §3.1 declaration file: the XML
    /// document produced by [`Toolkit::declaration_file`] (possibly
    /// hand-edited, as the paper allows) paired with the system's symbol
    /// bindings. Functions whose symbols are not installed are skipped.
    ///
    /// # Errors
    ///
    /// [`cdecl::xml::XmlError`] when the document is malformed.
    pub fn targets_from_declaration_file(
        &self,
        doc: &str,
    ) -> Result<(String, Vec<TargetFn>), cdecl::xml::XmlError> {
        let table = cdecl::TypedefTable::with_builtins();
        let (library, protos) = cdecl::xml::parse_declaration_file(doc, &table)?;
        let lookup = |name: &str| {
            simlibc::find_symbol(name).map(|s| s.imp).or_else(|| {
                simlibc::math::math_symbols()
                    .into_iter()
                    .find(|s| s.name == name)
                    .map(|s| s.imp)
            })
        };
        let targets = protos
            .into_iter()
            .filter_map(|proto| {
                lookup(&proto.name).map(|imp| TargetFn {
                    name: proto.name.clone(),
                    proto,
                    imp,
                })
            })
            .collect();
        Ok((library, targets))
    }

    // ----- §2.3: wrapper generation -------------------------------------

    /// Generates one of the standard wrapper libraries from a robust API.
    pub fn generate_wrapper(
        &self,
        kind: WrapperKind,
        api: &RobustApi,
        config: &WrapperConfig,
    ) -> WrapperLibrary {
        build_wrapper(kind, api, config)
    }

    /// Generates a self-healing wrapper: violations are repaired, retried,
    /// or degraded gracefully per the policy engine instead of merely
    /// contained, and every action lands in the wrapper's audit journal.
    ///
    /// Policy precedence: an engine in `config` wins, then the toolkit's
    /// [`Toolkit::with_healing_policy`] engine, then
    /// [`PolicyEngine::healing`].
    pub fn generate_healing_wrapper(
        &self,
        api: &RobustApi,
        config: &WrapperConfig,
    ) -> WrapperLibrary {
        let mut config = config.clone();
        if config.policy.is_none() {
            config.policy = self.healing_policy.clone();
        }
        // When the engine can go oblivious and the caller supplied no
        // contract-derived defaults, derive them from the library's
        // static contracts so manufactured values are context-selected
        // out of the box.
        let may_go_oblivious =
            config.policy.as_ref().is_some_and(PolicyEngine::may_go_oblivious);
        if may_go_oblivious && config.oblivious_null_defaults.is_empty() {
            if let Some(defaults) = self.oblivious_null_defaults(&api.library) {
                config.oblivious_null_defaults = defaults;
            }
        }
        build_wrapper(WrapperKind::Healing, api, &config)
    }

    /// Runs the flow-sensitive substitution analysis over a generated
    /// wrapper library (normally the security wrapper — its call models
    /// carry the campaign-derived relational checks the proofs lean on),
    /// consulting the inferred contract base for contradictory facts
    /// when one is supplied. Returns proven [`SubstitutionPlan`]s plus
    /// the audit of rejected functions.
    pub fn analyze_substitutions(
        &self,
        wrapper: &WrapperLibrary,
        contracts: Option<&analyzer::ContractBase>,
    ) -> analyzer::SubstitutionAnalysis {
        analyzer::analyze_substitutions(wrapper, contracts)
    }

    /// Generates the safer-variant substitution wrapper: only functions
    /// with a proven plan are interposed, each rerouted to a bounded
    /// variant clipped to the oracle's exact extent — overflows are
    /// prevented outright instead of canary-detected.
    pub fn generate_substitute_wrapper(
        &self,
        api: &RobustApi,
        config: &WrapperConfig,
        plans: &[SubstitutionPlan],
    ) -> WrapperLibrary {
        let mut config = config.clone();
        config.substitutions = plans.to_vec();
        build_wrapper(WrapperKind::Substitute, api, &config)
    }

    /// Converts a generated wrapper into a preloadable shared library.
    pub fn preload_library(&self, wrapper: &WrapperLibrary) -> SharedLibrary {
        as_preload_library(wrapper)
    }

    // ----- §3.2: wrapping applications -----------------------------------

    /// Extracts the linked-library and undefined-function lists of an
    /// executable (Figure 4).
    pub fn analyze_executable(&self, exe: &Executable) -> AppInfo {
        interpose::inspect(&self.system, exe)
    }

    // ----- running applications -------------------------------------------

    /// Runs an executable unprotected.
    ///
    /// # Errors
    ///
    /// Link errors; runtime faults are inside the outcome.
    pub fn run(&self, exe: &Executable) -> Result<RunOutcome, interpose::LinkError> {
        interpose::run(&Loader::new(), &self.system, exe)
    }

    /// Runs an executable with wrappers preloaded, in order.
    ///
    /// # Errors
    ///
    /// Link errors; runtime faults are inside the outcome.
    pub fn run_protected(
        &self,
        exe: &Executable,
        wrappers: &[&WrapperLibrary],
    ) -> Result<RunOutcome, interpose::LinkError> {
        let mut loader = Loader::new();
        for w in wrappers {
            loader.preload(as_preload_library(w));
        }
        interpose::run(&loader, &self.system, exe)
    }
}

/// The process factory used for injection sandboxes.
pub fn process_factory() -> Proc {
    simlibc::setup::init_process()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::{CVal, Fault};

    fn quick() -> Toolkit {
        Toolkit::new().with_config(CampaignConfig {
            pair_values: 4,
            fuel: 200_000,
            ..CampaignConfig::default()
        })
    }

    #[test]
    fn lists_libraries_and_functions() {
        let tk = Toolkit::new();
        let libs = tk.list_libraries();
        assert_eq!(libs[0].0, "libsimc.so.1");
        assert!(libs[0].1 >= 90);
        assert_eq!(libs[1].0, "libsimm.so.1");
        let fns = tk.list_functions("libsimc.so.1").unwrap();
        assert!(fns.iter().any(|f| f == "strcpy"));
        assert!(tk.list_functions("libnope.so").is_none());
    }

    #[test]
    fn declaration_file_roundtrips() {
        let tk = Toolkit::new();
        let doc = tk.declaration_file("libsimm.so.1").unwrap();
        let t = cdecl::TypedefTable::with_builtins();
        let (lib, protos) = cdecl::xml::parse_declaration_file(&doc, &t).unwrap();
        assert_eq!(lib, "libsimm.so.1");
        assert_eq!(protos.len(), 5);
    }

    #[test]
    fn end_to_end_campaign_wrapper_containment() {
        // The core promise: campaign -> robust API -> wrapper -> the
        // previously crashing call is now contained.
        let tk = quick();
        let targets: Vec<_> = injector::targets_from_simlibc()
            .into_iter()
            .filter(|t| t.name == "strlen")
            .collect();
        let result =
            injector::run_campaign("libsimc.so.1", &targets, process_factory, tk.config());
        assert!(result.total_failures() > 0);
        let wrapper = tk.generate_wrapper(
            wrappergen::WrapperKind::Robustness,
            &result.api,
            &WrapperConfig::default(),
        );
        let mut p = process_factory();
        let r = wrapper.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1), "contained, not crashed");
    }

    #[test]
    fn system_wide_wrapper_protects_without_per_process_preload() {
        let mut tk = quick();
        let targets: Vec<_> = injector::targets_from_simlibc()
            .into_iter()
            .filter(|t| t.name == "strlen")
            .collect();
        let result =
            injector::run_campaign("libsimc.so.1", &targets, process_factory, tk.config());
        let wrapper = tk.generate_wrapper(
            wrappergen::WrapperKind::Robustness,
            &result.api,
            &WrapperConfig::default(),
        );
        fn entry(s: &mut interpose::Session<'_>) -> Result<i32, Fault> {
            let r = s.call("strlen", &[simproc::CVal::NULL])?;
            Ok(r.as_int() as i32)
        }
        let exe = Executable::new("anyapp", &["libsimc.so.1"], &["strlen"], entry);
        // Before: crash.
        assert!(tk.run(&exe).unwrap().status.is_err());
        // Admin enables the wrapper once, system-wide.
        tk.enable_system_wide(&wrapper);
        // After: every plain `run` is protected.
        assert_eq!(tk.run(&exe).unwrap().status, Ok(-1));
    }

    #[test]
    fn declaration_file_drives_a_campaign() {
        // The §3.1 artifact is not just for show: the campaign can start
        // from it (the user may have hand-edited prototypes, as the
        // paper allows).
        let tk = quick();
        let doc = tk.declaration_file("libsimm.so.1").unwrap();
        let (library, targets) = tk.targets_from_declaration_file(&doc).unwrap();
        assert_eq!(library, "libsimm.so.1");
        assert_eq!(targets.len(), 5);
        let result =
            injector::run_campaign(&library, &targets, process_factory, tk.config());
        assert!(result.api.function("mnorm").unwrap().has_checks());
        // Malformed documents error instead of guessing.
        assert!(tk.targets_from_declaration_file("<library").is_err());
    }

    #[test]
    fn healing_wrapper_repairs_where_containment_rejects() {
        let tk = quick();
        let targets: Vec<_> = injector::targets_from_simlibc()
            .into_iter()
            .filter(|t| t.name == "strlen")
            .collect();
        let result =
            injector::run_campaign("libsimc.so.1", &targets, process_factory, tk.config());
        let healing = tk.generate_healing_wrapper(&result.api, &WrapperConfig::default());
        // strlen(NULL): containment would return -1; healing substitutes an
        // empty string and the call semantically succeeds.
        let mut p = process_factory();
        let r = healing.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(0), "healed, not merely contained");
        assert!(!healing.journal.is_empty());

        // A toolkit-level policy flows into generation when the config
        // carries none.
        let tk = tk.with_healing_policy(wrappergen::PolicyEngine::containment());
        assert!(tk.healing_policy().is_some());
        let contained = tk.generate_healing_wrapper(&result.api, &WrapperConfig::default());
        let mut p = process_factory();
        let r = contained.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1), "config-less generation obeys toolkit policy");
    }

    #[test]
    fn checkpointed_derivation_resumes_from_disk() {
        let dir = std::env::temp_dir()
            .join(format!("healers-toolkit-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("libsimm.journal");
        let tk = quick();

        let first =
            tk.derive_robust_api_checkpointed("libsimm.so.1", &path).unwrap().unwrap();
        assert!(first.complete);
        assert_eq!(first.checkpoint_hits(), 0);
        assert!(path.exists(), "journal persisted");

        let second =
            tk.derive_robust_api_checkpointed("libsimm.so.1", &path).unwrap().unwrap();
        assert_eq!(second.executed_cases(), 0, "fully replayed from disk");
        assert_eq!(first.api.to_xml(), second.api.to_xml());

        let health = tk.campaign_health(&second);
        assert!(health.contains("libsimm.so.1"), "{health}");
        assert!(health.contains("contracts are measurements"), "{health}");

        assert!(tk.derive_robust_api_checkpointed("libnope.so", &path).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn contract_inference_and_lint_are_wired_into_the_toolkit() {
        let tk = quick();
        let base = tk.infer_contracts("libsimc.so.1").unwrap();
        let strlen = base.function("strlen").unwrap();
        assert!(
            strlen.confidence(&analyzer::Fact::CStr(0)) >= analyzer::PRESEED_THRESHOLD,
            "{}",
            base.to_text()
        );

        // The math library has no man pages, so contract seeding is a
        // no-op there — and the seeded campaign must match the plain one
        // bit for bit.
        let (seeded, _) = tk.derive_robust_api_with_contracts("libsimm.so.1").unwrap();
        let plain = tk.derive_robust_api("libsimm.so.1").unwrap();
        assert_eq!(seeded.api.to_xml(), plain.api.to_xml());

        let wrapper = tk.generate_wrapper(
            wrappergen::WrapperKind::Robustness,
            &plain.api,
            &WrapperConfig::default(),
        );
        assert!(tk.lint_wrapper(&wrapper).is_empty());
        assert!(tk.derive_robust_api_with_contracts("libnope.so").is_none());
    }

    fn fragile_entry(s: &mut interpose::Session<'_>) -> Result<i32, Fault> {
        // Reads a config value that does not exist and measures it —
        // the NULL-deref pattern behind countless real crashes.
        let name = s.literal("MISSING_CONFIG");
        let value = s.call("getenv", &[CVal::Ptr(name)])?;
        let len = s.call("strlen", &[value])?; // strlen(NULL) without wrapper
        Ok(len.as_int() as i32)
    }

    #[test]
    fn run_protected_saves_the_fragile_app() {
        let tk = quick();
        let exe = Executable::new(
            "fragile",
            &["libsimc.so.1"],
            &["getenv", "strlen"],
            fragile_entry,
        );
        // Unprotected: crashes.
        let out = tk.run(&exe).unwrap();
        assert!(matches!(out.status, Err(Fault::Segv { .. })));
        // With the robustness wrapper: survives (strlen returns -1).
        let targets: Vec<_> = injector::targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "getenv"].contains(&t.name.as_str()))
            .collect();
        let result =
            injector::run_campaign("libsimc.so.1", &targets, process_factory, tk.config());
        let wrapper = tk.generate_wrapper(
            wrappergen::WrapperKind::Robustness,
            &result.api,
            &WrapperConfig::default(),
        );
        let out = tk.run_protected(&exe, &[&wrapper]).unwrap();
        assert_eq!(out.status, Ok(-1), "{:?}", out.status);
    }
}
