//! Fleet orchestration: hundreds of simulated `interpose` instances
//! submitting exit documents to the sharded collection service, a
//! [`FleetSupervisor`] sealing logical windows and feeding the rollup to
//! the remediation [`Director`], and the director's policy changes
//! applied back to the running wrappers through shared
//! [`PolicyOverrides`] — the closed loop from crash telemetry to
//! policy, with no rebuild and no restart.

use std::collections::BTreeMap;

use cdecl::{parse_prototype, TypedefTable};
use interpose::{Executable, Loader, Session, System};
use profiler::{
    Director, DirectorConfig, EscalationLevel, FleetAccounting, FleetCollector,
    FleetConfig, FleetMeta, FleetRollup, FleetService, PolicyChange, RemedyEvent,
};
use simproc::{CVal, Fault};
use typelattice::{RobustApi, RobustFunction, SafePred};
use wrappergen::{
    build_wrapper, Policy, PolicyEngine, PolicyOverrides, WrapperConfig, WrapperKind,
};

use crate::bridge::as_preload_library;

/// The wrapper policy enforcing one remediation level.
pub fn policy_for(level: EscalationLevel) -> Policy {
    match level {
        EscalationLevel::Observe => Policy::Observe,
        EscalationLevel::Contain => Policy::Contain,
        EscalationLevel::Heal => Policy::Heal,
        EscalationLevel::Oblivious => Policy::Oblivious,
        EscalationLevel::Terminate => Policy::Terminate,
    }
}

/// The fleet's control plane: owns the collection service, the shared
/// policy-override table every fleet wrapper consults, and the
/// remediation director. [`FleetSupervisor::seal_window`] is the loop
/// tick: quiesce ingest, hand the sealed window's stats to the
/// director, apply its policy changes to the overrides.
#[derive(Debug)]
pub struct FleetSupervisor {
    service: FleetService,
    overrides: PolicyOverrides,
    director: Director,
}

impl FleetSupervisor {
    /// Starts the collection service and the director.
    pub fn new(fleet: FleetConfig, director: DirectorConfig) -> Self {
        FleetSupervisor {
            service: FleetService::start(fleet),
            overrides: PolicyOverrides::new(),
            director: Director::new(director),
        }
    }

    /// A submission handle for instances.
    pub fn collector(&self) -> FleetCollector {
        self.service.collector()
    }

    /// The shared override table (clone it into each wrapper's policy
    /// engine).
    pub fn overrides(&self) -> PolicyOverrides {
        self.overrides.clone()
    }

    /// The remediation director (journal access).
    pub fn director(&self) -> &Director {
        &self.director
    }

    /// The live collection service (rollup snapshots, accounting).
    pub fn service(&self) -> &FleetService {
        &self.service
    }

    /// Seals logical window `window`: waits for every accepted document
    /// to be merged, feeds the window's stats to the director, and
    /// applies the resulting policy changes to the shared overrides —
    /// the *next* call through any fleet wrapper sees them. Call only
    /// between submission phases, with no instance mid-run.
    pub fn seal_window(&mut self, window: u64) -> Vec<PolicyChange> {
        self.service.quiesce();
        let rollup = self.service.rollup_snapshot();
        let stats = rollup.windows.get(&window).cloned().unwrap_or_default();
        let changes = self.director.observe_window(window, &stats);
        for ch in &changes {
            self.overrides.set(&ch.func, policy_for(ch.level));
        }
        changes
    }

    /// Shuts the service down and returns the final rollup, accounting
    /// and escalation journal.
    pub fn shutdown(self) -> (FleetRollup, FleetAccounting, Vec<RemedyEvent>) {
        let collected = self.service.shutdown();
        (collected.rollup, collected.accounting, self.director.journal().to_vec())
    }
}

// ---------------------------------------------------------------------------
// the fleet simulator

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Simulated application instances per round.
    pub instances: u64,
    /// Rounds (= logical windows) to run.
    pub rounds: u64,
    /// Ingest shards.
    pub shards: usize,
    /// Per-shard queue capacity.
    pub queue_capacity: usize,
    /// Deterministic seed stamped into every instance.
    pub seed: u64,
    /// Worker threads driving instances concurrently.
    pub threads: usize,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            instances: 256,
            rounds: 8,
            shards: 4,
            queue_capacity: 128,
            seed: 0xF1EE7,
            threads: 8,
        }
    }
}

/// Everything a fleet simulation produced.
#[derive(Debug)]
pub struct FleetSimOutcome {
    /// The merged fleet rollup.
    pub rollup: FleetRollup,
    /// Exact ingest accounting.
    pub accounting: FleetAccounting,
    /// The director's escalation journal.
    pub journal: Vec<RemedyEvent>,
    /// Documents the fleet was expected to produce (one per instance
    /// per round — clean exit document or post-mortem).
    pub expected_docs: u64,
    /// The deterministic fleet rollup report.
    pub fleet_report: String,
    /// The deterministic escalation report.
    pub escalation_report: String,
    /// Final remediation level per function the director ever touched.
    pub final_levels: BTreeMap<String, EscalationLevel>,
}

impl FleetSimOutcome {
    /// The zero-acked-loss gate: every expected document was merged,
    /// the accounting balances, and nothing was shed.
    pub fn lossless(&self) -> bool {
        self.rollup.docs == self.expected_docs
            && self.rollup.rejected == 0
            && self.accounting.balanced()
            && self.accounting.shed_total() == 0
    }
}

const FLEET_APPS: [&str; 3] = ["editor", "webd", "gamed"];

/// The window from which crash-burst behaviour switches on in the
/// `editor` population.
pub const BURST_WINDOW: u64 = 2;

fn fleet_api() -> RobustApi {
    let t = TypedefTable::with_builtins();
    let strcpy = RobustFunction::new(
        parse_prototype("char *strcpy(char *dest, const char *src);", &t)
            .expect("strcpy prototype"),
        vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
        true,
    );
    let strlen = RobustFunction::new(
        parse_prototype("size_t strlen(const char *s);", &t).expect("strlen prototype"),
        vec![SafePred::CStr],
        true,
    );
    let exit_fn = RobustFunction::trivial(
        parse_prototype("void exit(int status);", &t).expect("exit prototype"),
    );
    RobustApi { library: "libsimc.so.1".into(), functions: vec![strcpy, strlen, exit_fn] }
}

/// splitmix64 — a tiny deterministic per-instance RNG seeded from the
/// fleet identity triple.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulated application every fleet instance runs. Behaviour is a
/// pure function of the process's fleet identity `(instance, window,
/// seed)`: steady-state string work for everyone; from [`BURST_WINDOW`]
/// on, the `editor` population (instance ≡ 0 mod 3) additionally rolls
/// two crash shapes against `strcpy` —
///
/// * **shape A** (check-caught): `strcpy` into a NULL destination. At
///   `Observe` the violation is journaled and passed through, so the
///   original segfaults; `Contain` rejects it; `Heal` substitutes a
///   destination.
/// * **shape B** (check-evading): a perfectly valid long copy under an
///   exhausted fuel budget. The wrapper's checks pass (argument peeks
///   are unmetered), the original's metered copy hangs. `Observe` and
///   `Contain` propagate the hang; `Heal`'s fault path substitutes a
///   containment value, so only `Heal` stops this shape.
///
/// Together they force the director through the two-step
/// `Observe → Contain → Heal` escalation: containment fixes shape A but
/// the residual shape-B crash rate keeps the function anomalous.
fn fleet_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let (instance, window, seed) = s.proc().fleet_identity().unwrap_or((0, 0, 0));
    let roll = mix(seed ^ instance.wrapping_mul(0xA24B_AED4_963E_E407) ^ window) % 1000;

    let src = s.literal("fleet steady-state");
    let dst = s.static_buf(64);
    s.call("strcpy", &[CVal::Ptr(dst), CVal::Ptr(src)])?;
    s.call("strlen", &[CVal::Ptr(src)])?;
    s.call("strlen", &[CVal::Ptr(dst)])?;

    let bursting = instance % 3 == 0 && window >= BURST_WINDOW;
    if bursting && roll < 500 {
        // Shape A: NULL destination.
        s.call("strcpy", &[CVal::NULL, CVal::Ptr(src)])?;
    } else if bursting && roll < 800 {
        // Shape B: valid arguments, exhausted fuel.
        let long = "x".repeat(200);
        let long_src = s.literal(&long);
        let big = s.static_buf(256);
        let used = s.proc().cycles();
        s.proc().set_fuel_limit(Some(used + 25));
        let r = s.call("strcpy", &[CVal::Ptr(big), CVal::Ptr(long_src)]);
        s.proc().set_fuel_limit(None);
        r?;
    }
    s.call("exit", &[CVal::Int(0)])?;
    Ok(0)
}

fn run_one_instance(
    api: &RobustApi,
    overrides: &PolicyOverrides,
    collector: &FleetCollector,
    instance: u64,
    window: u64,
    seed: u64,
) {
    let app = FLEET_APPS[(instance % 3) as usize];
    let config = WrapperConfig {
        app_name: app.to_string(),
        fleet: Some(collector.clone()),
        policy: Some(PolicyEngine::new(Policy::Observe).with_overrides(overrides.clone())),
        ..WrapperConfig::default()
    };
    let wrapper = build_wrapper(WrapperKind::Healing, api, &config);
    let mut loader = Loader::new();
    loader.preload(as_preload_library(&wrapper));
    let system = System::standard();
    let exe =
        Executable::new(app, &["libsimc.so.1"], &["strcpy", "strlen", "exit"], fleet_entry);
    let out = interpose::run_instance(&loader, &system, &exe, instance, window, seed)
        .expect("fleet exe links");
    if let Err(fault) = &out.status {
        // The process died before its exit hook could ship: the fleet
        // driver (standing in for the crash handler) ships the
        // post-mortem itself, attributed to the function that faulted.
        let meta = FleetMeta {
            instance,
            window,
            crashed_in: Some("strcpy".to_string()),
            fault: Some(fault.tag().to_string()),
        };
        let doc = profiler::to_xml_for_fleet(
            app,
            "healing",
            &meta,
            &wrapper.stats.snapshot(),
            Some(&wrapper.journal.snapshot()),
        );
        collector.submit_until_accepted(&doc);
    }
}

/// Runs the closed-loop fleet simulation: `rounds` logical windows of
/// `instances` concurrent application runs, each round sealed through
/// the supervisor so the director's policy changes apply to the next
/// round's wrappers.
pub fn run_fleet_sim(config: &FleetSimConfig) -> FleetSimOutcome {
    let api = fleet_api();
    let mut supervisor = FleetSupervisor::new(
        FleetConfig {
            shards: config.shards,
            queue_capacity: config.queue_capacity,
            ..FleetConfig::default()
        },
        DirectorConfig::default(),
    );
    let collector = supervisor.collector();
    let overrides = supervisor.overrides();
    let threads = config.threads.clamp(1, 64) as u64;

    for window in 0..config.rounds {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let api = &api;
                let overrides = &overrides;
                let collector = &collector;
                scope.spawn(move || {
                    let mut instance = t;
                    while instance < config.instances {
                        run_one_instance(
                            api,
                            overrides,
                            collector,
                            instance,
                            window,
                            config.seed,
                        );
                        instance += threads;
                    }
                });
            }
        });
        supervisor.seal_window(window);
    }

    let expected_docs = config.instances * config.rounds;
    let final_levels =
        supervisor.director().journal().iter().map(|ev| (ev.func.clone(), ev.to)).collect();
    let (rollup, accounting, journal) = supervisor.shutdown();
    let fleet_report = profiler::render_fleet_report(&rollup, &accounting);
    let escalation_report = profiler::render_escalation_report(&journal);
    FleetSimOutcome {
        rollup,
        accounting,
        journal,
        expected_docs,
        fleet_report,
        escalation_report,
        final_levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profiler::RemedyAction;

    #[test]
    fn small_fleet_is_lossless_and_escalates() {
        let out = run_fleet_sim(&FleetSimConfig {
            instances: 48,
            rounds: 6,
            shards: 2,
            queue_capacity: 32,
            threads: 4,
            ..FleetSimConfig::default()
        });
        assert!(out.lossless(), "accounting: {:?}", out.accounting);
        assert_eq!(out.rollup.docs, 48 * 6);
        assert!(out.rollup.crash_docs > 0, "burst must crash instances");
        let escalations: Vec<_> = out
            .journal
            .iter()
            .filter(|e| e.action == RemedyAction::Escalate)
            .map(|e| (e.from, e.to))
            .collect();
        assert!(
            escalations.contains(&(EscalationLevel::Observe, EscalationLevel::Contain)),
            "journal: {}",
            out.escalation_report
        );
    }
}
