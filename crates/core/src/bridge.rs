//! Bridging generated wrappers into the dynamic loader: a
//! [`WrapperLibrary`] becomes a preloadable [`SharedLibrary`] whose
//! bindings dispatch through the wrapped functions.

use interpose::{Binding, SharedLibrary};
use wrappergen::WrapperLibrary;

/// Converts a generated wrapper into a shared library for `LD_PRELOAD`.
pub fn as_preload_library(wrapper: &WrapperLibrary) -> SharedLibrary {
    let mut lib = SharedLibrary::new(&wrapper.soname);
    for (name, wrapped) in wrapper.iter() {
        let w = wrapped.clone();
        lib.define(
            name,
            wrapped.proto().clone(),
            Binding::new(move |proc, args| w.call(proc, args)),
        );
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};
    use simproc::CVal;
    use typelattice::{RobustApi, RobustFunction, SafePred};
    use wrappergen::{build_wrapper, WrapperConfig, WrapperKind};

    #[test]
    fn preload_library_dispatches_through_wrapper() {
        let t = TypedefTable::with_builtins();
        let api = RobustApi {
            library: "libsimc.so.1".into(),
            functions: vec![RobustFunction::new(
                parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
                vec![SafePred::CStr],
                true,
            )],
        };
        let wrapper =
            build_wrapper(WrapperKind::Robustness, &api, &WrapperConfig::default());
        let lib = as_preload_library(&wrapper);
        assert_eq!(lib.soname(), "libhealers_robust.so.1");
        let mut p = simlibc::testutil::libc_proc();
        // Through the preload binding, strlen(NULL) is contained.
        let r = lib.symbol("strlen").unwrap().binding.call(&mut p, &[CVal::NULL]).unwrap();
        assert_eq!(r, CVal::Int(-1));
    }
}
