//! A simulated multi-threaded network server under sustained load.
//!
//! The concurrent-workload counterpart of [`crate::fleet`]: where the
//! fleet runs *many processes* each with one thread, this module runs
//! *one process* with many simulated worker threads sharing an address
//! space and a heap — the shape of a real network daemon. Each worker
//! handles a stream of requests end to end (parse → `malloc` → string
//! processing → `free`) through the dynamically-linked (and optionally
//! wrapper-interposed) C library, driven by a seeded load generator at a
//! configurable request mix.
//!
//! # Determinism across worker counts
//!
//! The scheduler is request-granular: request `r` is handled start to
//! finish by worker `r % workers`, and workers are switched between
//! requests, never inside one. The heap-visible state sequence is
//! therefore a function of the *global request order only* — the same
//! allocations, copies and frees happen against the same addresses
//! whatever the worker count. Per-worker state (stacks, errno, memo
//! tables) differs, but none of it feeds the canonical report: metered
//! call costs are length-dependent, not address-dependent, and errno is
//! reset at request entry. That is what makes [`ServerReport::canonical`]
//! and [`ServerReport::telemetry_xml`] byte-identical at 1, 4 or 8
//! workers for the same seed — the merge-discipline invariant the CI
//! gate holds.
//!
//! # The adversarial mix
//!
//! With [`ServerConfig::adversarial`] on (requires `protected`), the
//! load generator folds in the two cross-thread fault classes of
//! `injector`: a racing double-free (one worker frees a session buffer
//! another worker already dropped) and a cross-thread smash (one worker
//! overflows a shared session buffer through *unwrapped* stores; the
//! canary planted by the security wrapper is detected when a different
//! worker later frees it). Every such request is contained by the
//! wrapper and accounted — the server keeps serving.

use cdecl::{parse_prototype, TypedefTable};
use injector::{classify, Outcome};
use interpose::{Executable, Loader, Session, System};
use profiler::{to_xml, FlightRecorder, Stats};
use simproc::{CVal, Fault, ThreadId, VirtAddr};
use typelattice::{RobustApi, RobustFunction, SafePred};
use wrappergen::{build_wrapper, WrapperConfig, WrapperKind, WrapperLibrary};

use crate::bridge::as_preload_library;

/// Configuration of one server run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated worker threads sharing the process (≥ 1; worker 0 is
    /// the main thread).
    pub workers: usize,
    /// Total requests the load generator produces.
    pub requests: u64,
    /// Seed of the load generator: same seed, same request stream.
    pub seed: u64,
    /// Preload the security wrapper (canaries + terminating checks).
    pub protected: bool,
    /// Fold cross-thread attack shapes into the mix. Only meaningful —
    /// and only honoured — when `protected` is set: the bare allocator
    /// offers nothing to contain them with.
    pub adversarial: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            requests: 10_000,
            seed: 0xD00D_F00D,
            protected: true,
            adversarial: true,
        }
    }
}

/// What happened to every request — the server's books must balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    /// Workers the run actually used.
    pub workers: usize,
    /// Requests handled to completion (any verdict).
    pub handled: u64,
    /// Requests that completed cleanly.
    pub ok: u64,
    /// Requests that completed with a graceful `errno` error.
    pub rejected: u64,
    /// Requests stopped by the wrapper (security violation contained).
    pub contained: u64,
    /// Requests that died on an uncontained fault (bare mode only).
    pub faulted: u64,
    /// Requests unaccounted for: **must be zero** — the gate invariant.
    pub lost: u64,
    /// Session buffers quarantined after a detected smash (left
    /// allocated on purpose: their canary is gone, freeing them would
    /// trip the wrapper again).
    pub quarantined: u64,
    /// Simulated cycles consumed by the whole run.
    pub cycles: u64,
    /// Requests handled per worker (worker-count dependent — kept out
    /// of the canonical report by construction).
    pub per_worker: Vec<u64>,
    /// Worker-count-invariant text report: byte-identical for the same
    /// seed at any worker count.
    pub canonical: String,
    /// Worker-count-invariant telemetry XML from the wrapper's sharded
    /// stats (`None` when running unprotected).
    pub telemetry_xml: Option<String>,
}

/// splitmix64 — the load generator's deterministic stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The robust API the server's security wrapper is generated from —
/// hand-written with the same contracts a campaign derives, so server
/// construction does not pay for a fault-injection campaign.
fn server_api() -> RobustApi {
    let t = TypedefTable::with_builtins();
    let f = |proto: &str, preds: Vec<SafePred>| {
        RobustFunction::new(parse_prototype(proto, &t).expect("prototype"), preds, true)
    };
    RobustApi {
        library: "libsimc.so.1".into(),
        functions: vec![
            f("void *malloc(size_t n);", vec![SafePred::Always]),
            f("void free(void *p);", vec![SafePred::HeapChunkOrNull]),
            f(
                "char *strcpy(char *dest, const char *src);",
                vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
            ),
            f("size_t strlen(const char *s);", vec![SafePred::CStr]),
            f("int atoi(const char *s);", vec![SafePred::CStr]),
        ],
    }
}

/// Builds the server's security wrapper: canaries on the allocator,
/// terminating extent checks on the string functions, per-call latency
/// telemetry into the sharded stats.
pub fn server_wrapper() -> WrapperLibrary {
    build_wrapper(
        WrapperKind::Security,
        &server_api(),
        &WrapperConfig { latency_histograms: true, ..WrapperConfig::default() },
    )
}

const SYMBOLS: [&str; 6] = ["malloc", "free", "strcpy", "strlen", "atoi", "fopen"];

/// The shared session table: pointers stored by one request (on one
/// worker) and dropped by a later request (usually on another worker).
const SESSION_SLOTS: usize = 16;

#[derive(Clone, Copy)]
struct StoredBuf {
    ptr: VirtAddr,
    /// Canary smashed by an earlier request; the next free detects it.
    smashed: bool,
}

/// One generated request. Everything here is a pure function of
/// `(seed, r)` — never of the worker count.
enum Request {
    /// Parse-and-echo: malloc, strcpy in, strlen, free.
    Echo { len: u64 },
    /// Numeric parse: atoi over the receive buffer.
    Parse { value: u64 },
    /// Measure: strlen over the receive buffer.
    Count { len: u64 },
    /// Probe a config file that does not exist: the graceful-`errno`
    /// reject path (`fopen` → NULL + `ENOENT`).
    Probe,
    /// Open a session: malloc + strcpy, pointer parked in the table.
    Store { slot: usize, len: u64 },
    /// Close a session: free the parked pointer.
    Drop { slot: usize },
    /// Attack: free a session buffer twice across requests.
    DoubleFree { slot: usize },
    /// Attack: overflow a session buffer via unwrapped stores; the
    /// smash is detected by the canary when another worker frees it.
    Smash { slot: usize },
}

const STORE_CAP: u64 = 40;

fn generate(seed: u64, r: u64, adversarial: bool) -> Request {
    let roll = mix(seed ^ r.wrapping_mul(0x9E37_79B9));
    let slot = (mix(roll) % SESSION_SLOTS as u64) as usize;
    let len = 1 + mix(roll ^ 0xBEEF) % (STORE_CAP - 8);
    match roll % 100 {
        0..=34 => Request::Echo { len },
        35..=54 => Request::Parse { value: mix(roll ^ 0xCAFE) % 1_000_000 },
        55..=64 => Request::Count { len },
        65..=69 => Request::Probe,
        70..=84 => Request::Store { slot, len },
        85..=92 => Request::Drop { slot },
        93..=96 if adversarial => Request::DoubleFree { slot },
        _ if adversarial => Request::Smash { slot },
        _ => Request::Drop { slot },
    }
}

/// Writes the request payload into the shared receive buffer. This is
/// the "network read" — app-side stores, not library calls — and it is
/// also what guarantees every request starts on a fresh memo epoch:
/// writing memory bumps the address-space epoch, expiring every
/// worker's validation memo identically at any worker count.
fn fill_rx(s: &mut Session<'_>, rx: VirtAddr, bytes: &[u8]) -> Result<(), Fault> {
    let mut buf = bytes.to_vec();
    buf.push(0);
    s.proc().write_bytes(rx, &buf)
}

fn payload(len: u64) -> Vec<u8> {
    (0..len).map(|i| b'a' + (i % 26) as u8).collect()
}

/// Addresses fixed at server start-up (the app's own static data).
#[derive(Clone, Copy)]
struct Fixtures {
    /// The shared "network receive buffer".
    rx: VirtAddr,
    /// The literal `"r"` fopen mode string.
    mode: VirtAddr,
}

fn handle(
    s: &mut Session<'_>,
    fx: Fixtures,
    table: &mut [Option<StoredBuf>],
    req: &Request,
    quarantined: &mut u64,
) -> Result<CVal, Fault> {
    // Per-worker stack scratch: the "parse" step copies the header into
    // the handling thread's own stack frame. Stack addresses differ per
    // worker, but no library call ever sees them — only the (length-
    // dependent, address-independent) metered store cost registers.
    s.proc().push_frame("handle_request")?;
    let result = handle_inner(s, fx, table, req, quarantined);
    s.proc().pop_frame()?;
    result
}

fn handle_inner(
    s: &mut Session<'_>,
    fx: Fixtures,
    table: &mut [Option<StoredBuf>],
    req: &Request,
    quarantined: &mut u64,
) -> Result<CVal, Fault> {
    let rx = fx.rx;
    let scratch = s.proc().stack_alloc(16)?;
    match req {
        Request::Echo { len } => {
            let body = payload(*len);
            fill_rx(s, rx, &body)?;
            let head = &body[..body.len().min(8)];
            s.proc().write_bytes(scratch, head)?;
            let dst = s.call("malloc", &[CVal::Int(*len as i64 + 1)])?;
            if dst.as_ptr() == VirtAddr::NULL {
                return Ok(CVal::Int(-1));
            }
            s.call("strcpy", &[dst, CVal::Ptr(rx)])?;
            let n = s.call("strlen", &[dst])?;
            s.call("free", &[dst])?;
            Ok(n)
        }
        Request::Parse { value } => {
            fill_rx(s, rx, value.to_string().as_bytes())?;
            s.call("atoi", &[CVal::Ptr(rx)])
        }
        Request::Count { len } => {
            fill_rx(s, rx, &payload(*len))?;
            s.call("strlen", &[CVal::Ptr(rx)])
        }
        Request::Probe => {
            fill_rx(s, rx, b"no/such/config")?;
            // Missing file: NULL + ENOENT — the graceful reject path.
            s.call("fopen", &[CVal::Ptr(rx), CVal::Ptr(fx.mode)])
        }
        Request::Store { slot, len } => {
            let body = payload(*len);
            fill_rx(s, rx, &body)?;
            // Re-home an occupied session first; a smashed one is
            // quarantined, not freed (its canary is already gone).
            if let Some(old) = table[*slot].take() {
                if old.smashed {
                    *quarantined += 1;
                } else {
                    s.call("free", &[CVal::Ptr(old.ptr)])?;
                }
            }
            let buf = s.call("malloc", &[CVal::Int(STORE_CAP as i64)])?;
            if buf.as_ptr() == VirtAddr::NULL {
                return Ok(CVal::Int(-1));
            }
            s.call("strcpy", &[buf, CVal::Ptr(rx)])?;
            table[*slot] = Some(StoredBuf { ptr: buf.as_ptr(), smashed: false });
            Ok(CVal::Int(*slot as i64))
        }
        Request::Drop { slot } | Request::DoubleFree { slot } => {
            let Some(stored) = table[*slot] else {
                // Session already closed: answer with a measurement.
                fill_rx(s, rx, &payload(7))?;
                return s.call("strlen", &[CVal::Ptr(rx)]);
            };
            table[*slot] = None;
            let first = s.call("free", &[CVal::Ptr(stored.ptr)]);
            if stored.smashed {
                // The canary planted on another worker's malloc and
                // smashed by a third worker's overflow is detected
                // here; the buffer is quarantined either way.
                *quarantined += 1;
            }
            first?;
            if matches!(req, Request::DoubleFree { .. }) {
                // The racing free: a stale worker closing the same
                // session again. The wrapper must refuse it.
                s.call("free", &[CVal::Ptr(stored.ptr)])?;
            }
            Ok(CVal::Int(0))
        }
        Request::Smash { slot } => {
            let Some(stored) = table[*slot] else {
                fill_rx(s, rx, &payload(5))?;
                return s.call("strlen", &[CVal::Ptr(rx)]);
            };
            // The overflow happens through plain app stores — the exact
            // path no library wrapper can see. STORE_CAP bytes of junk
            // plus 8 more lands squarely on the wrapper's guard word
            // (the security malloc inflated the chunk by 8, so the
            // write stays inside the allocation: allocator metadata is
            // *not* harmed — only the canary, which is the point).
            let junk = vec![0xEEu8; STORE_CAP as usize + 8];
            s.proc().write_bytes(stored.ptr, &junk)?;
            table[*slot] = Some(StoredBuf { ptr: stored.ptr, smashed: true });
            Ok(CVal::Int(0))
        }
    }
}

/// Runs the simulated server to completion and balances the books.
///
/// # Panics
///
/// On a broken harness (link failure, thread spawn failure) — never on
/// request-level faults, which are contained and accounted.
pub fn run_server_sim(cfg: &ServerConfig) -> ServerReport {
    run_server_sim_with(cfg, None, None)
}

/// [`run_server_sim`] with optional *service-level* telemetry sinks:
/// one `record_call("request", ...)` plus a latency sample per request
/// into `service_stats`, and one flight record per contained request
/// into `service_flight`. Both sinks are shared-by-`Arc` in the
/// scale-out benchmark, where several **real** host threads each run a
/// server shard and record concurrently — the sharded [`Stats`] and the
/// [`FlightRecorder`] merging from genuinely parallel writers. Service
/// telemetry never feeds the canonical report, so sharing sinks across
/// racing shards cannot perturb the determinism gate.
pub fn run_server_sim_with(
    cfg: &ServerConfig,
    service_stats: Option<&Stats>,
    service_flight: Option<&FlightRecorder>,
) -> ServerReport {
    let workers = cfg.workers.max(1);
    let adversarial = cfg.adversarial && cfg.protected;

    let wrapper = cfg.protected.then(server_wrapper);
    let mut loader = Loader::new();
    if let Some(w) = &wrapper {
        loader.preload(as_preload_library(w));
    }
    let system = System::standard();
    fn no_entry(_s: &mut Session<'_>) -> Result<i32, Fault> {
        Ok(0)
    }
    let exe = Executable::new("simserved", &["libsimc.so.1"], &SYMBOLS, no_entry);
    let image = loader.load(&system, &exe).expect("server links");

    let mut proc = simlibc::setup::init_process();
    let mut tids = vec![ThreadId::MAIN];
    for w in 1..workers {
        tids.push(proc.spawn_thread(&format!("worker-{w}")).expect("worker stack"));
    }

    let mut s = Session::new(&mut proc, &image);
    let fx = Fixtures { rx: s.static_buf(64), mode: s.literal("r") };

    let mut table: Vec<Option<StoredBuf>> = vec![None; SESSION_SLOTS];
    let (mut ok, mut rejected, mut contained, mut faulted) = (0u64, 0u64, 0u64, 0u64);
    let mut quarantined = 0u64;
    let mut per_worker = vec![0u64; workers];

    let start_cycles = s.proc().cycles();
    for r in 0..cfg.requests {
        let w = (r % workers as u64) as usize;
        s.proc().switch_thread(tids[w]);
        s.proc().set_errno(0);
        let req = generate(cfg.seed, r, adversarial);
        let before = s.proc().cycles();
        let result = handle(&mut s, fx, &mut table, &req, &mut quarantined);
        let errno_after = s.proc().errno();
        let spent = s.proc().cycles() - before;
        per_worker[w] += 1;
        let outcome = classify(result, 0, errno_after).outcome;
        if let Some(stats) = service_stats {
            stats.record_call("request", spent, (errno_after != 0).then_some(errno_after));
            stats.record_latency("request", "call", spent);
        }
        match outcome {
            Outcome::Pass => ok += 1,
            Outcome::GracefulError => rejected += 1,
            Outcome::Contained => {
                contained += 1;
                if let Some(flight) = service_flight {
                    flight.record("request", &format!("r={r}"), "contained", spent);
                }
            }
            _ => faulted += 1,
        }
    }

    // Drain: close every remaining session on the main thread so each
    // allocation is accounted — freed, or quarantined with its reason.
    s.proc().switch_thread(ThreadId::MAIN);
    for slot in table.iter_mut() {
        if let Some(stored) = slot.take() {
            if stored.smashed {
                quarantined += 1;
            } else {
                s.call("free", &[CVal::Ptr(stored.ptr)]).expect("drain free");
            }
        }
    }
    let cycles = s.proc().cycles() - start_cycles;

    let handled = ok + rejected + contained + faulted;
    let lost = cfg.requests - handled;

    // The canonical report deliberately omits the worker count and any
    // per-worker split: same seed, same bytes, any parallelism.
    let canonical = format!(
        "== simserved load report ==\n\
         seed:        {:#018x}\n\
         requests:    {}\n\
         ok:          {ok}\n\
         rejected:    {rejected}\n\
         contained:   {contained}\n\
         faulted:     {faulted}\n\
         lost:        {lost}\n\
         quarantined: {quarantined}\n\
         cycles:      {cycles}\n",
        cfg.seed, cfg.requests,
    );
    let telemetry_xml =
        wrapper.as_ref().map(|w| to_xml("simserved", "security", &w.stats.snapshot()));

    ServerReport {
        workers,
        handled,
        ok,
        rejected,
        contained,
        faulted,
        lost,
        quarantined,
        cycles,
        per_worker,
        canonical,
        telemetry_xml,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn books_balance_and_requests_mix() {
        let rep = run_server_sim(&ServerConfig {
            workers: 4,
            requests: 2_000,
            ..ServerConfig::default()
        });
        assert_eq!(rep.lost, 0, "every request must be accounted");
        assert_eq!(rep.handled, 2_000);
        assert_eq!(rep.faulted, 0, "the wrapper contains every attack");
        assert!(rep.ok > 0);
        assert!(rep.rejected > 0, "the graceful-errno path must be exercised: {rep:?}");
        assert!(rep.contained > 0, "the adversarial mix must be exercised: {rep:?}");
        assert_eq!(rep.per_worker.iter().sum::<u64>(), 2_000);
        assert!(rep.per_worker.iter().all(|&n| n == 500));
    }

    #[test]
    fn canonical_report_is_worker_count_invariant() {
        let base = ServerConfig { requests: 1_500, ..ServerConfig::default() };
        let one = run_server_sim(&ServerConfig { workers: 1, ..base.clone() });
        let four = run_server_sim(&ServerConfig { workers: 4, ..base.clone() });
        let eight = run_server_sim(&ServerConfig { workers: 8, ..base });
        assert_eq!(one.canonical, four.canonical);
        assert_eq!(four.canonical, eight.canonical);
        assert_eq!(one.telemetry_xml, four.telemetry_xml);
        assert_eq!(four.telemetry_xml, eight.telemetry_xml);
        assert_eq!(one.cycles, eight.cycles, "metered cost is schedule-invariant");
    }

    #[test]
    fn different_seeds_produce_different_streams() {
        let a = run_server_sim(&ServerConfig {
            requests: 800,
            seed: 1,
            ..ServerConfig::default()
        });
        let b = run_server_sim(&ServerConfig {
            requests: 800,
            seed: 2,
            ..ServerConfig::default()
        });
        assert_ne!(a.canonical, b.canonical);
    }

    #[test]
    fn unprotected_run_survives_the_clean_mix() {
        // Bare mode never honours the adversarial flag: the clean mix
        // runs loss-free against the raw allocator (the raw baseline
        // the benchmark compares against).
        let rep = run_server_sim(&ServerConfig {
            workers: 4,
            requests: 2_000,
            protected: false,
            adversarial: true,
            ..ServerConfig::default()
        });
        assert_eq!(rep.lost, 0);
        assert_eq!(rep.contained, 0);
        assert_eq!(rep.faulted, 0, "{rep:?}");
        assert!(rep.telemetry_xml.is_none());
    }

    #[test]
    fn smashed_sessions_are_detected_and_quarantined() {
        let rep = run_server_sim(&ServerConfig {
            workers: 4,
            requests: 4_000,
            ..ServerConfig::default()
        });
        assert!(rep.quarantined > 0, "smashes must be detected: {rep:?}");
        assert!(rep.canonical.contains("quarantined"));
    }
}
