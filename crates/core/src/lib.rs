//! # healers-core — the HEALERS toolkit facade
//!
//! Ties the whole pipeline of the paper together behind one type,
//! [`Toolkit`]:
//!
//! 1. list the system's shared libraries and their functions, emit
//!    XML-style declaration files (§3.1);
//! 2. run automated fault-injection campaigns deriving each library's
//!    robust API (§2.2, Figure 2);
//! 3. generate security / robustness / profiling wrappers from
//!    micro-generators (§2.3, Figure 3);
//! 4. preload wrappers under applications through the simulated dynamic
//!    loader (§2.1, Figure 1) and run them protected;
//! 5. inspect executables for their linked libraries and undefined
//!    symbols (§3.2, Figure 4).
//!
//! ```no_run
//! use healers_core::Toolkit;
//! use wrappergen::{WrapperKind, WrapperConfig};
//!
//! let toolkit = Toolkit::new();
//! let campaign = toolkit.derive_robust_api("libsimc.so.1").unwrap();
//! let wrapper = toolkit.generate_wrapper(
//!     WrapperKind::Robustness,
//!     &campaign.api,
//!     &WrapperConfig::default(),
//! );
//! println!("{} functions wrapped", wrapper.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bridge;
mod fleet;
mod server;
mod toolkit;

pub use bridge::as_preload_library;
pub use fleet::{
    policy_for, run_fleet_sim, FleetSimConfig, FleetSimOutcome, FleetSupervisor,
    BURST_WINDOW,
};
pub use server::{
    run_server_sim, run_server_sim_with, server_wrapper, ServerConfig, ServerReport,
};
pub use toolkit::{process_factory, Toolkit};
