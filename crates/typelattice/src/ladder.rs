//! Candidate-type ladders: for each parameter, the ordered hierarchy of
//! argument types the injector climbs, weakest first (paper §2.2,
//! Figure 2: "searching robust argument types").
//!
//! Pointer ladders interleave `NULL-or-X` variants before each `X`, so a
//! function that *accepts* NULL (`time`, `fflush`, `strtol`'s `endptr`)
//! keeps that permissiveness in its robust type, while one that crashes
//! on NULL (`strlen`) climbs past it.

use cdecl::Prototype;

use crate::class::{classify_params, ArgClass};
use crate::pred::SafePred;

/// One rung of a ladder: a named candidate argument type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rung {
    /// Short name for reports (e.g. `"cstr"`, `"holds-cstr(arg2)"`).
    pub name: String,
    /// The membership predicate.
    pub pred: SafePred,
}

impl Rung {
    fn new(name: impl Into<String>, pred: SafePred) -> Self {
        Rung { name: name.into(), pred }
    }
}

/// The injection plan for one parameter.
#[derive(Debug, Clone)]
pub struct ParamPlan {
    /// Injection class of the parameter.
    pub class: ArgClass,
    /// Candidate types, weakest first. The last rung is the strongest
    /// type available; if even it crashes, the function is reported as
    /// not fully wrappable.
    pub ladder: Vec<Rung>,
}

/// Index of the first parameter (other than `me`) whose class satisfies
/// `pick`.
fn find_param(
    classes: &[ArgClass],
    me: usize,
    pick: impl Fn(ArgClass) -> bool,
) -> Option<usize> {
    classes.iter().enumerate().find(|(i, c)| *i != me && pick(**c)).map(|(i, _)| i)
}

/// All `Size` parameters other than `me`.
fn size_params(classes: &[ArgClass], me: usize) -> Vec<usize> {
    classes
        .iter()
        .enumerate()
        .filter(|(i, c)| *i != me && matches!(c, ArgClass::Size))
        .map(|(i, _)| i)
        .collect()
}

/// `[any, nonnull, null-or-s1, s1, null-or-s2, s2, ...]`
fn pointer_ladder(strengths: Vec<Rung>) -> Vec<Rung> {
    let mut out =
        vec![Rung::new("any", SafePred::Always), Rung::new("nonnull", SafePred::NonNull)];
    for r in strengths {
        out.push(Rung::new(
            format!("null-or-{}", r.name),
            SafePred::NullOr(Box::new(r.pred.clone())),
        ));
        out.push(r);
    }
    out
}

/// The relational write-buffer rungs available to a writable pointer at
/// `idx` with element size `elem`.
fn writable_relations(
    classes: &[ArgClass],
    idx: usize,
    elem: u64,
    cstr: bool,
) -> Vec<Rung> {
    let mut out = Vec::new();
    if cstr {
        if let Some(src) = find_param(classes, idx, |c| c == ArgClass::CStrIn) {
            out.push(Rung::new(
                format!("holds-cstr(arg{})", src + 1),
                SafePred::HoldsCStrOf { src },
            ));
        }
    }
    let sizes = size_params(classes, idx);
    if let Some(&s) = sizes.first() {
        out.push(Rung::new(
            format!("writable(arg{}*{elem})", s + 1),
            SafePred::WritableAtLeastArg { size: s, elem },
        ));
    }
    if sizes.len() >= 2 {
        out.push(Rung::new(
            format!("writable(arg{}*arg{})", sizes[0] + 1, sizes[1] + 1),
            SafePred::WritableAtLeastProduct { a: sizes[0], b: sizes[1] },
        ));
    }
    out
}

/// Builds the ladder for parameter `idx` given the classes of all
/// parameters.
pub fn ladder_for(classes: &[ArgClass], idx: usize) -> Vec<Rung> {
    let class = classes[idx];
    match class {
        ArgClass::CStrIn => pointer_ladder(vec![Rung::new("cstr", SafePred::CStr)]),
        ArgClass::CStrOut => {
            let mut strengths = vec![Rung::new("writable(1)", SafePred::Writable(1))];
            strengths.extend(writable_relations(classes, idx, 1, true));
            pointer_ladder(strengths)
        }
        ArgClass::PtrIn(elem) => {
            let mut strengths =
                vec![Rung::new(format!("readable({elem})"), SafePred::Readable(elem))];
            let sizes = size_params(classes, idx);
            if let Some(&s) = sizes.first() {
                strengths.push(Rung::new(
                    format!("readable(arg{}*{elem})", s + 1),
                    SafePred::ReadableAtLeastArg { size: s, elem },
                ));
            }
            if sizes.len() >= 2 {
                strengths.push(Rung::new(
                    format!("readable(arg{}*arg{})", sizes[0] + 1, sizes[1] + 1),
                    SafePred::ReadableAtLeastProduct { a: sizes[0], b: sizes[1] },
                ));
            }
            pointer_ladder(strengths)
        }
        ArgClass::PtrOut(elem) => {
            let mut strengths =
                vec![Rung::new(format!("writable({elem})"), SafePred::Writable(elem))];
            strengths.extend(writable_relations(classes, idx, elem, false));
            // Last resort: the free/realloc contract.
            strengths.push(Rung::new("heap-chunk-or-null", SafePred::HeapChunkOrNull));
            pointer_ladder(strengths)
        }
        ArgClass::CStrPtrPtr => pointer_ladder(vec![
            Rung::new("writable(8)", SafePred::Writable(8)),
            Rung::new("ptr-to-cstr-or-null", SafePred::PtrToCStrOrNull),
        ]),
        ArgClass::FuncPtr => vec![
            Rung::new("any", SafePred::Always),
            Rung::new(
                "null-or-valid-funcptr",
                SafePred::NullOr(Box::new(SafePred::ValidFuncPtr)),
            ),
            Rung::new("valid-funcptr", SafePred::ValidFuncPtr),
        ],
        ArgClass::FilePtr => {
            pointer_ladder(vec![Rung::new("valid-file", SafePred::ValidFilePtr)])
        }
        ArgClass::Int(_) => vec![
            Rung::new("any", SafePred::Always),
            Rung::new("nonzero", SafePred::IntNonZero),
            Rung::new(
                "bounded(2^20)",
                SafePred::IntInRange { min: -(1 << 20), max: 1 << 20 },
            ),
            Rung::new("char-range", SafePred::IntInRange { min: -1, max: 255 }),
        ],
        ArgClass::Size => {
            let mut rungs = vec![Rung::new("any", SafePred::Always)];
            if let Some(ptr) = find_param(classes, idx, |c| {
                matches!(c, ArgClass::CStrOut | ArgClass::PtrOut(_))
            }) {
                let elem = match classes[ptr] {
                    ArgClass::PtrOut(e) => e,
                    _ => 1,
                };
                rungs.push(Rung::new(
                    format!("fits-writable(arg{})", ptr + 1),
                    SafePred::SizeFitsWritable { ptr, elem },
                ));
            } else if let Some(ptr) = find_param(classes, idx, |c| {
                matches!(c, ArgClass::CStrIn | ArgClass::PtrIn(_))
            }) {
                let elem = match classes[ptr] {
                    ArgClass::PtrIn(e) => e,
                    _ => 1,
                };
                rungs.push(Rung::new(
                    format!("fits-readable(arg{})", ptr + 1),
                    SafePred::SizeFitsReadable { ptr, elem },
                ));
            }
            rungs.push(Rung::new("below(2^16)", SafePred::SizeBelow(1 << 16)));
            rungs
        }
        ArgClass::Float => vec![Rung::new("any", SafePred::Always)],
    }
}

/// Builds the full injection plan for a prototype.
pub fn plan(proto: &Prototype) -> Vec<ParamPlan> {
    let classes = classify_params(proto);
    classes
        .iter()
        .enumerate()
        .map(|(i, c)| ParamPlan { class: *c, ladder: ladder_for(&classes, i) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn plan_of(proto: &str) -> Vec<ParamPlan> {
        let t = TypedefTable::with_builtins();
        plan(&parse_prototype(proto, &t).unwrap())
    }

    fn names(p: &ParamPlan) -> Vec<&str> {
        p.ladder.iter().map(|r| r.name.as_str()).collect()
    }

    #[test]
    fn strcpy_dst_gets_relational_rung() {
        let plans = plan_of("char *strcpy(char *dest, const char *src);");
        assert_eq!(
            names(&plans[0]),
            vec![
                "any",
                "nonnull",
                "null-or-writable(1)",
                "writable(1)",
                "null-or-holds-cstr(arg2)",
                "holds-cstr(arg2)"
            ]
        );
        assert_eq!(names(&plans[1]), vec!["any", "nonnull", "null-or-cstr", "cstr"]);
    }

    #[test]
    fn memcpy_gets_size_relations() {
        let plans = plan_of("void *memcpy(void *dest, const void *src, size_t n);");
        assert!(plans[0]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::WritableAtLeastArg { size: 2, elem: 1 }));
        assert!(plans[1]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::ReadableAtLeastArg { size: 2, elem: 1 }));
        assert!(plans[2]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::SizeFitsWritable { ptr: 0, elem: 1 }));
    }

    #[test]
    fn void_ptr_out_ends_at_heap_rung() {
        let plans = plan_of("void free(void *ptr);");
        assert_eq!(plans[0].ladder.last().unwrap().pred, SafePred::HeapChunkOrNull);
    }

    #[test]
    fn fread_gets_product_rung() {
        let plans =
            plan_of("size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);");
        assert!(plans[0]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::WritableAtLeastProduct { a: 1, b: 2 }));
        assert_eq!(plans[3].ladder.last().unwrap().pred, SafePred::ValidFilePtr);
        // The null-or variant sits right before it.
        let n = plans[3].ladder.len();
        assert_eq!(
            plans[3].ladder[n - 2].pred,
            SafePred::NullOr(Box::new(SafePred::ValidFilePtr))
        );
    }

    #[test]
    fn typed_pointer_elem_sizes() {
        let plans = plan_of("double mnorm(const double *vec, size_t n);");
        assert!(plans[0]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::ReadableAtLeastArg { size: 1, elem: 8 }));
        assert!(plans[1]
            .ladder
            .iter()
            .any(|r| r.pred == SafePred::SizeFitsReadable { ptr: 0, elem: 8 }));
    }

    #[test]
    fn int_ladder_ends_at_char_range() {
        let plans = plan_of("int isalpha(int c);");
        assert_eq!(
            plans[0].ladder.last().unwrap().pred,
            SafePred::IntInRange { min: -1, max: 255 }
        );
    }

    #[test]
    fn every_ladder_starts_at_any() {
        for proto in simlibc::prototypes() {
            for (i, p) in plan(&proto).iter().enumerate() {
                assert!(!p.ladder.is_empty(), "{} param {}", proto.name, i);
                assert_eq!(p.ladder[0].pred, SafePred::Always, "{}", proto.name);
            }
        }
    }

    #[test]
    fn strtok_r_saveptr_ladder() {
        let plans =
            plan_of("char *strtok_r(char *str, const char *delim, char **saveptr);");
        assert_eq!(plans[2].class, ArgClass::CStrPtrPtr);
        assert_eq!(plans[2].ladder.last().unwrap().pred, SafePred::PtrToCStrOrNull);
    }

    #[test]
    fn funcptr_allows_null_rung() {
        let plans = plan_of("int atexit(void (*function)(void));");
        assert_eq!(names(&plans[0]), vec!["any", "null-or-valid-funcptr", "valid-funcptr"]);
    }
}
