//! Predicate-directed argument repair: for every violated [`SafePred`]
//! the lattice knows *why* the argument is outside the robust type, so it
//! can also suggest the weakest transformation that brings the argument
//! back inside it. The healing wrapper (the `heal args` micro-generator)
//! executes these suggestions before the call instead of rejecting it —
//! the failure-oblivious / self-healing response layered on top of plain
//! containment.
//!
//! A hint is advice, not a guarantee: the executor re-checks every
//! predicate after applying a repair and falls back to containment when
//! the argument is still outside the contract.

use crate::pred::SafePred;

/// The repair a violated predicate suggests for its argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairHint {
    /// Make the argument a readable NUL-terminated string: terminate it
    /// in place at the end of its writable extent, or substitute a fresh
    /// empty string when the buffer is unusable.
    MakeCStr,
    /// Substitute a fresh zeroed buffer of at least `min` bytes.
    SubstituteBuffer {
        /// Minimum usable size of the replacement buffer.
        min: u64,
    },
    /// Make the destination (this argument) able to hold the C string at
    /// argument `src`: truncate the source to the destination's writable
    /// extent, or give the destination a large-enough fresh buffer.
    FitDestToSrc {
        /// Index of the source-string argument.
        src: usize,
    },
    /// Clamp the count at argument `count` so `count * elem` fits this
    /// pointer's extent (substituting a buffer first when the pointer has
    /// no extent at all).
    ClampCountToExtent {
        /// Index of the size argument to clamp.
        count: usize,
        /// Element size multiplier.
        elem: u64,
        /// Whether the extent that matters is writable (else readable).
        writable: bool,
    },
    /// Clamp factor `b` so `arg[a] * arg[b]` fits this pointer's extent.
    ClampProductToExtent {
        /// First factor argument index (element size, kept).
        a: usize,
        /// Second factor argument index (count, clamped).
        b: usize,
        /// Whether the extent that matters is writable (else readable).
        writable: bool,
    },
    /// Clamp this size argument so `self * elem` fits the extent of the
    /// buffer at argument `ptr`.
    ClampSelfToExtentOf {
        /// Index of the buffer argument.
        ptr: usize,
        /// Element size multiplier.
        elem: u64,
        /// Whether the extent that matters is writable (else readable).
        writable: bool,
    },
    /// Clamp this size argument below `n`.
    ClampSelfBelow(u64),
    /// Clamp this integer into `[min, max]`.
    ClampSelfRange {
        /// Lower bound.
        min: i64,
        /// Upper bound.
        max: i64,
    },
    /// Substitute the integer constant.
    SubstituteInt(i64),
    /// Substitute a writable 8-byte cell holding NULL (the
    /// `char **endptr` shape).
    MakePtrCell,
    /// Substitute NULL — safe when the callee treats NULL as a benign
    /// no-op (`free(NULL)`) or documents optional-NULL semantics.
    SubstituteNull,
    /// No safe repair exists; the executor must contain instead.
    Unfixable,
}

/// The repair suggested for an argument violating `pred`.
///
/// Invariant relied on by the healing wrapper: executing the hint
/// faithfully produces an argument vector for which `pred` holds (the
/// executor still re-checks — substitutions can fail under memory
/// pressure).
pub fn repair_hint(pred: &SafePred) -> RepairHint {
    match pred {
        // `Always` cannot be violated; if asked anyway, there is nothing
        // meaningful to change.
        SafePred::Always => RepairHint::Unfixable,
        SafePred::NonNull => RepairHint::SubstituteBuffer { min: 16 },
        SafePred::Readable(n) | SafePred::Writable(n) => {
            RepairHint::SubstituteBuffer { min: (*n).max(1) }
        }
        SafePred::CStr => RepairHint::MakeCStr,
        SafePred::HoldsCStrOf { src } => RepairHint::FitDestToSrc { src: *src },
        SafePred::WritableAtLeastArg { size, elem } => {
            RepairHint::ClampCountToExtent { count: *size, elem: *elem, writable: true }
        }
        SafePred::ReadableAtLeastArg { size, elem } => {
            RepairHint::ClampCountToExtent { count: *size, elem: *elem, writable: false }
        }
        SafePred::WritableAtLeastProduct { a, b } => {
            RepairHint::ClampProductToExtent { a: *a, b: *b, writable: true }
        }
        SafePred::ReadableAtLeastProduct { a, b } => {
            RepairHint::ClampProductToExtent { a: *a, b: *b, writable: false }
        }
        SafePred::SizeFitsWritable { ptr, elem } => {
            RepairHint::ClampSelfToExtentOf { ptr: *ptr, elem: *elem, writable: true }
        }
        SafePred::SizeFitsReadable { ptr, elem } => {
            RepairHint::ClampSelfToExtentOf { ptr: *ptr, elem: *elem, writable: false }
        }
        SafePred::SizeBelow(n) => RepairHint::ClampSelfBelow(*n),
        SafePred::IntNonZero => RepairHint::SubstituteInt(1),
        SafePred::IntInRange { min, max } => {
            RepairHint::ClampSelfRange { min: *min, max: *max }
        }
        SafePred::PtrToCStrOrNull => RepairHint::MakePtrCell,
        // No safe default exists for code or stream handles: calling
        // through a manufactured one would be worse than refusing.
        SafePred::ValidFuncPtr | SafePred::ValidFilePtr => RepairHint::Unfixable,
        // NULL trivially satisfies the optional-NULL contract, and the
        // callee documents NULL as handled.
        SafePred::NullOr(_) => RepairHint::SubstituteNull,
        // `free(NULL)` / `realloc(NULL, n)` are defined no-ops.
        SafePred::HeapChunkOrNull => RepairHint::SubstituteNull,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_cover_every_predicate() {
        let preds = [
            SafePred::Always,
            SafePred::NonNull,
            SafePred::Readable(8),
            SafePred::Writable(8),
            SafePred::CStr,
            SafePred::HoldsCStrOf { src: 1 },
            SafePred::WritableAtLeastArg { size: 2, elem: 1 },
            SafePred::ReadableAtLeastArg { size: 2, elem: 4 },
            SafePred::WritableAtLeastProduct { a: 1, b: 2 },
            SafePred::ReadableAtLeastProduct { a: 1, b: 2 },
            SafePred::SizeFitsWritable { ptr: 0, elem: 1 },
            SafePred::SizeFitsReadable { ptr: 0, elem: 1 },
            SafePred::SizeBelow(4096),
            SafePred::IntNonZero,
            SafePred::IntInRange { min: -1, max: 255 },
            SafePred::PtrToCStrOrNull,
            SafePred::ValidFuncPtr,
            SafePred::ValidFilePtr,
            SafePred::NullOr(Box::new(SafePred::CStr)),
            SafePred::HeapChunkOrNull,
        ];
        for p in preds {
            // Every predicate has a deterministic suggestion (possibly
            // `Unfixable` — that, too, is a decision).
            let h1 = repair_hint(&p);
            let h2 = repair_hint(&p);
            assert_eq!(h1, h2, "{p}");
        }
    }

    #[test]
    fn unfixable_only_where_no_safe_default_exists() {
        assert_eq!(repair_hint(&SafePred::ValidFuncPtr), RepairHint::Unfixable);
        assert_eq!(repair_hint(&SafePred::ValidFilePtr), RepairHint::Unfixable);
        assert_ne!(repair_hint(&SafePred::CStr), RepairHint::Unfixable);
        assert_ne!(repair_hint(&SafePred::HeapChunkOrNull), RepairHint::Unfixable);
    }

    #[test]
    fn relational_repairs_reference_the_right_argument() {
        assert_eq!(
            repair_hint(&SafePred::HoldsCStrOf { src: 3 }),
            RepairHint::FitDestToSrc { src: 3 }
        );
        assert_eq!(
            repair_hint(&SafePred::WritableAtLeastArg { size: 1, elem: 2 }),
            RepairHint::ClampCountToExtent { count: 1, elem: 2, writable: true }
        );
        assert_eq!(
            repair_hint(&SafePred::SizeFitsReadable { ptr: 0, elem: 4 }),
            RepairHint::ClampSelfToExtentOf { ptr: 0, elem: 4, writable: false }
        );
    }

    #[test]
    fn int_repairs_target_the_domain() {
        assert_eq!(repair_hint(&SafePred::IntNonZero), RepairHint::SubstituteInt(1));
        assert_eq!(
            repair_hint(&SafePred::IntInRange { min: 0, max: 9 }),
            RepairHint::ClampSelfRange { min: 0, max: 9 }
        );
        assert_eq!(repair_hint(&SafePred::SizeBelow(10)), RepairHint::ClampSelfBelow(10));
    }
}
