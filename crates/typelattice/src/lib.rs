//! # typelattice — the Ballista-style argument type hierarchy
//!
//! HEALERS derives a library's *robust API* by probing each function
//! "with a hierarchy of function types until it finds one that does not
//! result in robustness failures" (paper §2.2). This crate is that
//! hierarchy:
//!
//! * [`ArgClass`] classifies prototype parameters into injection classes;
//! * [`SafePred`] is the membership predicate of a candidate argument
//!   type — evaluated both by the injector (to generate members) and by
//!   the generated robustness wrapper (to reject non-members at run time);
//! * [`values_for`] materialises adversarial members of a type inside a
//!   scratch process; [`benign_value`] pins parameters not under test;
//! * [`plan`] builds the full ladder (weakest type first, relational
//!   types last) for every parameter of a prototype.
//!
//! ```
//! use cdecl::{parse_prototype, TypedefTable};
//! use typelattice::plan;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = TypedefTable::with_builtins();
//! let proto = parse_prototype("char *strcpy(char *dest, const char *src);", &t)?;
//! let plans = plan(&proto);
//! // dest's strongest candidate type is relational: it must hold src.
//! assert_eq!(plans[0].ladder.last().unwrap().name, "holds-cstr(arg2)");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod class;
mod extent;
mod gen;
mod hints;
mod ladder;
mod pred;
mod repair;

pub use api::{Confidence, RobustApi, RobustFunction};
pub use class::{classify, classify_params, ArgClass};
pub use extent::{ExtentClass, ProofStep, SubstFamily, SubstitutionPlan};
pub use gen::{benign_value, trunc_int, values_for, GenCx};
pub use hints::LadderHints;
pub use ladder::{ladder_for, plan, ParamPlan, Rung};
pub use pred::{peek_cstr_len, SafePred, CSTR_SCAN_CAP};
pub use repair::{repair_hint, RepairHint};
