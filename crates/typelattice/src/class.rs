//! Classifying prototype parameters into injection classes.

use cdecl::{CType, Prototype};

/// The injection class of one parameter — determines which candidate-type
/// ladder the fault injector climbs (paper §2.2: "repeatedly probing the
/// function with a hierarchy of function types").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgClass {
    /// `const char *` — an input C string.
    CStrIn,
    /// `char *` — an output/scratch string buffer.
    CStrOut,
    /// A read-only data pointer with element size (e.g. `const void *`,
    /// `const double *`).
    PtrIn(u64),
    /// A writable data pointer with element size.
    PtrOut(u64),
    /// `char **` — a pointer to a string pointer (endptr/saveptr/stringp).
    CStrPtrPtr,
    /// A function pointer (qsort comparator, atexit handler).
    FuncPtr,
    /// `FILE *`.
    FilePtr,
    /// Any integer scalar (int, long, char promoted, wint_t ...), with
    /// its ABI width in bytes — values are truncated to this width at the
    /// call boundary, exactly as registers are.
    Int(u64),
    /// `size_t`-shaped counts and lengths.
    Size,
    /// `double` / `float`.
    Float,
}

/// Classifies one parameter type.
pub fn classify(ty: &CType) -> ArgClass {
    match ty {
        CType::Ptr { pointee, const_pointee } => match &**pointee {
            CType::Char { .. } if *const_pointee => ArgClass::CStrIn,
            CType::Char { .. } => ArgClass::CStrOut,
            CType::Ptr { pointee: inner, .. } if matches!(**inner, CType::Char { .. }) => {
                ArgClass::CStrPtrPtr
            }
            CType::Named(n) if n == "FILE" => ArgClass::FilePtr,
            other => {
                let elem = other.size().unwrap_or(1);
                if *const_pointee {
                    ArgClass::PtrIn(elem)
                } else {
                    ArgClass::PtrOut(elem)
                }
            }
        },
        CType::Array { elem, .. } => ArgClass::PtrOut(elem.size().unwrap_or(1)),
        CType::FuncPtr { .. } => ArgClass::FuncPtr,
        CType::Float | CType::Double => ArgClass::Float,
        CType::Int { signed: false, width } if width.size() == 8 => ArgClass::Size,
        CType::Char { .. } | CType::Int { .. } => ArgClass::Int(ty.size().unwrap_or(8)),
        CType::Void | CType::Named(_) => ArgClass::Int(8),
    }
}

/// Classifies every parameter of a prototype.
pub fn classify_params(proto: &Prototype) -> Vec<ArgClass> {
    proto.params.iter().map(|p| classify(&p.ty)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn classes(proto: &str) -> Vec<ArgClass> {
        let t = TypedefTable::with_builtins();
        classify_params(&parse_prototype(proto, &t).unwrap())
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            classes("char *strcpy(char *dest, const char *src);"),
            vec![ArgClass::CStrOut, ArgClass::CStrIn]
        );
        assert_eq!(classes("size_t strlen(const char *s);"), vec![ArgClass::CStrIn]);
        assert_eq!(
            classes("char *strncpy(char *dest, const char *src, size_t n);"),
            vec![ArgClass::CStrOut, ArgClass::CStrIn, ArgClass::Size]
        );
    }

    #[test]
    fn memory_functions() {
        assert_eq!(
            classes("void *memcpy(void *dest, const void *src, size_t n);"),
            vec![ArgClass::PtrOut(1), ArgClass::PtrIn(1), ArgClass::Size]
        );
    }

    #[test]
    fn typed_pointers() {
        assert_eq!(
            classes("double mnorm(const double *vec, size_t n);"),
            vec![ArgClass::PtrIn(8), ArgClass::Size]
        );
        assert_eq!(classes("int rand_r(unsigned int *seedp);"), vec![ArgClass::PtrOut(4)]);
        assert_eq!(classes("time_t time(time_t *tloc);"), vec![ArgClass::PtrOut(8)]);
    }

    #[test]
    fn pointer_to_string_pointer() {
        assert_eq!(
            classes("long strtol(const char *nptr, char **endptr, int base);"),
            vec![ArgClass::CStrIn, ArgClass::CStrPtrPtr, ArgClass::Int(4)]
        );
    }

    #[test]
    fn function_and_file_pointers() {
        let c = classes(
            "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));",
        );
        assert_eq!(c[3], ArgClass::FuncPtr);
        assert_eq!(classes("int fclose(FILE *stream);"), vec![ArgClass::FilePtr]);
    }

    #[test]
    fn scalars() {
        assert_eq!(classes("int isalpha(int c);"), vec![ArgClass::Int(4)]);
        assert_eq!(classes("int abs(int j);"), vec![ArgClass::Int(4)]);
        assert_eq!(classes("double msqrt(double x);"), vec![ArgClass::Float]);
        // wint_t is unsigned int (4 bytes) — Int, not Size.
        assert_eq!(classes("wint_t towlower(wint_t wc);"), vec![ArgClass::Int(4)]);
        // wctrans_t is long — Int.
        assert_eq!(
            classes("wint_t towctrans(wint_t wc, wctrans_t desc);"),
            vec![ArgClass::Int(4), ArgClass::Int(8)]
        );
    }
}
