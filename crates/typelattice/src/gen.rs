//! Fault-injection value generators: for every candidate type, produce
//! the *nastiest members of that type* — plus the benign values used to
//! pin the parameters that are not under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use simproc::{layout, CVal, Fault, Proc, VirtAddr};

use crate::class::ArgClass;
use crate::pred::{peek_cstr_len, SafePred};

/// Generation context: a scratch process plus a deterministic RNG.
#[derive(Debug)]
pub struct GenCx<'a> {
    /// The scratch process values are materialised into.
    pub proc: &'a mut Proc,
    rng: StdRng,
}

/// A benign comparator for function-pointer parameters: compares one byte
/// at each pointer (never writes, never strays).
fn benign_cmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let a = p.read_u8(args.first().copied().unwrap_or(CVal::NULL).as_ptr())?;
    let b = p.read_u8(args.get(1).copied().unwrap_or(CVal::NULL).as_ptr())?;
    Ok(CVal::Int(a as i64 - b as i64))
}

impl<'a> GenCx<'a> {
    /// Creates a context with a seeded RNG.
    pub fn new(proc: &'a mut Proc, seed: u64) -> Self {
        GenCx { proc, rng: StdRng::seed_from_u64(seed) }
    }

    /// A heap buffer of exactly `n` requested bytes (usable size may
    /// round up to the allocator's granularity).
    pub fn heap_buf(&mut self, n: u64) -> VirtAddr {
        let ptr = simlibc::heap::malloc(self.proc, n).expect("scratch malloc");
        assert!(!ptr.is_null(), "scratch heap exhausted");
        ptr
    }

    /// A heap buffer filled with a byte pattern.
    pub fn heap_buf_filled(&mut self, n: u64, fill: u8) -> VirtAddr {
        let ptr = self.heap_buf(n);
        let bytes = vec![fill; n as usize];
        self.proc.mem.write_bytes(ptr, &bytes).expect("fill");
        ptr
    }

    /// A NUL-terminated string in the data segment.
    pub fn cstr(&mut self, s: &str) -> VirtAddr {
        self.proc.alloc_cstr(s)
    }

    /// A string of `len` random printable bytes.
    pub fn random_cstr(&mut self, len: usize) -> VirtAddr {
        let bytes: Vec<u8> = (0..len).map(|_| self.rng.gen_range(0x21..0x7f)).collect();
        let mut with_nul = bytes;
        with_nul.push(0);
        self.proc.alloc_data(&with_nul)
    }

    /// The benign comparator's address (registered on demand).
    pub fn benign_func(&mut self) -> VirtAddr {
        self.proc.register_host_fn("__healers_benign_cmp", benign_cmp)
    }

    /// A live `FILE*` opened on a scratch kernel file.
    pub fn file_handle(&mut self) -> CVal {
        self.proc
            .kernel
            .install_file("/tmp/healers-scratch", b"scratch file contents\n".to_vec());
        let path = self.cstr("/tmp/healers-scratch");
        let mode = self.cstr("r");
        simlibc::stdio::fopen(self.proc, &[CVal::Ptr(path), CVal::Ptr(mode)])
            .expect("scratch fopen")
    }

    /// A writable 8-byte cell initialised to `inner`.
    pub fn ptr_cell(&mut self, inner: VirtAddr) -> VirtAddr {
        let cell = self.proc.alloc_data_zeroed(8);
        self.proc.mem.write_ptr(cell, inner).expect("cell");
        cell
    }
}

/// The benign (valid, generous) value used to pin a parameter while
/// another parameter is under test.
pub fn benign_value(class: ArgClass, cx: &mut GenCx<'_>) -> CVal {
    match class {
        ArgClass::CStrIn => CVal::Ptr(cx.cstr("hello")),
        ArgClass::CStrOut => CVal::Ptr(cx.heap_buf_filled(4096, 0)),
        ArgClass::PtrIn(elem) => CVal::Ptr(cx.heap_buf_filled(64 * elem.max(1), 0)),
        ArgClass::PtrOut(elem) => CVal::Ptr(cx.heap_buf_filled(64 * elem.max(1), 0)),
        ArgClass::CStrPtrPtr => {
            let s = cx.cstr("alpha,beta");
            CVal::Ptr(cx.ptr_cell(s))
        }
        ArgClass::FuncPtr => CVal::Ptr(cx.benign_func()),
        ArgClass::FilePtr => cx.file_handle(),
        ArgClass::Int(_) => CVal::Int(65),
        ArgClass::Size => CVal::Int(4),
        ArgClass::Float => CVal::F64(1.0),
    }
}

/// The ABI width of an integer class (8 for anything non-integer).
fn int_width(class: ArgClass) -> u64 {
    match class {
        ArgClass::Int(b) => b,
        _ => 8,
    }
}

/// Sign-extending truncation to `bytes` — what the register file does to
/// an over-wide argument.
pub fn trunc_int(v: i64, bytes: u64) -> i64 {
    match bytes {
        1 => v as i8 as i64,
        2 => v as i16 as i64,
        4 => v as i32 as i64,
        _ => v,
    }
}

/// Truncates, filters and dedups raw integer candidates.
fn int_values(raw: &[i64], bytes: u64, keep: impl Fn(i64) -> bool) -> Vec<CVal> {
    let mut seen = Vec::new();
    for &r in raw {
        let t = trunc_int(r, bytes);
        if keep(t) && !seen.contains(&t) {
            seen.push(t);
        }
    }
    seen.into_iter().map(CVal::Int).collect()
}

/// Pointer-shaped garbage common to every pointer class's weak rungs.
fn pointer_nasties(cx: &mut GenCx<'_>, include_null: bool) -> Vec<CVal> {
    let mut out = Vec::new();
    if include_null {
        out.push(CVal::NULL);
    }
    out.push(CVal::Ptr(layout::WILD_ADDR)); // unmapped
    out.push(CVal::Ptr(VirtAddr::new(0x8))); // near-null
    out.push(CVal::Ptr(layout::TEXT_BASE.add(4))); // executable, unwritable
    out.push(CVal::Int(-1)); // 0xffff...f as a pointer
    let lit = cx.proc.alloc_cstr_literal("read-only literal");
    out.push(CVal::Ptr(lit)); // mapped but unwritable
    let data = cx.proc.alloc_data_zeroed(16);
    out.push(CVal::Ptr(data.add(1))); // misaligned but valid
    out
}

/// Generates adversarial members of the candidate type `(class, pred)`.
/// `pinned` holds the values of the other parameters (benign during the
/// ladder search), which relational predicates consult.
pub fn values_for(
    class: ArgClass,
    pred: &SafePred,
    cx: &mut GenCx<'_>,
    pinned: &[CVal],
) -> Vec<CVal> {
    match pred {
        SafePred::Always => match class {
            ArgClass::Int(bytes) => int_values(
                &[
                    0,
                    1,
                    -1,
                    127,
                    255,
                    256,
                    100_000,
                    -100_000,
                    i32::MAX as i64,
                    i32::MIN as i64,
                    i64::MAX,
                    i64::MIN,
                ],
                bytes,
                |_| true,
            ),
            ArgClass::Size => vec![
                CVal::Int(0),
                CVal::Int(1),
                CVal::Int(4096),
                CVal::Int(1 << 20),
                CVal::Int(1 << 31),
                CVal::Int(i64::MAX),
                CVal::Int(-1), // (size_t)-1
            ],
            ArgClass::Float => vec![
                CVal::F64(0.0),
                CVal::F64(-1.5),
                CVal::F64(f64::NAN),
                CVal::F64(f64::INFINITY),
                CVal::F64(f64::NEG_INFINITY),
                CVal::F64(f64::MAX),
                CVal::F64(f64::MIN_POSITIVE),
            ],
            _ => pointer_nasties(cx, true),
        },
        SafePred::NonNull => pointer_nasties(cx, false),
        SafePred::CStr => vec![
            CVal::Ptr(cx.cstr("")),
            CVal::Ptr(cx.cstr("a")),
            CVal::Ptr(cx.random_cstr(255)),
            CVal::Ptr(cx.random_cstr(4096)),
            CVal::Ptr(cx.proc.alloc_cstr_literal("literal in rodata")),
            CVal::Ptr(cx.proc.alloc_data(&[0xff, 0xfe, 0x01, 0x7f, 0x00])),
        ],
        SafePred::Readable(n) => vec![
            CVal::Ptr(cx.heap_buf_filled(*n, 0xAB)),
            CVal::Ptr(cx.proc.alloc_cstr_literal("0123456789abcdef")),
        ],
        SafePred::Writable(n) => {
            vec![CVal::Ptr(cx.heap_buf(*n)), CVal::Ptr(cx.heap_buf((*n).max(1) * 4)), {
                let d = cx.proc.alloc_data_zeroed((*n).max(8));
                CVal::Ptr(d)
            }]
        }
        SafePred::HoldsCStrOf { src } => {
            let len = pinned
                .get(*src)
                .and_then(|v| peek_cstr_len(cx.proc, v.as_ptr()))
                .unwrap_or(8);
            vec![
                CVal::Ptr(cx.heap_buf(len + 1)), // exact fit — the boundary
                CVal::Ptr(cx.heap_buf(len + 64)),
                CVal::Ptr(cx.heap_buf(4096.max(len + 1))),
            ]
        }
        SafePred::WritableAtLeastArg { size, elem } => {
            let need = pinned
                .get(*size)
                .map(|v| v.as_usize())
                .unwrap_or(4)
                .saturating_mul(*elem)
                .min(1 << 16);
            vec![CVal::Ptr(cx.heap_buf(need.max(1))), CVal::Ptr(cx.heap_buf(need + 64))]
        }
        SafePred::ReadableAtLeastArg { size, elem } => {
            let need = pinned
                .get(*size)
                .map(|v| v.as_usize())
                .unwrap_or(4)
                .saturating_mul(*elem)
                .min(1 << 16);
            vec![CVal::Ptr(cx.heap_buf_filled(need.max(1), 0x5A))]
        }
        SafePred::WritableAtLeastProduct { a, b }
        | SafePred::ReadableAtLeastProduct { a, b } => {
            let need = pinned
                .get(*a)
                .map(|v| v.as_usize())
                .unwrap_or(4)
                .saturating_mul(pinned.get(*b).map(|v| v.as_usize()).unwrap_or(4))
                .min(1 << 16);
            vec![CVal::Ptr(cx.heap_buf_filled(need.max(1), 0))]
        }
        SafePred::SizeFitsWritable { ptr, elem }
        | SafePred::SizeFitsReadable { ptr, elem } => {
            let extent = pinned
                .get(*ptr)
                .and_then(|v| {
                    use simproc::{ExtentOracle, RegionOracle};
                    let o = RegionOracle::new();
                    match pred {
                        SafePred::SizeFitsWritable { .. } => {
                            o.writable_extent(cx.proc, v.as_ptr())
                        }
                        _ => o.readable_extent(cx.proc, v.as_ptr()),
                    }
                })
                .unwrap_or(0)
                / (*elem).max(1);
            vec![CVal::Int(0), CVal::Int((extent / 2) as i64), CVal::Int(extent as i64)]
        }
        SafePred::SizeBelow(n) => {
            vec![CVal::Int(0), CVal::Int(1), CVal::Int((*n as i64 - 1).max(0))]
        }
        SafePred::IntNonZero => {
            let bytes = int_width(class);
            int_values(&[1, -1, 255, 100_000, -100_000, i64::MAX, i64::MIN], bytes, |v| {
                v != 0
            })
        }
        SafePred::IntInRange { min, max } => {
            let bytes = int_width(class);
            // Endpoints, zero, and a log-spaced sweep — range interiors
            // hide crashes (ctype's table gap) that endpoints miss.
            let mut raw = vec![*min, *max, 0, min + (max - min) / 2];
            let mut step = 1i64;
            while step <= *max {
                raw.push(step);
                raw.push(-step);
                step = step.saturating_mul(4);
            }
            int_values(&raw, bytes, |v| (*min..=*max).contains(&v))
        }
        SafePred::PtrToCStrOrNull => {
            let s = cx.cstr("tok1,tok2");
            let with_str = cx.ptr_cell(s);
            let with_null = cx.ptr_cell(VirtAddr::NULL);
            let empty = cx.cstr("");
            let with_empty = cx.ptr_cell(empty);
            vec![CVal::Ptr(with_str), CVal::Ptr(with_null), CVal::Ptr(with_empty)]
        }
        SafePred::ValidFuncPtr => vec![CVal::Ptr(cx.benign_func())],
        SafePred::ValidFilePtr => vec![cx.file_handle()],
        SafePred::NullOr(inner) => {
            // NULL first: it is the member most likely to crash, and
            // callers may cap how many values they draw from a rung.
            let mut v = vec![CVal::NULL];
            v.extend(values_for(class, inner, cx, pinned));
            v
        }
        SafePred::HeapChunkOrNull => {
            let a = cx.heap_buf(24);
            let b = cx.heap_buf(300);
            vec![CVal::Ptr(a), CVal::Ptr(b), CVal::NULL]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::testutil::libc_proc;
    use simproc::RegionOracle;

    fn check_all(class: ArgClass, pred: SafePred) {
        let mut p = libc_proc();
        let mut cx = GenCx::new(&mut p, 7);
        let pinned = [CVal::Int(4), CVal::Int(4), CVal::Int(4), CVal::Int(4)];
        let values = values_for(class, &pred, &mut cx, &pinned);
        assert!(!values.is_empty());
        let oracle = RegionOracle::new();
        for v in values {
            let mut args = pinned.to_vec();
            args[0] = v;
            assert!(
                pred.check(cx.proc, &oracle, &args, 0),
                "{pred}: generated value {v} violates its own type"
            );
        }
    }

    #[test]
    fn generated_values_satisfy_their_predicate() {
        check_all(ArgClass::CStrIn, SafePred::CStr);
        check_all(ArgClass::CStrOut, SafePred::Writable(1));
        check_all(ArgClass::CStrOut, SafePred::Writable(64));
        check_all(ArgClass::PtrIn(8), SafePred::Readable(8));
        check_all(ArgClass::Int(4), SafePred::IntInRange { min: -1, max: 255 });
        check_all(ArgClass::Size, SafePred::SizeBelow(1 << 16));
        check_all(ArgClass::CStrPtrPtr, SafePred::PtrToCStrOrNull);
        check_all(ArgClass::FuncPtr, SafePred::ValidFuncPtr);
        check_all(ArgClass::FilePtr, SafePred::ValidFilePtr);
    }

    #[test]
    fn relational_values_satisfy_against_pinned() {
        let mut p = libc_proc();
        let mut cx = GenCx::new(&mut p, 7);
        let src = CVal::Ptr(cx.cstr("twelve chars"));
        let pinned = [CVal::NULL, src];
        let pred = SafePred::HoldsCStrOf { src: 1 };
        let values = values_for(ArgClass::CStrOut, &pred, &mut cx, &pinned);
        let oracle = RegionOracle::new();
        for v in values {
            let args = [v, src];
            assert!(pred.check(cx.proc, &oracle, &args, 0), "{v}");
        }
    }

    #[test]
    fn nasty_pointers_are_nasty() {
        let mut p = libc_proc();
        let mut cx = GenCx::new(&mut p, 7);
        let values = values_for(ArgClass::CStrIn, &SafePred::Always, &mut cx, &[]);
        assert!(values.iter().any(|v| v.is_null()));
        assert!(values.contains(&CVal::Ptr(layout::WILD_ADDR)));
        let nonnull = values_for(ArgClass::CStrIn, &SafePred::NonNull, &mut cx, &[]);
        assert!(nonnull.iter().all(|v| !v.is_null()));
    }

    #[test]
    fn benign_values_are_valid() {
        let mut p = libc_proc();
        let mut cx = GenCx::new(&mut p, 7);
        let oracle = RegionOracle::new();
        let b = benign_value(ArgClass::CStrIn, &mut cx);
        assert!(SafePred::CStr.check(cx.proc, &oracle, &[b], 0));
        let b = benign_value(ArgClass::CStrOut, &mut cx);
        assert!(SafePred::Writable(4096).check(cx.proc, &oracle, &[b], 0));
        let b = benign_value(ArgClass::FuncPtr, &mut cx);
        assert!(SafePred::ValidFuncPtr.check(cx.proc, &oracle, &[b], 0));
        let b = benign_value(ArgClass::FilePtr, &mut cx);
        assert!(SafePred::ValidFilePtr.check(cx.proc, &oracle, &[b], 0));
        let b = benign_value(ArgClass::CStrPtrPtr, &mut cx);
        assert!(SafePred::PtrToCStrOrNull.check(cx.proc, &oracle, &[b], 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut p = libc_proc();
            let mut cx = GenCx::new(&mut p, 99);
            let v = values_for(ArgClass::CStrIn, &SafePred::CStr, &mut cx, &[]);
            v.iter()
                .map(|v| {
                    peek_cstr_len(cx.proc, v.as_ptr())
                        .map(|l| cx.proc.mem.peek_bytes(v.as_ptr(), l).unwrap())
                        .unwrap_or_default()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }
}
