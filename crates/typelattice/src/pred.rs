//! Runtime predicates: what it *means* for a value to belong to a
//! candidate argument type.
//!
//! Each predicate is used twice, which is the heart of HEALERS:
//!
//! 1. the **injector** generates values satisfying a predicate, probing
//!    whether the library survives every member of the type;
//! 2. the **robustness wrapper**'s `arg_check` micro-generator evaluates
//!    the same predicate before each call, rejecting arguments outside
//!    the weakest robust type the injector found.

use std::fmt;

use simlibc::state::FILE_MAGIC;
use simproc::{CVal, CallTarget, ExtentOracle, Proc, VirtAddr};

/// Scan cap for host-side C-string measurement.
pub const CSTR_SCAN_CAP: u64 = 1 << 20;

/// A checkable property of one argument (possibly relative to others).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafePred {
    /// Any value is acceptable.
    Always,
    /// Pointer must be non-null.
    NonNull,
    /// At least `n` bytes must be readable.
    Readable(u64),
    /// At least `n` bytes must be writable.
    Writable(u64),
    /// Must point at a NUL-terminated readable string (NUL within the
    /// scan cap).
    CStr,
    /// Writable region must hold the C string at argument `src`
    /// (including its NUL) — the `strcpy` contract.
    HoldsCStrOf {
        /// Index of the source-string argument.
        src: usize,
    },
    /// Writable region must be at least `arg[size] * elem` bytes.
    WritableAtLeastArg {
        /// Index of the size argument.
        size: usize,
        /// Element size multiplier.
        elem: u64,
    },
    /// Readable region must be at least `arg[size] * elem` bytes.
    ReadableAtLeastArg {
        /// Index of the size argument.
        size: usize,
        /// Element size multiplier.
        elem: u64,
    },
    /// Writable region must be at least `arg[a] * arg[b]` bytes
    /// (the `fread` shape).
    WritableAtLeastProduct {
        /// First factor argument index.
        a: usize,
        /// Second factor argument index.
        b: usize,
    },
    /// Readable region must be at least `arg[a] * arg[b]` bytes.
    ReadableAtLeastProduct {
        /// First factor argument index.
        a: usize,
        /// Second factor argument index.
        b: usize,
    },
    /// Size value must fit within the writable extent of the pointer at
    /// `ptr` (times `elem`).
    SizeFitsWritable {
        /// Index of the buffer argument.
        ptr: usize,
        /// Element size multiplier.
        elem: u64,
    },
    /// Size value must fit within the readable extent of the pointer at
    /// `ptr` (times `elem`).
    SizeFitsReadable {
        /// Index of the buffer argument.
        ptr: usize,
        /// Element size multiplier.
        elem: u64,
    },
    /// Size must be below a fixed sanity bound.
    SizeBelow(u64),
    /// Integer must be non-zero (the `div` divisor contract).
    IntNonZero,
    /// Integer must lie in an inclusive range.
    IntInRange {
        /// Lower bound.
        min: i64,
        /// Upper bound.
        max: i64,
    },
    /// Must be a pointer whose 8-byte cell is writable and whose current
    /// value is NULL or a readable C string (the `strsep` contract).
    PtrToCStrOrNull,
    /// Must resolve to a registered function entry point.
    ValidFuncPtr,
    /// Must point at a live `FILE` object (magic intact).
    ValidFilePtr,
    /// NULL is acceptable, otherwise the inner predicate must hold —
    /// for parameters with optional-NULL semantics (`time(NULL)`,
    /// `strtol`'s `endptr`).
    NullOr(Box<SafePred>),
    /// NULL, or a pointer into the heap arena whose chunk header is
    /// plausible — the contract of `free`/`realloc`, which no
    /// per-argument extent check can express.
    HeapChunkOrNull,
}

impl fmt::Display for SafePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafePred::Always => write!(f, "any value"),
            SafePred::NonNull => write!(f, "non-null pointer"),
            SafePred::Readable(n) => write!(f, "pointer to >= {n} readable bytes"),
            SafePred::Writable(n) => write!(f, "pointer to >= {n} writable bytes"),
            SafePred::CStr => write!(f, "readable NUL-terminated string"),
            SafePred::HoldsCStrOf { src } => {
                write!(f, "writable buffer >= strlen(arg{})+1", src + 1)
            }
            SafePred::WritableAtLeastArg { size, elem } => {
                write!(f, "writable buffer >= arg{}*{elem}", size + 1)
            }
            SafePred::ReadableAtLeastArg { size, elem } => {
                write!(f, "readable buffer >= arg{}*{elem}", size + 1)
            }
            SafePred::WritableAtLeastProduct { a, b } => {
                write!(f, "writable buffer >= arg{}*arg{}", a + 1, b + 1)
            }
            SafePred::ReadableAtLeastProduct { a, b } => {
                write!(f, "readable buffer >= arg{}*arg{}", a + 1, b + 1)
            }
            SafePred::SizeFitsWritable { ptr, elem } => {
                write!(f, "size <= writable extent of arg{} / {elem}", ptr + 1)
            }
            SafePred::SizeFitsReadable { ptr, elem } => {
                write!(f, "size <= readable extent of arg{} / {elem}", ptr + 1)
            }
            SafePred::SizeBelow(n) => write!(f, "size < {n}"),
            SafePred::IntNonZero => write!(f, "non-zero integer"),
            SafePred::IntInRange { min, max } => write!(f, "int in [{min}, {max}]"),
            SafePred::PtrToCStrOrNull => write!(f, "pointer to (NULL or string) cell"),
            SafePred::ValidFuncPtr => write!(f, "valid function pointer"),
            SafePred::ValidFilePtr => write!(f, "valid FILE pointer"),
            SafePred::NullOr(inner) => write!(f, "NULL or {inner}"),
            SafePred::HeapChunkOrNull => write!(f, "NULL or live heap allocation"),
        }
    }
}

/// Host-side `strlen` via the debugger view: returns the string length if
/// a NUL appears within the cap, else `None`. Never faults.
pub fn peek_cstr_len(proc: &Proc, addr: VirtAddr) -> Option<u64> {
    if addr.is_null() {
        return None;
    }
    let mut len = 0u64;
    let mut cur = addr;
    // Zero-copy scan: each `peek_slice` yields the mapped bytes up to the
    // containing region's end; the loop continues into an adjacent region
    // when one is mapped there. At most `CSTR_SCAN_CAP + 1` bytes are ever
    // examined, so a NUL at position `CSTR_SCAN_CAP` is still found while
    // anything longer reports "unterminated".
    loop {
        // Ran off the end of the mapping without a terminator? `None`.
        let slice = proc.mem.peek_slice(cur)?;
        let budget = CSTR_SCAN_CAP + 1 - len;
        let take = (slice.len() as u64).min(budget) as usize;
        if let Some(pos) = slice[..take].iter().position(|b| *b == 0) {
            return Some(len + pos as u64);
        }
        len += take as u64;
        if len > CSTR_SCAN_CAP {
            return None;
        }
        cur = cur.add(take as u64);
    }
}

fn writable(oracle: &dyn ExtentOracle, proc: &Proc, v: CVal) -> u64 {
    oracle.writable_extent(proc, v.as_ptr()).unwrap_or(0)
}

fn readable(oracle: &dyn ExtentOracle, proc: &Proc, v: CVal) -> u64 {
    oracle.readable_extent(proc, v.as_ptr()).unwrap_or(0)
}

impl SafePred {
    /// Evaluates the predicate for argument `idx` of `args`. Host-side
    /// and fault-free: this is what the wrapper runs *instead of letting
    /// the library crash*.
    pub fn check(
        &self,
        proc: &Proc,
        oracle: &dyn ExtentOracle,
        args: &[CVal],
        idx: usize,
    ) -> bool {
        let own = match args.get(idx) {
            Some(v) => *v,
            None => return false,
        };
        let arg_u64 = |i: usize| args.get(i).map(|v| v.as_usize()).unwrap_or(0);
        match self {
            SafePred::Always => true,
            SafePred::NonNull => !own.is_null(),
            SafePred::Readable(n) => readable(oracle, proc, own) >= *n,
            SafePred::Writable(n) => writable(oracle, proc, own) >= *n,
            SafePred::CStr => peek_cstr_len(proc, own.as_ptr()).is_some(),
            SafePred::HoldsCStrOf { src } => {
                let Some(src_val) = args.get(*src) else { return false };
                let Some(len) = peek_cstr_len(proc, src_val.as_ptr()) else {
                    return false;
                };
                // Exact `size_right`-style bound: the copy lands inside
                // the containing object, not merely inside writable pages
                // — an overflow is *prevented* here, not canary-detected.
                oracle.extent_right(proc, own.as_ptr()).unwrap_or(0) > len
            }
            SafePred::WritableAtLeastArg { size, elem } => {
                let need = arg_u64(*size).saturating_mul(*elem);
                writable(oracle, proc, own) >= need
            }
            SafePred::ReadableAtLeastArg { size, elem } => {
                let need = arg_u64(*size).saturating_mul(*elem);
                readable(oracle, proc, own) >= need
            }
            SafePred::WritableAtLeastProduct { a, b } => {
                let need = arg_u64(*a).saturating_mul(arg_u64(*b));
                writable(oracle, proc, own) >= need
            }
            SafePred::ReadableAtLeastProduct { a, b } => {
                let need = arg_u64(*a).saturating_mul(arg_u64(*b));
                readable(oracle, proc, own) >= need
            }
            SafePred::SizeFitsWritable { ptr, elem } => {
                let Some(pv) = args.get(*ptr) else { return false };
                own.as_usize().saturating_mul(*elem) <= writable(oracle, proc, *pv)
            }
            SafePred::SizeFitsReadable { ptr, elem } => {
                let Some(pv) = args.get(*ptr) else { return false };
                own.as_usize().saturating_mul(*elem) <= readable(oracle, proc, *pv)
            }
            SafePred::SizeBelow(n) => own.as_usize() < *n,
            SafePred::IntNonZero => own.as_int() != 0,
            SafePred::IntInRange { min, max } => (*min..=*max).contains(&own.as_int()),
            SafePred::PtrToCStrOrNull => {
                if writable(oracle, proc, own) < 8 {
                    return false;
                }
                match proc.mem.read_ptr(own.as_ptr()) {
                    Ok(inner) if inner.is_null() => true,
                    Ok(inner) => peek_cstr_len(proc, inner).is_some(),
                    Err(_) => false,
                }
            }
            SafePred::ValidFuncPtr => {
                matches!(proc.resolve_call(own.as_ptr()), CallTarget::Function(_))
            }
            SafePred::ValidFilePtr => proc.mem.peek_u64(own.as_ptr()) == Some(FILE_MAGIC),
            SafePred::NullOr(inner) => {
                own.is_null() || inner.check(proc, oracle, args, idx)
            }
            SafePred::HeapChunkOrNull => {
                if own.is_null() {
                    return true;
                }
                let ptr = own.as_ptr();
                if !simlibc::heap::in_heap(proc, ptr) {
                    return false;
                }
                // The pointer must be the payload of a *live* chunk:
                // rejects interior pointers, the wilderness, and —
                // crucially — already-freed chunks (double free).
                // `live_payload` is the alloc-free equivalent of walking
                // the heap and matching payload/free/top.
                simlibc::heap::live_payload(proc, ptr)
            }
        }
    }

    /// Indices of the *other* arguments this predicate reads when it is
    /// evaluated — the dataflow edges the wrapper-soundness lint walks to
    /// catch checks evaluated after one of their inputs was mutated.
    /// Empty for non-relational predicates.
    pub fn referenced_args(&self) -> Vec<usize> {
        match self {
            SafePred::HoldsCStrOf { src } => vec![*src],
            SafePred::WritableAtLeastArg { size, .. }
            | SafePred::ReadableAtLeastArg { size, .. } => vec![*size],
            SafePred::WritableAtLeastProduct { a, b }
            | SafePred::ReadableAtLeastProduct { a, b } => vec![*a, *b],
            SafePred::SizeFitsWritable { ptr, .. }
            | SafePred::SizeFitsReadable { ptr, .. } => vec![*ptr],
            SafePred::NullOr(inner) => inner.referenced_args(),
            _ => Vec::new(),
        }
    }

    /// `true` if this predicate references other arguments (a relational
    /// type derived in the validation pass).
    pub fn is_relational(&self) -> bool {
        if let SafePred::NullOr(inner) = self {
            return inner.is_relational();
        }
        matches!(
            self,
            SafePred::HoldsCStrOf { .. }
                | SafePred::WritableAtLeastArg { .. }
                | SafePred::ReadableAtLeastArg { .. }
                | SafePred::WritableAtLeastProduct { .. }
                | SafePred::ReadableAtLeastProduct { .. }
                | SafePred::SizeFitsWritable { .. }
                | SafePred::SizeFitsReadable { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlibc::testutil::libc_proc;
    use simproc::RegionOracle;

    #[test]
    fn basic_pointer_preds() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        let s = p.alloc_cstr("abc");
        let wild = CVal::Ptr(simproc::layout::WILD_ADDR);
        assert!(SafePred::Always.check(&p, &o, &[wild], 0));
        assert!(!SafePred::NonNull.check(&p, &o, &[CVal::NULL], 0));
        assert!(SafePred::NonNull.check(&p, &o, &[wild], 0));
        assert!(SafePred::CStr.check(&p, &o, &[CVal::Ptr(s)], 0));
        assert!(!SafePred::CStr.check(&p, &o, &[wild], 0));
        assert!(!SafePred::CStr.check(&p, &o, &[CVal::NULL], 0));
        assert!(SafePred::Readable(4).check(&p, &o, &[CVal::Ptr(s)], 0));
        assert!(SafePred::Writable(4).check(&p, &o, &[CVal::Ptr(s)], 0));
        let lit = p.alloc_cstr_literal("ro");
        assert!(SafePred::Readable(3).check(&p, &o, &[CVal::Ptr(lit)], 0));
        assert!(!SafePred::Writable(1).check(&p, &o, &[CVal::Ptr(lit)], 0));
    }

    #[test]
    fn unterminated_string_fails_cstr() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        // Fill heap start with non-NUL bytes over the scan cap? The cap
        // is 1 MiB; the heap is smaller, so the scan hits unmapped memory
        // and returns None.
        let buf = simlibc::heap::malloc(&mut p, 4096).unwrap();
        let junk = vec![b'x'; 4096];
        p.mem.write_bytes(buf, &junk).unwrap();
        // There are zero bytes after the allocation (fresh heap), so this
        // IS terminated. Instead check peek_cstr_len on rodata end.
        assert!(peek_cstr_len(&p, buf).is_some());
        let end = simproc::layout::DATA_BASE.add(simproc::layout::DATA_SIZE).sub(4);
        p.mem.poke_bytes(end, &[1, 1, 1, 1]);
        assert_eq!(peek_cstr_len(&p, end), None);
        assert!(!SafePred::CStr.check(&p, &o, &[CVal::Ptr(end)], 0));
    }

    #[test]
    fn terminated_string_at_mapping_end_is_measured() {
        // Regression: the chunked scan used to peek 256 bytes at a time and
        // gave up wholesale when the chunk crossed the end of the mapping,
        // misjudging strings that ARE terminated within the final bytes.
        let mut p = libc_proc();
        let o = RegionOracle::new();
        let end = simproc::layout::DATA_BASE.add(simproc::layout::DATA_SIZE).sub(4);
        p.mem.poke_bytes(end, &[b'a', b'b', b'c', 0]);
        assert_eq!(peek_cstr_len(&p, end), Some(3));
        assert!(SafePred::CStr.check(&p, &o, &[CVal::Ptr(end)], 0));
    }

    #[test]
    fn holds_cstr_of_models_strcpy() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        let src = p.alloc_cstr("123456789"); // strlen 9, needs 10
        let small = simlibc::heap::malloc(&mut p, 8).unwrap();
        let big = simlibc::heap::malloc(&mut p, 16).unwrap();
        let pred = SafePred::HoldsCStrOf { src: 1 };
        // Note: heap usable size >= request, so "small" may still hold 8..16.
        let small_extent = o.writable_extent(&p, small).unwrap();
        assert!(small_extent >= 8);
        assert!(pred.check(&p, &o, &[CVal::Ptr(big), CVal::Ptr(src)], 0));
        // A 1-byte stack buffer cannot hold it... build via frames.
        p.push_frame("f").unwrap();
        let tiny = p.stack_alloc(4).unwrap();
        // Stack extent includes slack up to ret slot; measure directly:
        let tiny_extent = o.writable_extent(&p, tiny).unwrap();
        if tiny_extent < 10 {
            assert!(!pred.check(&p, &o, &[CVal::Ptr(tiny), CVal::Ptr(src)], 0));
        }
        // Wild source fails the predicate (cannot measure the string).
        assert!(!pred.check(
            &p,
            &o,
            &[CVal::Ptr(big), CVal::Ptr(simproc::layout::WILD_ADDR)],
            0
        ));
    }

    #[test]
    fn size_relations() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        let buf = simlibc::heap::malloc(&mut p, 64).unwrap();
        let extent = o.writable_extent(&p, buf).unwrap();
        let fits = SafePred::SizeFitsWritable { ptr: 0, elem: 1 };
        assert!(fits.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(extent as i64)], 1));
        assert!(!fits.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(extent as i64 + 1)], 1));
        assert!(!fits.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(-1)], 1));

        let watl = SafePred::WritableAtLeastArg { size: 1, elem: 8 };
        assert!(watl.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(extent as i64 / 8)], 0));
        assert!(!watl.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(extent as i64)], 0));

        let prod = SafePred::WritableAtLeastProduct { a: 1, b: 2 };
        assert!(prod.check(&p, &o, &[CVal::Ptr(buf), CVal::Int(8), CVal::Int(8)], 0));
        assert!(!prod.check(
            &p,
            &o,
            &[CVal::Ptr(buf), CVal::Int(1 << 20), CVal::Int(1 << 20)],
            0
        ));
    }

    #[test]
    fn scalar_preds() {
        let p = libc_proc();
        let o = RegionOracle::new();
        let r = SafePred::IntInRange { min: -1, max: 255 };
        assert!(r.check(&p, &o, &[CVal::Int(255)], 0));
        assert!(r.check(&p, &o, &[CVal::Int(-1)], 0));
        assert!(!r.check(&p, &o, &[CVal::Int(256)], 0));
        assert!(!r.check(&p, &o, &[CVal::Int(-2)], 0));
        assert!(SafePred::SizeBelow(10).check(&p, &o, &[CVal::Int(9)], 0));
        assert!(!SafePred::SizeBelow(10).check(&p, &o, &[CVal::Int(-1)], 0));
    }

    #[test]
    fn func_and_file_preds() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        fn cb(_p: &mut Proc, _a: &[CVal]) -> Result<CVal, simproc::Fault> {
            Ok(CVal::Int(0))
        }
        let f = p.register_host_fn("cb", cb);
        assert!(SafePred::ValidFuncPtr.check(&p, &o, &[CVal::Ptr(f)], 0));
        assert!(!SafePred::ValidFuncPtr.check(&p, &o, &[CVal::Int(0x999)], 0));

        // A real FILE via fopen.
        p.kernel.install_file("data", b"x".to_vec());
        let path = p.alloc_cstr("data");
        let mode = p.alloc_cstr("r");
        let file =
            simlibc::stdio::fopen(&mut p, &[CVal::Ptr(path), CVal::Ptr(mode)]).unwrap();
        assert!(SafePred::ValidFilePtr.check(&p, &o, &[file], 0));
        let fake = p.alloc_data_zeroed(16);
        assert!(!SafePred::ValidFilePtr.check(&p, &o, &[CVal::Ptr(fake)], 0));
        assert!(!SafePred::ValidFilePtr.check(&p, &o, &[CVal::NULL], 0));
    }

    #[test]
    fn ptr_to_cstr_or_null() {
        let mut p = libc_proc();
        let o = RegionOracle::new();
        let pred = SafePred::PtrToCStrOrNull;
        let cell = p.alloc_data_zeroed(8);
        assert!(pred.check(&p, &o, &[CVal::Ptr(cell)], 0), "NULL inner ok");
        let s = p.alloc_cstr("str");
        p.mem.write_ptr(cell, s).unwrap();
        assert!(pred.check(&p, &o, &[CVal::Ptr(cell)], 0));
        p.mem.write_u64(cell, simproc::layout::WILD_ADDR.get()).unwrap();
        assert!(!pred.check(&p, &o, &[CVal::Ptr(cell)], 0));
        assert!(!pred.check(&p, &o, &[CVal::NULL], 0));
    }

    #[test]
    fn relational_flag() {
        assert!(SafePred::HoldsCStrOf { src: 0 }.is_relational());
        assert!(SafePred::SizeFitsWritable { ptr: 0, elem: 1 }.is_relational());
        assert!(!SafePred::CStr.is_relational());
        assert!(!SafePred::Always.is_relational());
    }

    #[test]
    fn referenced_args_names_dataflow_edges() {
        assert_eq!(SafePred::HoldsCStrOf { src: 1 }.referenced_args(), vec![1]);
        assert_eq!(
            SafePred::WritableAtLeastProduct { a: 1, b: 2 }.referenced_args(),
            vec![1, 2]
        );
        assert_eq!(
            SafePred::NullOr(Box::new(SafePred::SizeFitsWritable { ptr: 0, elem: 8 }))
                .referenced_args(),
            vec![0]
        );
        assert!(SafePred::CStr.referenced_args().is_empty());
        assert!(SafePred::IntNonZero.referenced_args().is_empty());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(SafePred::CStr.to_string(), "readable NUL-terminated string");
        assert_eq!(
            SafePred::HoldsCStrOf { src: 1 }.to_string(),
            "writable buffer >= strlen(arg2)+1"
        );
    }
}
