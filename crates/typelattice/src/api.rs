//! The *robust API* of a library: the output of the fault-injection
//! search (Figure 2's right-hand box) and the input to wrapper
//! generation.

use std::fmt;

use cdecl::xml::XmlWriter;
use cdecl::Prototype;

use crate::pred::SafePred;

/// How trustworthy a function's derived contract is — the campaign
/// resilience layer's per-function annotation. Ordered by increasing
/// trust, so thresholds compare naturally
/// (`confidence >= Confidence::Flaky`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// The campaign's per-function circuit breaker tripped (repeated
    /// abnormal sandbox deaths): the rungs are inconclusive and the
    /// contract is a conservative guess, not a measurement.
    Inconclusive,
    /// The campaign budget expired before this function was fully
    /// probed; the contract covers only the fraction in
    /// [`RobustFunction::coverage`].
    Partial,
    /// Fully probed, but some cases classified differently across quorum
    /// retries — the function is non-deterministic for parts of its
    /// input space.
    Flaky,
    /// Fully probed with stable classifications throughout.
    High,
}

impl Confidence {
    /// Short tag for tables and XML.
    pub fn tag(self) -> &'static str {
        match self {
            Confidence::Inconclusive => "inconclusive",
            Confidence::Partial => "partial",
            Confidence::Flaky => "flaky",
            Confidence::High => "high",
        }
    }

    /// Inverse of [`Confidence::tag`].
    pub fn from_tag(tag: &str) -> Option<Confidence> {
        Some(match tag {
            "inconclusive" => Confidence::Inconclusive,
            "partial" => Confidence::Partial,
            "flaky" => Confidence::Flaky,
            "high" => Confidence::High,
            _ => return None,
        })
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// The derived robust contract of one function.
#[derive(Debug, Clone)]
pub struct RobustFunction {
    /// The original C prototype.
    pub proto: Prototype,
    /// The weakest robust argument type found for each parameter.
    pub preds: Vec<SafePred>,
    /// `false` if even the strongest candidate types could not stop all
    /// robustness failures (residual risk remains).
    pub fully_robust: bool,
    /// `true` if the function was excluded from injection (e.g. `exit`).
    pub skipped: bool,
    /// How trustworthy this contract is.
    pub confidence: Confidence,
    /// Fraction of the planned probe work that actually executed
    /// (`1.0` = fully probed, `0.0` = never started).
    pub coverage: f64,
}

impl RobustFunction {
    /// A fully-probed contract — the normal campaign output.
    pub fn new(proto: Prototype, preds: Vec<SafePred>, fully_robust: bool) -> Self {
        RobustFunction {
            proto,
            preds,
            fully_robust,
            skipped: false,
            confidence: Confidence::High,
            coverage: 1.0,
        }
    }

    /// A function whose parameters all accept any value (the trivial
    /// contract, used for skipped functions).
    pub fn trivial(proto: Prototype) -> Self {
        let preds = proto.params.iter().map(|_| SafePred::Always).collect();
        RobustFunction {
            proto,
            preds,
            fully_robust: true,
            skipped: true,
            confidence: Confidence::High,
            coverage: 1.0,
        }
    }

    /// Whether any parameter carries a non-trivial precondition.
    pub fn has_checks(&self) -> bool {
        self.preds.iter().any(|p| *p != SafePred::Always)
    }

    /// Whether wrapper generation can rely on this contract as a
    /// *measurement* (fully probed, deterministic or flaky-annotated)
    /// rather than a conservative guess from a cut-short campaign.
    pub fn is_measured(&self) -> bool {
        self.confidence >= Confidence::Flaky
    }
}

/// The robust API of a whole library.
#[derive(Debug, Clone, Default)]
pub struct RobustApi {
    /// Library name (e.g. `libsimc.so.1`).
    pub library: String,
    /// Per-function contracts, in symbol-table order.
    pub functions: Vec<RobustFunction>,
}

impl RobustApi {
    /// Looks up a function's contract by name.
    pub fn function(&self, name: &str) -> Option<&RobustFunction> {
        self.functions.iter().find(|f| f.proto.name == name)
    }

    /// Serialises the robust API as a self-describing XML document
    /// (the declaration-file format extended with `safe` attributes).
    /// Functions are emitted sorted by symbol name so the document is
    /// byte-identical for equivalent APIs regardless of probe order.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        w.open("robust-api", &[("library", &self.library)]);
        let mut functions: Vec<&RobustFunction> = self.functions.iter().collect();
        functions.sort_by(|a, b| a.proto.name.cmp(&b.proto.name));
        for f in functions {
            w.open(
                "function",
                &[
                    ("name", f.proto.name.as_str()),
                    ("fully-robust", if f.fully_robust { "true" } else { "false" }),
                    ("skipped", if f.skipped { "true" } else { "false" }),
                    ("confidence", f.confidence.tag()),
                    ("coverage", &format!("{:.3}", f.coverage)),
                ],
            );
            for (i, (param, pred)) in f.proto.params.iter().zip(&f.preds).enumerate() {
                let ty = param.ty.to_string();
                let name = param.display_name(i);
                let safe = pred.to_string();
                w.leaf("param", &[("name", &name), ("type", &ty), ("safe", &safe)]);
            }
            w.close();
        }
        w.close();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn strcpy_api() -> RobustApi {
        let t = TypedefTable::with_builtins();
        let proto =
            parse_prototype("char *strcpy(char *dest, const char *src);", &t).unwrap();
        RobustApi {
            library: "libsimc.so.1".into(),
            functions: vec![RobustFunction::new(
                proto,
                vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
                true,
            )],
        }
    }

    #[test]
    fn lookup_and_checks() {
        let api = strcpy_api();
        let f = api.function("strcpy").unwrap();
        assert!(f.has_checks());
        assert!(api.function("nope").is_none());
    }

    #[test]
    fn trivial_contract_has_no_checks() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("void exit(int status);", &t).unwrap();
        let f = RobustFunction::trivial(proto);
        assert!(!f.has_checks());
        assert!(f.skipped);
    }

    #[test]
    fn xml_mentions_safe_types() {
        let xml = strcpy_api().to_xml();
        assert!(xml.contains("robust-api"), "{xml}");
        assert!(xml.contains("strcpy"));
        assert!(xml.contains("writable buffer &gt;= strlen(arg2)+1"), "{xml}");
        assert!(xml.contains("readable NUL-terminated string"));
        assert!(xml.contains("confidence=\"high\""), "{xml}");
        assert!(xml.contains("coverage=\"1.000\""), "{xml}");
    }

    #[test]
    fn confidence_ordering_and_tags() {
        assert!(Confidence::High > Confidence::Flaky);
        assert!(Confidence::Flaky > Confidence::Partial);
        assert!(Confidence::Partial > Confidence::Inconclusive);
        for c in [
            Confidence::High,
            Confidence::Flaky,
            Confidence::Partial,
            Confidence::Inconclusive,
        ] {
            assert_eq!(Confidence::from_tag(c.tag()), Some(c), "{c}");
        }
        assert_eq!(Confidence::from_tag("bogus"), None);
    }

    #[test]
    fn measured_threshold() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("size_t strlen(const char *s);", &t).unwrap();
        let mut f = RobustFunction::new(proto, vec![SafePred::CStr], true);
        assert!(f.is_measured());
        f.confidence = Confidence::Flaky;
        assert!(f.is_measured());
        f.confidence = Confidence::Partial;
        assert!(!f.is_measured());
        f.confidence = Confidence::Inconclusive;
        assert!(!f.is_measured());
    }

    #[test]
    fn xml_sorts_functions_by_name() {
        let t = TypedefTable::with_builtins();
        let mk = |p: &str| {
            RobustFunction::new(
                parse_prototype(p, &t).unwrap(),
                vec![SafePred::Always],
                true,
            )
        };
        let api = RobustApi {
            library: "l".into(),
            functions: vec![mk("int zeta(int a);"), mk("int alpha(int a);")],
        };
        let xml = api.to_xml();
        let zeta = xml.find("zeta").unwrap();
        let alpha = xml.find("alpha").unwrap();
        assert!(alpha < zeta, "{xml}");
    }
}
