//! The *robust API* of a library: the output of the fault-injection
//! search (Figure 2's right-hand box) and the input to wrapper
//! generation.

use cdecl::xml::XmlWriter;
use cdecl::Prototype;

use crate::pred::SafePred;

/// The derived robust contract of one function.
#[derive(Debug, Clone)]
pub struct RobustFunction {
    /// The original C prototype.
    pub proto: Prototype,
    /// The weakest robust argument type found for each parameter.
    pub preds: Vec<SafePred>,
    /// `false` if even the strongest candidate types could not stop all
    /// robustness failures (residual risk remains).
    pub fully_robust: bool,
    /// `true` if the function was excluded from injection (e.g. `exit`).
    pub skipped: bool,
}

impl RobustFunction {
    /// A function whose parameters all accept any value (the trivial
    /// contract, used for skipped functions).
    pub fn trivial(proto: Prototype) -> Self {
        let preds = proto.params.iter().map(|_| SafePred::Always).collect();
        RobustFunction { proto, preds, fully_robust: true, skipped: true }
    }

    /// Whether any parameter carries a non-trivial precondition.
    pub fn has_checks(&self) -> bool {
        self.preds.iter().any(|p| *p != SafePred::Always)
    }
}

/// The robust API of a whole library.
#[derive(Debug, Clone, Default)]
pub struct RobustApi {
    /// Library name (e.g. `libsimc.so.1`).
    pub library: String,
    /// Per-function contracts, in symbol-table order.
    pub functions: Vec<RobustFunction>,
}

impl RobustApi {
    /// Looks up a function's contract by name.
    pub fn function(&self, name: &str) -> Option<&RobustFunction> {
        self.functions.iter().find(|f| f.proto.name == name)
    }

    /// Serialises the robust API as a self-describing XML document
    /// (the declaration-file format extended with `safe` attributes).
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::new();
        w.open("robust-api", &[("library", &self.library)]);
        for f in &self.functions {
            w.open(
                "function",
                &[
                    ("name", f.proto.name.as_str()),
                    ("fully-robust", if f.fully_robust { "true" } else { "false" }),
                    ("skipped", if f.skipped { "true" } else { "false" }),
                ],
            );
            for (i, (param, pred)) in f.proto.params.iter().zip(&f.preds).enumerate() {
                let ty = param.ty.to_string();
                let name = param.display_name(i);
                let safe = pred.to_string();
                w.leaf("param", &[("name", &name), ("type", &ty), ("safe", &safe)]);
            }
            w.close();
        }
        w.close();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdecl::{parse_prototype, TypedefTable};

    fn strcpy_api() -> RobustApi {
        let t = TypedefTable::with_builtins();
        let proto =
            parse_prototype("char *strcpy(char *dest, const char *src);", &t).unwrap();
        RobustApi {
            library: "libsimc.so.1".into(),
            functions: vec![RobustFunction {
                proto,
                preds: vec![SafePred::HoldsCStrOf { src: 1 }, SafePred::CStr],
                fully_robust: true,
                skipped: false,
            }],
        }
    }

    #[test]
    fn lookup_and_checks() {
        let api = strcpy_api();
        let f = api.function("strcpy").unwrap();
        assert!(f.has_checks());
        assert!(api.function("nope").is_none());
    }

    #[test]
    fn trivial_contract_has_no_checks() {
        let t = TypedefTable::with_builtins();
        let proto = parse_prototype("void exit(int status);", &t).unwrap();
        let f = RobustFunction::trivial(proto);
        assert!(!f.has_checks());
        assert!(f.skipped);
    }

    #[test]
    fn xml_mentions_safe_types() {
        let xml = strcpy_api().to_xml();
        assert!(xml.contains("robust-api"), "{xml}");
        assert!(xml.contains("strcpy"));
        assert!(xml.contains("writable buffer &gt;= strlen(arg2)+1"), "{xml}");
        assert!(xml.contains("readable NUL-terminated string"));
    }
}
