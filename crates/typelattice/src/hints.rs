//! Ladder pre-seeding hints: per-parameter floor rungs derived by static
//! contract inference, consumed by the injector's weakest-robust-type
//! search. A floor of `r` means "a high-confidence contract already
//! settles every rung below `r`" — the climb starts there and the
//! skipped cases are reported as pruned instead of executed.

use std::collections::BTreeMap;

/// Per-function, per-parameter floor indices into the candidate-type
/// ladders of [`crate::plan`]. The default floor is `0` (climb from the
/// weakest rung, exactly the unhinted search), so an empty hint set is
/// behaviourally identical to running without hints.
///
/// Floors change only where the climb *starts*, never the plans, the
/// case keys or the per-case seeds — a hinted campaign shares checkpoint
/// journals with an unhinted one and derives the same robust API
/// whenever the floors are sound (the skipped rungs would have failed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LadderHints {
    floors: BTreeMap<String, Vec<usize>>,
}

impl LadderHints {
    /// An empty hint set (every floor is 0).
    pub fn new() -> Self {
        LadderHints::default()
    }

    /// Sets the per-parameter floors for `func`. Missing trailing
    /// parameters default to floor 0.
    pub fn set(&mut self, func: impl Into<String>, floors: Vec<usize>) {
        self.floors.insert(func.into(), floors);
    }

    /// The floor rung index for parameter `param` of `func` (0 when no
    /// hint exists).
    pub fn floor(&self, func: &str, param: usize) -> usize {
        self.floors.get(func).and_then(|f| f.get(param)).copied().unwrap_or(0)
    }

    /// `true` when no function carries a non-zero floor.
    pub fn is_empty(&self) -> bool {
        self.floors.values().all(|f| f.iter().all(|&r| r == 0))
    }

    /// Function names with at least one non-zero floor, sorted.
    pub fn functions(&self) -> Vec<&str> {
        self.floors
            .iter()
            .filter(|(_, f)| f.iter().any(|&r| r > 0))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_floor_is_zero() {
        let hints = LadderHints::new();
        assert_eq!(hints.floor("strlen", 0), 0);
        assert!(hints.is_empty());
        assert!(hints.functions().is_empty());
    }

    #[test]
    fn set_and_lookup() {
        let mut hints = LadderHints::new();
        hints.set("strlen", vec![3]);
        hints.set("abs", vec![0]);
        assert_eq!(hints.floor("strlen", 0), 3);
        assert_eq!(hints.floor("strlen", 1), 0, "missing params default");
        assert_eq!(hints.floor("abs", 0), 0);
        assert!(!hints.is_empty());
        assert_eq!(hints.functions(), vec!["strlen"], "zero-floor entries excluded");
    }
}
