//! The extent lattice and substitution plans — the vocabulary of the
//! flow-sensitive substitution analysis.
//!
//! Rigger et al.'s "Introspection for C" shows a library can *prevent*
//! overflows outright when it may ask `size_right`-style exact-bounds
//! queries, and S3Library shows fragile calls can be rerouted to
//! compatible safer variants. The analyzer decides, per call site,
//! when that rewrite is provably sound: it walks the wrapper's symbolic
//! call model and climbs this lattice per (function, argument) —
//!
//! ```text
//! Unknown → NullOk → NonNull → BoundedBy(len-arg) → ExactExtent
//! ```
//!
//! A [`SubstitutionPlan`] is emitted only when every proof obligation
//! discharges; the discharged proof travels with the plan so the
//! substitution audit can journal *why* each rewrite was legal.

use std::fmt;

/// What the analysis knows about one argument's extent at the point the
/// fragile call would run. Ordered by knowledge: later variants refine
/// earlier ones, and [`ExtentClass::refine`] climbs monotonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtentClass {
    /// Nothing established (or an intervening mutation destroyed what
    /// was).
    #[default]
    Unknown,
    /// The argument may legally be NULL (a `NullOr` contract); no
    /// extent fact survives a maybe-NULL pointer.
    NullOk,
    /// Established non-NULL, extent still unknown.
    NonNull,
    /// Writable up to the value of another argument (index carried) —
    /// the `strncpy`/`snprintf` shape.
    BoundedBy(usize),
    /// The oracle answers the exact right-edge distance for this
    /// pointer at call time (`ExtentOracle::extent_right`): the bound a
    /// substituted copy may fill without overflowing.
    ExactExtent,
}

impl ExtentClass {
    /// Position in the lattice (higher is more knowledge).
    pub fn rank(self) -> u8 {
        match self {
            ExtentClass::Unknown => 0,
            ExtentClass::NullOk => 1,
            ExtentClass::NonNull => 2,
            ExtentClass::BoundedBy(_) => 3,
            ExtentClass::ExactExtent => 4,
        }
    }

    /// Monotone climb: keeps whichever side knows more. Equal-rank
    /// disagreements (two different `BoundedBy` length arguments) stay
    /// at the left value — the first established bound governs.
    pub fn refine(self, other: ExtentClass) -> ExtentClass {
        if other.rank() > self.rank() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for ExtentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtentClass::Unknown => write!(f, "unknown"),
            ExtentClass::NullOk => write!(f, "null-ok"),
            ExtentClass::NonNull => write!(f, "non-null"),
            ExtentClass::BoundedBy(arg) => write!(f, "bounded-by(arg{})", arg + 1),
            ExtentClass::ExactExtent => write!(f, "exact-extent"),
        }
    }
}

/// The fragile-call family a safer variant exists for: unbounded
/// C-string writers whose destination extent the oracle can answer
/// exactly at call time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubstFamily {
    /// `strcpy(dst, src)` → bounded copy clipped to `extent_right(dst)`.
    Strcpy,
    /// `strcat(dst, src)` → bounded append within `extent_right(dst)`.
    Strcat,
    /// `sprintf(dst, fmt, ...)` → `snprintf(dst, extent_right(dst), ...)`.
    Sprintf,
}

impl SubstFamily {
    /// The family of `func`, if it has a safer variant.
    pub fn of(func: &str) -> Option<SubstFamily> {
        match func {
            "strcpy" => Some(SubstFamily::Strcpy),
            "strcat" => Some(SubstFamily::Strcat),
            "sprintf" => Some(SubstFamily::Sprintf),
            _ => None,
        }
    }

    /// The fragile function's name.
    pub fn func(self) -> &'static str {
        match self {
            SubstFamily::Strcpy => "strcpy",
            SubstFamily::Strcat => "strcat",
            SubstFamily::Sprintf => "sprintf",
        }
    }

    /// Human-readable description of the safer variant the call is
    /// rerouted to.
    pub fn variant(self) -> &'static str {
        match self {
            SubstFamily::Strcpy => "bounded copy clipped to extent_right(dst)",
            SubstFamily::Strcat => "bounded append within extent_right(dst)",
            SubstFamily::Sprintf => "snprintf(dst, extent_right(dst), ...)",
        }
    }

    /// Destination-buffer argument index.
    pub fn dst_arg(self) -> usize {
        0
    }

    /// Source argument index (the string copied / the format rendered).
    pub fn src_arg(self) -> usize {
        1
    }
}

impl fmt::Display for SubstFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.func(), self.variant())
    }
}

/// One discharged proof obligation, journaled with the plan so every
/// rewrite in the substitution audit names its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The obligation, stated.
    pub obligation: String,
    /// What discharged it (the model op / contract fact / lattice point).
    pub discharged_by: String,
}

impl fmt::Display for ProofStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- discharged by {}", self.obligation, self.discharged_by)
    }
}

/// A proven-sound rewrite of one fragile function to its safer variant.
/// Produced by the analyzer's substitution analysis, consumed by the
/// `Substitute` wrapper kind's micro-generator, rendered in the
/// substitution audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionPlan {
    /// The fragile function being rerouted.
    pub func: String,
    /// Its substitution family.
    pub family: SubstFamily,
    /// Destination-buffer argument index.
    pub dst_arg: usize,
    /// Source argument index.
    pub src_arg: usize,
    /// The destination's lattice point at entry (always
    /// [`ExtentClass::ExactExtent`] for an emitted plan).
    pub dst_extent: ExtentClass,
    /// Every discharged obligation, in proof order.
    pub proof: Vec<ProofStep>,
}

impl SubstitutionPlan {
    /// Renders the discharged proof deterministically, one obligation
    /// per line, for the substitution audit.
    pub fn render_proof(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}: {}", self.func, self.family.variant());
        for step in &self.proof {
            let _ = writeln!(out, "  - {step}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_refines_monotonically() {
        use ExtentClass::*;
        assert_eq!(Unknown.refine(NullOk), NullOk);
        assert_eq!(NullOk.refine(NonNull), NonNull);
        assert_eq!(NonNull.refine(BoundedBy(1)), BoundedBy(1));
        assert_eq!(BoundedBy(1).refine(ExactExtent), ExactExtent);
        // Never loses knowledge.
        assert_eq!(ExactExtent.refine(Unknown), ExactExtent);
        assert_eq!(BoundedBy(1).refine(NonNull), BoundedBy(1));
        // Equal rank keeps the established bound.
        assert_eq!(BoundedBy(1).refine(BoundedBy(2)), BoundedBy(1));
        // Ranks are strictly ordered along the climb.
        let climb = [Unknown, NullOk, NonNull, BoundedBy(0), ExactExtent];
        for w in climb.windows(2) {
            assert!(w[0].rank() < w[1].rank(), "{w:?}");
        }
    }

    #[test]
    fn families_cover_the_fragile_writers() {
        assert_eq!(SubstFamily::of("strcpy"), Some(SubstFamily::Strcpy));
        assert_eq!(SubstFamily::of("strcat"), Some(SubstFamily::Strcat));
        assert_eq!(SubstFamily::of("sprintf"), Some(SubstFamily::Sprintf));
        assert_eq!(SubstFamily::of("memcpy"), None);
        for fam in [SubstFamily::Strcpy, SubstFamily::Strcat, SubstFamily::Sprintf] {
            assert_eq!(SubstFamily::of(fam.func()), Some(fam));
            assert_eq!(fam.dst_arg(), 0);
            assert_eq!(fam.src_arg(), 1);
        }
    }

    #[test]
    fn proof_renders_deterministically() {
        let plan = SubstitutionPlan {
            func: "strcpy".into(),
            family: SubstFamily::Strcpy,
            dst_arg: 0,
            src_arg: 1,
            dst_extent: ExtentClass::ExactExtent,
            proof: vec![ProofStep {
                obligation: "dst extent exactly known at entry".into(),
                discharged_by: "holds-cstr check against extent_right".into(),
            }],
        };
        let a = plan.render_proof();
        assert_eq!(a, plan.render_proof());
        assert!(a.contains("strcpy"), "{a}");
        assert!(a.contains("discharged by"), "{a}");
    }
}
