//! Property tests on the type hierarchy — the invariants the
//! weakest-robust-type search relies on:
//!
//! * **self-consistency**: every generated member of a candidate type
//!   satisfies that type's predicate, for every rung of every ladder of
//!   every libc prototype;
//! * **monotonicity along a ladder**: ladders are ordered weakest-first —
//!   members of a *stronger* rung satisfy every weaker non-relational
//!   rung before it (so climbing never widens the contract);
//! * **NullOr weakening**: `NullOr(p)` accepts everything `p` accepts,
//!   plus NULL.

use proptest::prelude::*;

use simlibc::testutil::libc_proc;
use simproc::{CVal, RegionOracle};
use typelattice::{benign_value, plan, values_for, GenCx, SafePred};

fn proto_names() -> Vec<String> {
    simlibc::prototypes().iter().map(|p| p.name.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn generated_values_satisfy_their_rung(
        func_idx in 0usize..97,
        seed in any::<u64>(),
    ) {
        let protos = simlibc::prototypes();
        let proto = &protos[func_idx % protos.len()];
        let plans = plan(proto);
        let oracle = RegionOracle::new();
        for (i, pp) in plans.iter().enumerate() {
            for rung in &pp.ladder {
                let mut p = libc_proc();
                let mut cx = GenCx::new(&mut p, seed);
                let pinned: Vec<CVal> =
                    plans.iter().map(|q| benign_value(q.class, &mut cx)).collect();
                let values = values_for(pp.class, &rung.pred, &mut cx, &pinned);
                prop_assert!(!values.is_empty(), "{}: param {i} rung {} generated nothing", proto.name, rung.name);
                for v in values {
                    let mut args = pinned.clone();
                    args[i] = v;
                    // RegionOracle is the weakest oracle; if the value
                    // passes under it, it passes under refinements too
                    // for the generator's own allocations.
                    prop_assert!(
                        rung.pred.check(cx.proc, &oracle, &args, i),
                        "{}: param {i} rung `{}` value {v} escapes its own type",
                        proto.name, rung.name, v = v
                    );
                }
            }
        }
    }

    #[test]
    fn benign_values_satisfy_every_rung(
        func_idx in 0usize..97,
        seed in any::<u64>(),
    ) {
        // The pinned benign value must be a member of EVERY candidate
        // type of its parameter, or the ladder search would blame the
        // wrong parameter.
        let protos = simlibc::prototypes();
        let proto = &protos[func_idx % protos.len()];
        let plans = plan(proto);
        let oracle = RegionOracle::new();
        let mut p = libc_proc();
        let mut cx = GenCx::new(&mut p, seed);
        let pinned: Vec<CVal> =
            plans.iter().map(|q| benign_value(q.class, &mut cx)).collect();
        for (i, pp) in plans.iter().enumerate() {
            for rung in &pp.ladder {
                prop_assert!(
                    rung.pred.check(cx.proc, &oracle, &pinned, i),
                    "{}: benign value {} violates rung `{}` of param {i}",
                    proto.name, pinned[i], rung.name
                );
            }
        }
    }

    #[test]
    fn nullor_is_weaker(seed in any::<u64>(), func_idx in 0usize..97) {
        let protos = simlibc::prototypes();
        let proto = &protos[func_idx % protos.len()];
        let plans = plan(proto);
        let oracle = RegionOracle::new();
        for (i, pp) in plans.iter().enumerate() {
            for rung in &pp.ladder {
                let SafePred::NullOr(inner) = &rung.pred else { continue };
                let mut p = libc_proc();
                let mut cx = GenCx::new(&mut p, seed);
                let pinned: Vec<CVal> =
                    plans.iter().map(|q| benign_value(q.class, &mut cx)).collect();
                // Members of the inner type...
                let values = values_for(pp.class, inner, &mut cx, &pinned);
                for v in values {
                    let mut args = pinned.clone();
                    args[i] = v;
                    if inner.check(cx.proc, &oracle, &args, i) {
                        prop_assert!(rung.pred.check(cx.proc, &oracle, &args, i));
                    }
                }
                // ...and NULL are all members of NullOr(inner).
                let mut args = pinned.clone();
                args[i] = CVal::NULL;
                prop_assert!(rung.pred.check(cx.proc, &oracle, &args, i));
            }
        }
    }

    #[test]
    fn every_libc_prototype_has_a_full_plan(name_idx in 0usize..97) {
        let names = proto_names();
        let name = &names[name_idx % names.len()];
        let proto = simlibc::prototypes()
            .into_iter()
            .find(|p| &p.name == name)
            .unwrap();
        let plans = plan(&proto);
        prop_assert_eq!(plans.len(), proto.params.len());
        for pp in &plans {
            prop_assert!(!pp.ladder.is_empty());
            prop_assert_eq!(&pp.ladder[0].pred, &SafePred::Always);
            // Rung names are unique within a ladder.
            let mut names: Vec<_> = pp.ladder.iter().map(|r| r.name.clone()).collect();
            names.sort();
            let n = names.len();
            names.dedup();
            prop_assert_eq!(names.len(), n);
        }
    }
}
