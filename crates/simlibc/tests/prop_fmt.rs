//! Fuzzing the printf engine: for *arbitrary* format strings and
//! argument mixes, the engine must either render or fault cleanly — it
//! may never panic the host, loop without fuel accounting, or write
//! outside the simulation. (Its job is to be attackable, not to be
//! buggy.)

use proptest::prelude::*;

use simlibc::fmt::format;
use simlibc::testutil::libc_proc;
use simproc::{CVal, Fault};

fn arbitrary_fmt() -> impl Strategy<Value = String> {
    // Heavily percent-laden strings: flags, widths, precisions, length
    // modifiers, known and unknown conversions, truncated specs.
    proptest::collection::vec(
        prop_oneof![
            Just("%".to_string()),
            Just("%%".to_string()),
            "[-+ 0#]{0,3}".prop_map(|f| format!("%{f}")),
            (0u32..999).prop_map(|w| format!("%{w}")),
            (0u32..99).prop_map(|p| format!("%.{p}")),
            Just("%ll".to_string()),
            "[dioxXucspfgen]".prop_map(|c| format!("%{c}")),
            "[a-zA-Z!?]".prop_map(|c| format!("%{c}")),
            "[ -~]{0,6}".prop_map(|s| s.replace('%', "")),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

fn arg_pool(p: &mut simproc::Proc) -> Vec<CVal> {
    let s = p.alloc_cstr("pool-string");
    let cell = p.alloc_data_zeroed(8);
    vec![
        CVal::Int(0),
        CVal::Int(-1),
        CVal::Int(i64::MAX),
        CVal::F64(3.25),
        CVal::Ptr(s),
        CVal::Ptr(cell),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn format_engine_never_panics_or_hangs(
        fmt_text in arbitrary_fmt(),
        picks in prop::collection::vec(0usize..6, 0..6),
    ) {
        let mut p = libc_proc();
        let pool = arg_pool(&mut p);
        let args: Vec<CVal> = picks.into_iter().map(|i| pool[i]).collect();
        let fmt = p.alloc_cstr(&fmt_text);
        p.set_fuel_limit(Some(p.cycles() + 1_000_000));
        match format(&mut p, fmt, &args) {
            Ok(rendered) => {
                // Rendering is bounded: output cannot exceed format
                // length + per-conversion expansion.
                prop_assert!(rendered.len() <= fmt_text.len() + 16 * 1024);
            }
            Err(Fault::Segv { .. }) | Err(Fault::Hang) => {
                // Clean simulated faults (e.g. %s over a garbage arg)
                // are the expected failure mode.
            }
            Err(other) => prop_assert!(false, "unexpected fault class: {other}"),
        }
    }

    #[test]
    fn valid_specs_with_valid_args_always_render(
        v in any::<i32>(),
        w in 0usize..64,
        text in "[ -~]{0,20}",
    ) {
        let mut p = libc_proc();
        let s = p.alloc_cstr(&text);
        let fmt = p.alloc_cstr(&format!("<%{w}d|%x|%s>"));
        let out = format(&mut p, fmt, &[CVal::Int(v as i64), CVal::Int(255), CVal::Ptr(s)])
            .unwrap();
        let rendered = String::from_utf8_lossy(&out).into_owned();
        prop_assert!(rendered.starts_with('<') && rendered.ends_with('>'));
        prop_assert!(rendered.contains("ff"));
        prop_assert!(rendered.contains(&text));
    }
}
