//! Property tests comparing the simulated C functions against Rust
//! reference implementations on *valid* inputs — the simulated library
//! must be fragile on garbage, but correct on the happy path.

use proptest::prelude::*;

use simlibc::testutil::libc_proc;
use simproc::{CVal, Proc};

fn cstring() -> impl Strategy<Value = String> {
    // NUL-free, ASCII-printable strings.
    "[ -~]{0,64}"
}

fn call(p: &mut Proc, name: &str, args: &[CVal]) -> CVal {
    (simlibc::find_symbol(name).unwrap().imp)(p, args).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn strlen_matches(s in cstring()) {
        let mut p = libc_proc();
        let a = p.alloc_cstr(&s);
        prop_assert_eq!(call(&mut p, "strlen", &[CVal::Ptr(a)]).as_int(), s.len() as i64);
    }

    #[test]
    fn strcmp_matches_byte_order(a in cstring(), b in cstring()) {
        let mut p = libc_proc();
        let pa = p.alloc_cstr(&a);
        let pb = p.alloc_cstr(&b);
        let r = call(&mut p, "strcmp", &[CVal::Ptr(pa), CVal::Ptr(pb)]).as_int();
        let expect = a.as_bytes().cmp(b.as_bytes());
        prop_assert_eq!(r.signum(), expect as i64, "{:?} vs {:?}", a, b);
    }

    #[test]
    fn strcpy_strcat_compose(a in cstring(), b in cstring()) {
        let mut p = libc_proc();
        let buf = simlibc::heap::malloc(&mut p, (a.len() + b.len() + 1) as u64).unwrap();
        let pa = p.alloc_cstr(&a);
        let pb = p.alloc_cstr(&b);
        call(&mut p, "strcpy", &[CVal::Ptr(buf), CVal::Ptr(pa)]);
        call(&mut p, "strcat", &[CVal::Ptr(buf), CVal::Ptr(pb)]);
        prop_assert_eq!(p.read_cstr_lossy(buf), format!("{a}{b}"));
    }

    #[test]
    fn strchr_strstr_match(hay in cstring(), needle_byte in 0x20u8..0x7f) {
        let mut p = libc_proc();
        let ph = p.alloc_cstr(&hay);
        let r = call(&mut p, "strchr", &[CVal::Ptr(ph), CVal::Int(needle_byte as i64)]);
        match hay.bytes().position(|c| c == needle_byte) {
            Some(i) => prop_assert_eq!(r.as_ptr(), ph.add(i as u64)),
            None => prop_assert!(r.is_null()),
        }
    }

    #[test]
    fn strstr_matches(hay in cstring(), needle in "[ -~]{0,8}") {
        let mut p = libc_proc();
        let ph = p.alloc_cstr(&hay);
        let pn = p.alloc_cstr(&needle);
        let r = call(&mut p, "strstr", &[CVal::Ptr(ph), CVal::Ptr(pn)]);
        match hay.find(&needle) {
            Some(i) => prop_assert_eq!(r.as_ptr(), ph.add(i as u64)),
            None => prop_assert!(r.is_null()),
        }
    }

    #[test]
    fn atoi_matches_for_i32(v in any::<i32>(), pad in 0usize..4) {
        let mut p = libc_proc();
        let text = format!("{}{v}", " ".repeat(pad));
        let a = p.alloc_cstr(&text);
        prop_assert_eq!(call(&mut p, "atoi", &[CVal::Ptr(a)]).as_int(), v as i64);
    }

    #[test]
    fn strtol_matches_rust_parse(v in any::<i64>(), base in prop_oneof![Just(10i64), Just(16), Just(8), Just(2)]) {
        let mut p = libc_proc();
        let text = match base {
            16 => format!("{v:x}"),
            8 => format!("{v:o}"),
            2 => format!("{v:b}"),
            _ => format!("{v}"),
        };
        prop_assume!(v >= 0 || base == 10); // negative radix strings format oddly
        let a = p.alloc_cstr(&text);
        let r = call(&mut p, "strtol", &[CVal::Ptr(a), CVal::NULL, CVal::Int(base)]).as_int();
        prop_assert_eq!(r, v, "{:?} base {}", text, base);
    }

    #[test]
    fn memset_memcmp_memchr_agree(len in 1usize..128, fill in any::<u8>(), probe in any::<u8>()) {
        let mut p = libc_proc();
        let a = simlibc::heap::malloc(&mut p, len as u64).unwrap();
        call(&mut p, "memset", &[CVal::Ptr(a), CVal::Int(fill as i64), CVal::Int(len as i64)]);
        let b = p.alloc_data(&vec![fill; len]);
        let cmp = call(&mut p, "memcmp", &[CVal::Ptr(a), CVal::Ptr(b), CVal::Int(len as i64)]);
        prop_assert_eq!(cmp, CVal::Int(0));
        let hit = call(&mut p, "memchr", &[CVal::Ptr(a), CVal::Int(probe as i64), CVal::Int(len as i64)]);
        if probe == fill {
            prop_assert_eq!(hit.as_ptr(), a);
        } else {
            prop_assert!(hit.is_null());
        }
    }

    #[test]
    fn snprintf_matches_format(v in any::<i32>(), w in 0usize..10, s in "[ -~]{0,16}") {
        let mut p = libc_proc();
        let dst = simlibc::heap::malloc(&mut p, 128).unwrap();
        let fmt = p.alloc_cstr(&format!("%{w}d|%s"));
        let ps = p.alloc_cstr(&s);
        let n = call(
            &mut p,
            "snprintf",
            &[CVal::Ptr(dst), CVal::Int(128), CVal::Ptr(fmt), CVal::Int(v as i64), CVal::Ptr(ps)],
        );
        let expect = format!("{v:w$}|{s}", w = w);
        prop_assert_eq!(p.read_cstr_lossy(dst), expect.clone());
        prop_assert_eq!(n.as_int(), expect.len() as i64);
    }

    #[test]
    fn strtok_splits_like_rust(parts in prop::collection::vec("[a-z]{1,6}", 1..6)) {
        let mut p = libc_proc();
        let joined = parts.join(",");
        let buf = p.alloc_data(&{
            let mut v = joined.clone().into_bytes();
            v.push(0);
            v
        });
        let delim = p.alloc_cstr(",");
        let mut got = Vec::new();
        let mut tok = call(&mut p, "strtok", &[CVal::Ptr(buf), CVal::Ptr(delim)]);
        while !tok.is_null() {
            got.push(p.read_cstr_lossy(tok.as_ptr()));
            tok = call(&mut p, "strtok", &[CVal::NULL, CVal::Ptr(delim)]);
        }
        prop_assert_eq!(got, parts);
    }

    #[test]
    fn qsort_sorts_like_rust(mut values in prop::collection::vec(any::<i32>(), 0..32)) {
        fn cmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, simproc::Fault> {
            let a = p.read_u32(args[0].as_ptr())? as i32;
            let b = p.read_u32(args[1].as_ptr())? as i32;
            Ok(CVal::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        let mut p = libc_proc();
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let base = p.alloc_data(&bytes);
        let cmp_addr = p.register_host_fn("prop_cmp", cmp);
        call(
            &mut p,
            "qsort",
            &[CVal::Ptr(base), CVal::Int(values.len() as i64), CVal::Int(4), CVal::Ptr(cmp_addr)],
        );
        values.sort_unstable();
        let got: Vec<i32> = (0..values.len())
            .map(|i| p.read_u32(base.add(i as u64 * 4)).unwrap() as i32)
            .collect();
        prop_assert_eq!(got, values);
    }

    #[test]
    fn tolower_toupper_match_ascii(c in 0i64..256) {
        let mut p = libc_proc();
        let lo = call(&mut p, "tolower", &[CVal::Int(c)]).as_int();
        let up = call(&mut p, "toupper", &[CVal::Int(c)]).as_int();
        prop_assert_eq!(lo, (c as u8 as char).to_ascii_lowercase() as i64);
        prop_assert_eq!(up, (c as u8 as char).to_ascii_uppercase() as i64);
    }
}
