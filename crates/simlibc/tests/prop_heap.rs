//! Property tests for the boundary-tag allocator: for *any* sequence of
//! well-behaved allocator operations, the heap invariants hold, live
//! allocations never overlap, and payload bytes survive unrelated
//! operations. (Attack scenarios deliberately violate these; the
//! properties pin down the behaviour of the *legal* API.)

use proptest::prelude::*;

use simlibc::heap;
use simlibc::testutil::libc_proc;
use simproc::VirtAddr;

#[derive(Debug, Clone)]
enum Op {
    Malloc(u16),
    Calloc(u8, u8),
    Free(u8),
    Realloc(u8, u16),
    Write(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..2048).prop_map(Op::Malloc),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Calloc(a, b)),
        any::<u8>().prop_map(Op::Free),
        (any::<u8>(), 1u16..2048).prop_map(|(i, n)| Op::Realloc(i, n)),
        any::<u8>().prop_map(Op::Write),
    ]
}

/// A live allocation: pointer, requested size, fill byte.
#[derive(Debug, Clone, Copy)]
struct Live {
    ptr: VirtAddr,
    size: u64,
    fill: u8,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn allocator_invariants_under_arbitrary_legal_traffic(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut p = libc_proc();
        let mut live: Vec<Live> = Vec::new();
        let mut next_fill = 1u8;

        for op in ops {
            match op {
                Op::Malloc(n) => {
                    let ptr = heap::malloc(&mut p, n as u64).unwrap();
                    if !ptr.is_null() {
                        let fill = next_fill;
                        next_fill = next_fill.wrapping_add(1).max(1);
                        p.mem.write_bytes(ptr, &vec![fill; n as usize]).unwrap();
                        live.push(Live { ptr, size: n as u64, fill });
                    }
                }
                Op::Calloc(a, b) => {
                    let ptr = heap::calloc(&mut p, a as u64, b as u64).unwrap();
                    let total = a as u64 * b as u64;
                    if !ptr.is_null() {
                        // calloc zeroes (calloc(0, 0) still returns a
                        // real, freeable allocation).
                        prop_assert_eq!(
                            p.mem.read_bytes(ptr, total).unwrap(),
                            vec![0u8; total as usize]
                        );
                        let fill = next_fill;
                        next_fill = next_fill.wrapping_add(1).max(1);
                        p.mem.write_bytes(ptr, &vec![fill; total as usize]).unwrap();
                        live.push(Live { ptr, size: total, fill });
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let v = live.remove(i as usize % live.len());
                        heap::free(&mut p, v.ptr).unwrap();
                    }
                }
                Op::Realloc(i, n) => {
                    if !live.is_empty() {
                        let idx = i as usize % live.len();
                        let old = live[idx];
                        let ptr = heap::realloc(&mut p, old.ptr, n as u64).unwrap();
                        if ptr.is_null() {
                            // failed: old allocation still valid
                        } else {
                            let kept = old.size.min(n as u64);
                            prop_assert_eq!(
                                p.mem.read_bytes(ptr, kept).unwrap(),
                                vec![old.fill; kept as usize],
                                "realloc must preserve the prefix"
                            );
                            p.mem.write_bytes(ptr, &vec![old.fill; n as usize]).unwrap();
                            live[idx] = Live { ptr, size: n as u64, fill: old.fill };
                        }
                    }
                }
                Op::Write(i) => {
                    if !live.is_empty() {
                        let v = live[i as usize % live.len()];
                        p.mem.write_bytes(v.ptr, &vec![v.fill; v.size as usize]).unwrap();
                    }
                }
            }

            // Global invariants after every step.
            heap::check_invariants(&p).map_err(|e| {
                TestCaseError::fail(format!("heap invariants violated: {e}"))
            })?;

            // Usable size covers the request; live chunks don't overlap.
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for v in &live {
                let usable = heap::usable_size(&mut p, v.ptr).unwrap();
                prop_assert!(usable >= v.size.max(1));
                spans.push((v.ptr.get(), v.ptr.get() + v.size));
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "allocations overlap: {spans:?}");
            }
        }

        // Payload integrity at the end: nothing scribbled on live data.
        for v in &live {
            let data = p.mem.read_bytes(v.ptr, v.size).unwrap();
            prop_assert_eq!(data, vec![v.fill; v.size as usize]);
        }

        // Free everything; the heap must collapse to a single top chunk.
        for v in live {
            heap::free(&mut p, v.ptr).unwrap();
        }
        heap::check_invariants(&p).map_err(|e| {
            TestCaseError::fail(format!("post-teardown invariants: {e}"))
        })?;
        let chunks = heap::walk(&p).unwrap();
        prop_assert_eq!(chunks.len(), 1, "all memory coalesced back: {:?}", chunks);
        prop_assert!(chunks[0].is_top);
    }

    #[test]
    fn malloc_alignment_and_distinctness(sizes in prop::collection::vec(1u64..512, 1..40)) {
        let mut p = libc_proc();
        let mut ptrs = Vec::new();
        for n in sizes {
            let ptr = heap::malloc(&mut p, n).unwrap();
            prop_assert!(!ptr.is_null());
            prop_assert!(ptr.is_aligned(16));
            prop_assert!(!ptrs.contains(&ptr));
            ptrs.push(ptr);
        }
    }

    #[test]
    fn oracle_never_exceeds_chunk(reqs in prop::collection::vec(1u64..256, 1..20), probe in 0u64..256) {
        use simproc::ExtentOracle;
        let mut p = libc_proc();
        let oracle = heap::HeapOracle::new();
        let mut ptrs = Vec::new();
        for n in &reqs {
            ptrs.push((heap::malloc(&mut p, *n).unwrap(), *n));
        }
        for (ptr, n) in &ptrs {
            let usable = heap::usable_size(&mut p, *ptr).unwrap();
            let addr = ptr.add(probe % usable);
            if let Some(ext) = oracle.writable_extent(&p, addr) {
                prop_assert!(ext <= usable, "extent {ext} > usable {usable} (req {n})");
                prop_assert!(addr.add(ext) <= ptr.add(usable));
            }
        }
    }
}
